"""Shared helpers for the benchmark suite.

Every experiment of DESIGN.md has one benchmark module that re-runs it at
reduced scale through pytest-benchmark.  Experiment benchmarks use a single
round (they are end-to-end Monte-Carlo runs, not micro-kernels); the
micro-benchmarks for samplers and adversaries use pytest-benchmark's default
calibration.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig

#: Scale used by the experiment benchmarks: small enough that the whole
#: benchmark suite finishes in a few minutes, large enough that the reproduced
#: shapes (who wins, where transitions fall) are still visible in the output.
BENCH_CONFIG = ExperimentConfig(trials=2, stream_length=1000, universe_size=512)


@pytest.fixture
def bench_config() -> ExperimentConfig:
    """The reduced-scale configuration shared by all experiment benchmarks."""
    return BENCH_CONFIG


def run_experiment_once(benchmark, runner, config: ExperimentConfig):
    """Run an experiment exactly once under pytest-benchmark and sanity-check it."""
    result = benchmark.pedantic(runner, args=(config,), rounds=1, iterations=1)
    assert result.rows, f"{result.experiment_id} produced no rows"
    return result
