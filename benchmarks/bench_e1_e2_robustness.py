"""Benchmarks for E1/E2 (Theorem 1.2 robustness) and their ablations (E1a, E2a)."""

from __future__ import annotations

from conftest import run_experiment_once

from repro.experiments.robustness import (
    run_bernoulli_robustness,
    run_eviction_policy_ablation,
    run_knowledge_model_ablation,
    run_reservoir_robustness,
)


def test_bench_e1_bernoulli_robustness(benchmark, bench_config):
    result = run_experiment_once(benchmark, run_bernoulli_robustness, bench_config)
    # Shape check: at the Theorem 1.2 rate no adversary exceeds epsilon often.
    at_bound = [row for row in result.rows if row["size_multiplier"] >= 1.0]
    assert all(row["failure_rate"] <= 0.5 for row in at_bound)


def test_bench_e2_reservoir_robustness(benchmark, bench_config):
    result = run_experiment_once(benchmark, run_reservoir_robustness, bench_config)
    at_bound = [row for row in result.rows if row["size_multiplier"] >= 1.0]
    assert all(row["failure_rate"] <= 0.5 for row in at_bound)


def test_bench_e1a_knowledge_ablation(benchmark, bench_config):
    result = run_experiment_once(benchmark, run_knowledge_model_ablation, bench_config)
    rows = {row["knowledge"]: row for row in result.rows}
    # The attack needs feedback: stripped of it, the sample stays representative.
    assert rows["full"]["mean_error"] > rows["oblivious"]["mean_error"]
    assert rows["oblivious"]["mean_error"] <= bench_config.epsilon


def test_bench_e2a_eviction_ablation(benchmark, bench_config):
    result = run_experiment_once(benchmark, run_eviction_policy_ablation, bench_config)
    worst_by_policy: dict[str, float] = {}
    for row in result.rows:
        policy = row["eviction_policy"]
        worst_by_policy[policy] = max(worst_by_policy.get(policy, 0.0), row["mean_error"])
    # Uniform (Vitter) eviction survives every workload; the biased policies
    # fail at least one of them.
    assert worst_by_policy["uniform"] <= bench_config.epsilon
    assert worst_by_policy["min-value"] > worst_by_policy["uniform"]
