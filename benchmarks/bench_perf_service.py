"""Benchmarks and acceptance gates for the always-on query service (PR 9).

Three claims are gated:

* **readers do not stall ingestion** — with 4 benign clients plus one
  adversarial (fresh-forcing) client attached, sustained ingest throughput
  must retain >= 0.7x of the reader-free chunked path at n = 10^5.  The
  snapshot store answers benign reads from the published (snapshot, counts)
  pair without touching the writer lock, so the only contention is the
  bounded republish cadence;
* **query latency stays bounded under mixed load** — across every client
  read of the loaded run, p99 latency must stay under 250 ms (a generous
  ceiling on shared CI runners; the trajectory numbers in BENCH_PR9.json
  are the real signal) and p50 under p99;
* **the service is deterministic where it must be** — for a fixed
  (seed, query schedule) the ServedSampler wrapper ticks at round-indexed
  points, so the sampler state after a served run is bit-identical across
  repeats and across chunk sizes (the concurrency lives only in the
  latency numbers, never in the sample path).
"""

from __future__ import annotations

import time

import numpy as np

from repro.distributed import ShardedSampler
from repro.samplers import BernoulliSampler, ReservoirSampler
from repro.service import QueryService, ServedSampler

UNIVERSE = 4_096
CAPACITY = 200


def _site(rng):
    return ReservoirSampler(CAPACITY, seed=rng)


def _data(n: int) -> list[int]:
    rng = np.random.default_rng(0)
    return [int(value) for value in rng.integers(1, UNIVERSE + 1, size=n)]


def _deployment() -> ShardedSampler:
    return ShardedSampler(4, _site, strategy="hash", seed=1)


def test_perf_service_unloaded_ingest(benchmark):
    """Reader-free chunked ingestion through the service at moderate scale."""
    n = 20_000
    data = _data(n)

    def run():
        service = QueryService(_deployment(), universe_size=UNIVERSE)
        return service.serve(data, chunk_size=1024, clients=0, adversarial_clients=0)

    report = benchmark(run)
    assert report.rounds == n
    assert report.queries == 0


def test_perf_service_loaded_ingest(benchmark):
    """Ingestion with 4 benign + 1 adversarial concurrent readers."""
    n = 20_000
    data = _data(n)

    def run():
        service = QueryService(
            _deployment(), staleness_rounds=2_048, universe_size=UNIVERSE
        )
        return service.serve(data, chunk_size=1024, clients=4, adversarial_clients=1)

    report = benchmark(run)
    assert report.rounds == n
    assert report.queries > 0


def test_service_ingest_retention_gate_on_1e5_stream():
    """Acceptance gate: concurrent readers keep >= 0.7x reader-free ingest.

    Both runs go through QueryService.serve so the only variable is the
    reader pool; the reader-free run is itself the ShardedSampler chunked
    path plus the service's counts/publish bookkeeping.
    """
    n = 100_000
    data = _data(n)

    start = time.perf_counter()
    quiet = QueryService(_deployment(), universe_size=UNIVERSE)
    quiet_report = quiet.serve(data, chunk_size=1024, clients=0, adversarial_clients=0)
    quiet_seconds = time.perf_counter() - start

    start = time.perf_counter()
    loaded = QueryService(
        _deployment(), staleness_rounds=2_048, universe_size=UNIVERSE
    )
    loaded_report = loaded.serve(
        data, chunk_size=1024, clients=4, adversarial_clients=1
    )
    loaded_seconds = time.perf_counter() - start

    assert quiet_report.rounds == loaded_report.rounds == n
    assert loaded_report.queries > 0
    retained = quiet_seconds / loaded_seconds
    assert retained >= 0.7, (
        f"concurrent readers retain only {retained:.2f}x of reader-free ingest "
        f"({loaded_seconds:.2f}s loaded vs {quiet_seconds:.2f}s quiet)"
    )


def test_service_query_latency_gate_on_1e5_stream():
    """Acceptance gate: bounded query p99 under mixed read/write load."""
    n = 100_000
    data = _data(n)
    service = QueryService(
        _deployment(), staleness_rounds=2_048, universe_size=UNIVERSE
    )
    report = service.serve(data, chunk_size=1024, clients=4, adversarial_clients=1)

    assert report.queries > 0
    assert report.query_p50 is not None and report.query_p99 is not None
    assert report.query_p50 <= report.query_p99
    assert report.query_p99 <= 0.25, (
        f"query p99 is {report.query_p99 * 1e3:.1f}ms under mixed load "
        f"({report.queries} queries, {report.clients} clients)"
    )
    # Benign clients may be served held snapshots, but never beyond the bound.
    assert report.max_staleness_served <= 2_048


def test_served_run_is_bit_reproducible_across_repeats_and_chunkings():
    """Fixed (seed, query schedule) => identical sampler state, regardless of
    ingest chunking: ServedSampler segments extend() at tick rounds, so the
    background read schedule lands on the same round indices either way."""
    n = 12_000
    data = _data(n)

    def served_state(chunk: int) -> tuple:
        served = ServedSampler(
            BernoulliSampler(0.02, seed=7),
            staleness_rounds=64,
            clients=3,
            query_period=32,
        )
        for start in range(0, n, chunk):
            served.extend(data[start : start + chunk], updates=False)
        return tuple(served.inner.sample), served.service_report()["ticks"]

    first_sample, first_ticks = served_state(1_024)
    again_sample, again_ticks = served_state(1_024)
    other_sample, other_ticks = served_state(777)
    assert first_sample == again_sample
    assert first_ticks == again_ticks == other_ticks == n // 32
    assert first_sample == other_sample
