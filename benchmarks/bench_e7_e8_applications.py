"""Benchmarks for E7 (Corollary 1.5 quantiles) and E8 (Corollary 1.6 heavy hitters)."""

from __future__ import annotations

from conftest import run_experiment_once

from repro.experiments.heavy_hitter_exp import run_heavy_hitters
from repro.experiments.quantile_exp import run_quantile_robustness


def test_bench_e7_quantile_robustness(benchmark, bench_config):
    result = run_experiment_once(benchmark, run_quantile_robustness, bench_config)
    at_bound = [row for row in result.rows if row["size_multiplier"] >= 1.0]
    assert all(row["failure_rate"] <= 0.5 for row in at_bound)


def test_bench_e8_heavy_hitters(benchmark, bench_config):
    result = run_experiment_once(benchmark, run_heavy_hitters, bench_config)
    corollary_rows = [row for row in result.rows if row["detector"] == "corollary-size"]
    assert all(row["promise_violation_rate"] <= 0.5 for row in corollary_rows)
    misra_rows = [row for row in result.rows if row["detector"] == "misra-gries"]
    assert all(row["promise_violation_rate"] == 0.0 for row in misra_rows)
