"""Benchmarks for E9 (range queries), E10 (center points) and E11 (clustering)."""

from __future__ import annotations

from conftest import run_experiment_once

from repro.experiments.center_point_exp import run_center_points
from repro.experiments.clustering_exp import run_clustering
from repro.experiments.range_query_exp import run_range_queries


def test_bench_e9_range_queries(benchmark, bench_config):
    result = run_experiment_once(benchmark, run_range_queries, bench_config)
    # Every query answered from the Theorem 1.2-sized sample stays within
    # epsilon of the truth (with slack for the reduced benchmark scale).
    assert all(row["mean_worst_query_error"] <= 2 * bench_config.epsilon for row in result.rows)


def test_bench_e10_center_points(benchmark, bench_config):
    result = run_experiment_once(benchmark, run_center_points, bench_config)
    theorem_rows = [row for row in result.rows if row["sizing"] == "theorem-size"]
    assert all(row["transfer_success_rate"] >= 0.5 for row in theorem_rows)


def test_bench_e11_clustering(benchmark, bench_config):
    result = run_experiment_once(benchmark, run_clustering, bench_config)
    large_sample_rows = [row for row in result.rows if row["sample_size"] >= 200]
    assert all(row["mean_cost_ratio"] < 3.0 for row in large_sample_rows)
