"""Benchmarks and acceptance gates for the sharded-sampler substrate.

The headline measurement: ingesting a 10^5-element stream into a 4-site
:class:`~repro.distributed.sharded.ShardedSampler` via the chunked path
(one vectorised routing assignment + one ``extend`` kernel call per site)
vs per-element routing (``process`` one element at a time).  The gate
requires **>= 2x** end to end; deterministic strategies must additionally
produce identical site substreams on both paths, and merged reads must be
seed-reproducible.
"""

from __future__ import annotations

import time

import numpy as np

from repro.adversary import UniformAdversary, run_adaptive_game
from repro.distributed import ShardedSampler
from repro.samplers import BernoulliSampler, ReservoirSampler
from repro.setsystems import PrefixSystem

UNIVERSE = 4_096


def _reservoir_site(rng):
    return ReservoirSampler(200, seed=rng)


def _bernoulli_site(rng):
    return BernoulliSampler(0.01, seed=rng)


def _data(n: int) -> list[int]:
    rng = np.random.default_rng(0)
    return [int(value) for value in rng.integers(1, UNIVERSE + 1, size=n)]


def _ingest_per_element(sharded: ShardedSampler, data: list[int]) -> None:
    for element in data:
        sharded.process(element)


def test_perf_sharded_chunked_ingest(benchmark):
    """Chunked per-site ingestion at moderate scale."""
    data = _data(20_000)

    def run():
        sharded = ShardedSampler(4, _reservoir_site, strategy="random", seed=1)
        sharded.extend(data, updates=False)
        return sharded

    sharded = benchmark(run)
    assert sharded.rounds_processed == 20_000


def test_sharded_chunked_routing_speedup_on_1e5_stream():
    """Acceptance gate: >= 2x over per-element routing at n = 10^5."""
    n = 100_000
    data = _data(n)

    start = time.perf_counter()
    fast = ShardedSampler(4, _reservoir_site, strategy="random", seed=1)
    fast.extend(data, updates=False)
    fast_seconds = time.perf_counter() - start

    start = time.perf_counter()
    slow = ShardedSampler(4, _reservoir_site, strategy="random", seed=1)
    _ingest_per_element(slow, data)
    slow_seconds = time.perf_counter() - start

    assert fast.rounds_processed == slow.rounds_processed == n
    assert sum(fast.site_counts) == sum(slow.site_counts) == n
    speedup = slow_seconds / fast_seconds
    assert speedup >= 2.0, (
        f"chunked sharded ingestion is only {speedup:.1f}x faster "
        f"({fast_seconds:.2f}s vs {slow_seconds:.2f}s)"
    )


def test_sharded_deterministic_routing_is_path_independent():
    """Hash routing must feed every site the identical substream on both paths."""
    data = _data(20_000)
    chunked = ShardedSampler(4, _bernoulli_site, strategy="hash", seed=3)
    chunked.extend(data, updates=False)
    sequential = ShardedSampler(4, _bernoulli_site, strategy="hash", seed=3)
    _ingest_per_element(sequential, data)
    assert chunked.site_counts == sequential.site_counts
    # Bernoulli kernels are bit-identical, so the merged samples must be too.
    assert list(chunked.sample) == list(sequential.sample)


def test_sharded_game_end_to_end_reproducible():
    """The sharded deployment plays the adaptive game reproducibly."""

    def play():
        return run_adaptive_game(
            ShardedSampler(4, _reservoir_site, strategy="random", seed=5),
            UniformAdversary(UNIVERSE, seed=6),
            20_000,
            set_system=PrefixSystem(UNIVERSE),
            epsilon=0.5,
            keep_updates=False,
        )

    first, second = play(), play()
    assert first.error == second.error
    assert first.sample == second.sample
