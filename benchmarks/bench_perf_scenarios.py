"""Benchmarks for the scenario engine.

The scenario layer is declarative sugar over ``BatchGameRunner``; its whole
value proposition is that the declarativeness is free.  The acceptance gate
here pins that: running a registered scenario through
``repro.scenarios.run_scenario`` must cost < 10% over hand-writing the
equivalent ``BatchGameRunner`` call (same factories, same checkpoints, same
seeds — the games themselves are bit-identical, so any extra time is pure
engine overhead: config validation, spec compilation, result aggregation).
"""

from __future__ import annotations

import time

from repro.adversary.batch import BatchGameRunner
from repro.scenarios import SCENARIOS, get_scenario, run_scenario
from repro.scenarios.builders import AdversaryFromSpec, SamplerFromSpec, build_set_system
from repro.scenarios.engine import _checkpoints

#: Moderate scale: long enough that the games dominate any fixed per-call
#: cost, short enough for the benchmark suite's time budget.
SCALE = dict(stream_length=4096, universe_size=256, trials=4)


def _run_direct(config):
    """The hand-written equivalent of ``run_config`` (no scenario layer)."""
    runner = BatchGameRunner(
        config.stream_length,
        set_system=build_set_system(config.set_system, config.universe_size),
        epsilon=config.epsilon,
        knowledge=config.knowledge,
        continuous=config.continuous,
        checkpoints=_checkpoints(config),
        seed=config.seed,
        workers=1,
    )
    samplers = {label: SamplerFromSpec(spec) for label, spec in config.samplers.items()}
    adversaries = {str(config.adversary["family"]): AdversaryFromSpec(config)}
    return runner.run_grid(samplers, adversaries, config.trials)


def _best_of(callable_, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_perf_scenario_engine_overhead_under_10_percent():
    """Acceptance gate: scenario layer < 10% over a direct BatchGameRunner call."""
    config = get_scenario("prefix_flood").base_config.replace(workers=1, **SCALE)

    direct_seconds, direct_cells = _best_of(lambda: _run_direct(config))
    scenario_seconds, result = _best_of(
        lambda: run_scenario("prefix_flood", workers=1, **SCALE)
    )

    # Same games were played: the scenario result must mirror the direct run.
    assert len(result.cells) == len(direct_cells)
    for cell, stats in zip(result.cells, direct_cells):
        assert cell["sampler"] == stats.sampler
        assert cell["mean_error"] == stats.mean_error

    # 10% relative gate, with a 20 ms absolute floor so sub-100ms timer noise
    # cannot produce false alarms on very fast machines.
    budget = 1.10 * direct_seconds + 0.020
    assert scenario_seconds <= budget, (
        f"scenario engine overhead too high: {scenario_seconds:.3f}s vs "
        f"{direct_seconds:.3f}s direct ({(scenario_seconds / direct_seconds - 1) * 100:.1f}%)"
    )


def test_perf_scenario_registry_smoke(benchmark):
    """One reduced-scale pass over every registered scenario (single round)."""

    def run_all_small():
        return [
            run_scenario(name, stream_length=256, universe_size=64, trials=1)
            for name in SCENARIOS
        ]

    results = benchmark.pedantic(run_all_small, rounds=1, iterations=1)
    assert len(results) == len(SCENARIOS)
    assert all(r.peak_discrepancy is not None for r in results)
