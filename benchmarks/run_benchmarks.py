#!/usr/bin/env python
"""Run the perf benchmark suite and write the machine-readable report.

Thin wrapper that delegates to the ``repro-experiments bench`` subcommand
(one CLI surface, defined once in :mod:`repro.cli`) so the suite can be
launched from a checkout without installing the package::

    PYTHONPATH=src python benchmarks/run_benchmarks.py --mode smoke
    PYTHONPATH=src python benchmarks/run_benchmarks.py --output BENCH_PR8.json

The report's ``results`` list carries one ``{op, n, seconds, throughput,
speedup}`` record per measured operation; the README performance table is
rendered from exactly this file (``--markdown`` prints it), so re-running
the suite and re-rendering keeps the documentation honest.
"""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))
