"""Per-element throughput micro-benchmarks for every sampler and summary (P1/P2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.samplers import (
    BernoulliSampler,
    GreenwaldKhannaSketch,
    KLLSketch,
    MergeReduceSummary,
    MisraGriesSummary,
    PrioritySampler,
    ReservoirSampler,
    SlidingWindowSampler,
    WeightedReservoirSampler,
)

STREAM_LENGTH = 20_000


@pytest.fixture(scope="module")
def workload() -> list[int]:
    rng = np.random.default_rng(0)
    return [int(x) for x in rng.integers(1, 100_000, size=STREAM_LENGTH)]


def test_perf_bernoulli_sampler(benchmark, workload):
    def run():
        sampler = BernoulliSampler(0.05, seed=1)
        sampler.extend(workload)
        return sampler.sample_size

    assert benchmark(run) > 0


def test_perf_reservoir_sampler(benchmark, workload):
    def run():
        sampler = ReservoirSampler(500, seed=1)
        sampler.extend(workload)
        return sampler.sample_size

    assert benchmark(run) == 500


def test_perf_weighted_reservoir_sampler(benchmark, workload):
    def run():
        sampler = WeightedReservoirSampler(500, seed=1)
        sampler.extend(workload)
        return sampler.sample_size

    assert benchmark(run) == 500


def test_perf_priority_sampler(benchmark, workload):
    def run():
        sampler = PrioritySampler(500, seed=1)
        sampler.extend(workload)
        return sampler.sample_size

    assert benchmark(run) == 500


def test_perf_sliding_window_sampler(benchmark, workload):
    # The sliding-window sampler's per-element cost scales with k log(window),
    # so its micro-benchmark uses a smaller configuration and stream slice.
    window_workload = workload[:4000]

    def run():
        sampler = SlidingWindowSampler(20, 500, seed=1)
        sampler.extend(window_workload)
        return sampler.sample_size

    assert benchmark(run) == 20


def test_perf_greenwald_khanna(benchmark, workload):
    def run():
        sketch = GreenwaldKhannaSketch(0.05)
        sketch.extend(workload)
        return sketch.memory_footprint()

    assert benchmark(run) > 0


def test_perf_merge_reduce(benchmark, workload):
    def run():
        summary = MergeReduceSummary(0.05)
        summary.extend(workload)
        return summary.memory_footprint()

    assert benchmark(run) > 0


def test_perf_misra_gries(benchmark, workload):
    def run():
        summary = MisraGriesSummary(100)
        summary.extend(workload)
        return summary.count

    assert benchmark(run) == STREAM_LENGTH


def test_perf_kll(benchmark, workload):
    def run():
        sketch = KLLSketch(k=200, seed=1)
        sketch.extend(workload)
        return sketch.count

    assert benchmark(run) == STREAM_LENGTH
