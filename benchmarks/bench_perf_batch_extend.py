"""Benchmarks for the batch game engine and the vectorised sampler fast paths.

The ``extend()`` measurements run on 10^6-element streams — the scale the
ROADMAP targets — comparing the numpy batch paths against per-element
``process()`` loops (timed at 10^5 and scaled, to keep the suite quick).
The grid benchmarks exercise :class:`repro.adversary.batch.BatchGameRunner`
end to end, in-process and across a worker pool.
"""

from __future__ import annotations

import time

import numpy as np

from repro.adversary import BatchGameRunner, UniformAdversary
from repro.samplers import BernoulliSampler, ReservoirSampler
from repro.setsystems import PrefixSystem

MILLION = 1_000_000
UNIVERSE = 4_096


def test_perf_bernoulli_extend_1e6(benchmark):
    data = np.arange(1, MILLION + 1)

    def run():
        sampler = BernoulliSampler(0.001, seed=0)
        sampler.extend(data, updates=False)
        return sampler.sample_size

    assert benchmark(run) > 0


def test_perf_reservoir_extend_1e6(benchmark):
    data = np.arange(1, MILLION + 1)

    def run():
        sampler = ReservoirSampler(1_000, seed=0)
        sampler.extend(data, updates=False)
        return sampler.sample_size

    assert benchmark(run) == 1_000


def test_perf_reservoir_extend_with_updates_1e6(benchmark):
    """Per-element SampleUpdate records preserved — the compatible fast path."""
    data = np.arange(1, MILLION + 1)

    def run():
        sampler = ReservoirSampler(1_000, seed=0)
        return len(sampler.extend(data))

    assert benchmark(run) == MILLION


def test_extend_fast_paths_beat_process_loops():
    """Single-shot sanity gate: the vectorised paths win by a wide margin.

    The loop is timed on 10^5 elements and scaled by 10 (it is linear in the
    stream length) so the check stays fast.
    """
    data = list(range(1, MILLION + 1))

    start = time.perf_counter()
    fast = ReservoirSampler(1_000, seed=0)
    fast.extend(data, updates=False)
    fast_seconds = time.perf_counter() - start

    start = time.perf_counter()
    slow = ReservoirSampler(1_000, seed=0)
    for element in data[: MILLION // 10]:
        slow.process(element)
    loop_seconds = 10 * (time.perf_counter() - start)

    assert fast_seconds < loop_seconds, (
        f"vectorised extend ({fast_seconds:.2f}s) should beat the process loop "
        f"(~{loop_seconds:.2f}s extrapolated)"
    )


# ----------------------------------------------------------------------
# Batch game engine
# ----------------------------------------------------------------------
def _make_reservoir(rng: np.random.Generator) -> ReservoirSampler:
    return ReservoirSampler(100, seed=rng)


def _make_bernoulli(rng: np.random.Generator) -> BernoulliSampler:
    return BernoulliSampler(0.02, seed=rng)


def _make_uniform(rng: np.random.Generator) -> UniformAdversary:
    return UniformAdversary(UNIVERSE, seed=rng)


def _run_grid(workers: int):
    runner = BatchGameRunner(
        5_000,
        set_system=PrefixSystem(UNIVERSE),
        epsilon=0.2,
        seed=17,
        workers=workers,
    )
    return runner.run_grid(
        samplers={"reservoir": _make_reservoir, "bernoulli": _make_bernoulli},
        adversaries={"uniform": _make_uniform},
        trials=8,
    )


def test_perf_batch_grid_serial(benchmark):
    cells = benchmark.pedantic(_run_grid, args=(1,), rounds=1, iterations=1)
    assert len(cells) == 2 and all(c.trials == 8 for c in cells)


def test_perf_batch_grid_worker_pool(benchmark):
    cells = benchmark.pedantic(_run_grid, args=(4,), rounds=1, iterations=1)
    assert len(cells) == 2 and all(c.trials == 8 for c in cells)
