"""Benchmarks for E12 (load balancing), E13 (martingale checks) and E14 (deterministic comparison)."""

from __future__ import annotations

from conftest import run_experiment_once

from repro.experiments.deterministic_comparison import run_deterministic_comparison
from repro.experiments.load_balancing_exp import run_load_balancing
from repro.experiments.martingale_check import run_martingale_check


def test_bench_e12_load_balancing(benchmark, bench_config):
    result = run_experiment_once(benchmark, run_load_balancing, bench_config)
    static_rows = [row for row in result.rows if row["workload"] != "adaptive-client"]
    assert all(row["violation_rate"] <= 0.5 for row in static_rows)


def test_bench_e13_martingale_check(benchmark, bench_config):
    result = run_experiment_once(benchmark, run_martingale_check, bench_config)
    # The claimed per-step difference bounds must never be violated.
    assert all(row["difference_bound_violations"] == 0 for row in result.rows)


def test_bench_e14_deterministic_comparison(benchmark, bench_config):
    result = run_experiment_once(benchmark, run_deterministic_comparison, bench_config)
    reservoir_rows = [row for row in result.rows if row["method"] == "reservoir"]
    assert all(
        row["mean_worst_quantile_error"] <= 2 * bench_config.epsilon for row in reservoir_rows
    )
