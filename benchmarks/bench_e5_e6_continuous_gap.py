"""Benchmarks for E5 (Theorem 1.4 continuous robustness) and E6 (VC vs cardinality gap)."""

from __future__ import annotations

from conftest import run_experiment_once

from repro.experiments.continuous import run_continuous_robustness
from repro.experiments.gap import run_static_vs_adaptive_gap


def test_bench_e5_continuous_robustness(benchmark, bench_config):
    result = run_experiment_once(benchmark, run_continuous_robustness, bench_config)
    continuous_rows = [row for row in result.rows if row["sizing"] == "thm1.4-continuous"]
    # At the Theorem 1.4 size, checkpoint violations should be rare.
    assert all(row["violation_rate"] <= 0.5 for row in continuous_rows)


def test_bench_e6_static_vs_adaptive_gap(benchmark, bench_config):
    result = run_experiment_once(benchmark, run_static_vs_adaptive_gap, bench_config)
    rows = {(row["universe"], row["sizing"], row["adversary"]): row for row in result.rows}
    # The paper's table of fates: only the VC-sized sample under attack fails.
    assert rows[("huge", "vc-sized", "static")]["failure_rate"] == 0.0
    assert rows[("huge", "vc-sized", "adaptive")]["failure_rate"] > 0.5
    assert rows[("moderate", "lnR-sized", "adaptive")]["failure_rate"] == 0.0
