"""Benchmarks and acceptance gates for elastic sharded deployments (PR 8).

Three claims are gated:

* **resharding is cheap** — a mid-stream split + merge moves O(capacity)
  elements against an O(n) stream, so the elastic run must stay within 50%
  of static-topology ingestion wall time at n = 10^5;
* **crash/recovery is cheap** — a replay-buffered outage trades per-site
  kernel work for buffering plus one ``extend`` flush, so it too must stay
  within 50% of the clean run;
* **the coordinator is message-optimal in the [CTW16] sense** — Q merged
  reads of a K-site deployment cost exactly Q*K site->coordinator messages
  and at most Q*K*capacity payload, and the memoised view spends *zero*
  additional messages on repeated reads of an unchanged deployment.
"""

from __future__ import annotations

import time

import numpy as np

from repro.distributed import FaultPlan, Reshard, ShardedSampler, SiteCrash
from repro.samplers import ReservoirSampler

UNIVERSE = 4_096
CAPACITY = 200


def _site(rng):
    return ReservoirSampler(CAPACITY, seed=rng)


def _data(n: int) -> list[int]:
    rng = np.random.default_rng(0)
    return [int(value) for value in rng.integers(1, UNIVERSE + 1, size=n)]


def _split_merge_plan(n: int) -> FaultPlan:
    return FaultPlan(
        reshards=(
            Reshard(round=(2 * n) // 5, op="split", site=0),
            Reshard(round=(7 * n) // 10, op="merge", site=0, other=4),
        )
    )


def _crash_plan(n: int) -> FaultPlan:
    return FaultPlan(
        crashes=(
            SiteCrash(site=1, round=n // 3, recovery_rounds=n // 4, loss="replay"),
        )
    )


def test_perf_elastic_resharding_ingest(benchmark):
    """Chunked ingestion through a split + merge at moderate scale."""
    n = 20_000
    data = _data(n)
    plan = _split_merge_plan(n)

    def run():
        sharded = ShardedSampler(4, _site, strategy="hash", seed=1, fault_plan=plan)
        sharded.extend(data, updates=False)
        return sharded

    sharded = benchmark(run)
    assert sharded.rounds_processed == n
    assert sharded.num_sites == 4  # split to 5, merged back to 4


def test_perf_elastic_fault_recovery(benchmark):
    """Chunked ingestion through a replay-buffered outage at moderate scale."""
    n = 20_000
    data = _data(n)
    plan = _crash_plan(n)

    def run():
        sharded = ShardedSampler(4, _site, strategy="hash", seed=1, fault_plan=plan)
        sharded.extend(data, updates=False)
        return sharded

    sharded = benchmark(run)
    assert sharded.rounds_processed == n
    assert not sharded.down_sites  # recovered before the stream ended


def test_resharding_overhead_gate_on_1e5_stream():
    """Acceptance gate: split + merge adds <= 50% over static topology."""
    n = 100_000
    data = _data(n)

    start = time.perf_counter()
    static = ShardedSampler(4, _site, strategy="hash", seed=1)
    static.extend(data, updates=False)
    static_seconds = time.perf_counter() - start

    start = time.perf_counter()
    elastic = ShardedSampler(
        4, _site, strategy="hash", seed=1, fault_plan=_split_merge_plan(n)
    )
    elastic.extend(data, updates=False)
    elastic_seconds = time.perf_counter() - start

    assert static.rounds_processed == elastic.rounds_processed == n
    assert sum(elastic.site_counts) == n
    overhead = elastic_seconds / static_seconds
    assert overhead <= 1.5, (
        f"resharding ingestion costs {overhead:.2f}x static "
        f"({elastic_seconds:.2f}s vs {static_seconds:.2f}s)"
    )


def test_fault_recovery_overhead_gate_on_1e5_stream():
    """Acceptance gate: a replay-buffered outage adds <= 50% over clean."""
    n = 100_000
    data = _data(n)

    start = time.perf_counter()
    clean = ShardedSampler(4, _site, strategy="hash", seed=1)
    clean.extend(data, updates=False)
    clean_seconds = time.perf_counter() - start

    start = time.perf_counter()
    faulted = ShardedSampler(
        4, _site, strategy="hash", seed=1, fault_plan=_crash_plan(n)
    )
    faulted.extend(data, updates=False)
    faulted_seconds = time.perf_counter() - start

    assert clean.rounds_processed == faulted.rounds_processed == n
    report = faulted.degradation_report()
    # Replay re-admits every buffered element at recovery; what stays lost
    # is exactly the crashed site's wiped pre-crash state.
    assert report["pending_replay"] == 0
    assert report["dropped_rounds"] == 0
    assert 0 < report["lost_rounds"] < n // 3
    overhead = faulted_seconds / clean_seconds
    assert overhead <= 1.5, (
        f"crash/recovery ingestion costs {overhead:.2f}x clean "
        f"({faulted_seconds:.2f}s vs {clean_seconds:.2f}s)"
    )


def test_message_cost_ledger_matches_ctw16_bound_shape():
    """Q coordinator reads of a K-site deployment spend Q*K messages and at
    most Q*K*capacity payload — the [CTW16] communication-bound shape.

    Each read follows fresh ingestion, so the memoised view cannot serve it;
    a second loop of reads *without* ingestion must spend zero additional
    messages (the memoisation is what makes repeated queries O(1))."""
    sites, reads = 4, 10
    sharded = ShardedSampler(sites, _site, strategy="hash", seed=1)
    data = _data(reads * 2_000)
    for index in range(reads):
        sharded.extend(data[index * 2_000 : (index + 1) * 2_000], updates=False)
        sharded.merged_sampler()

    ledger = sharded.ledger
    assert ledger.events("merge") == reads
    assert ledger.messages("merge") == reads * sites
    assert ledger.payload("merge") <= reads * sites * CAPACITY

    for _ in range(reads):
        sharded.merged_sampler()
    assert ledger.messages("merge") == reads * sites, (
        "repeated reads of an unchanged deployment must be served from the "
        "memoised view without new site messages"
    )
