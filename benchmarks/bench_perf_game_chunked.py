"""Benchmarks and acceptance gates for the chunked columnar game engine.

The headline measurements: 10^5-element games against an oblivious
(uniform) adversary, chunked execution (adversary segments + vectorised
sampler ``extend`` + columnar ``UpdateBatch``) vs the per-element path that
stays available via ``chunk_size=1``.  The gates require **≥ 3×** end to end
for both the endpoint adaptive game and the continuous game with dense
checkpoints; samplers whose kernels are bit-identical to sequential
processing (Bernoulli here) must additionally produce the identical stream,
sample and errors on both paths.
"""

from __future__ import annotations

import time

from repro.adversary import UniformAdversary, run_adaptive_game, run_continuous_game
from repro.samplers import BernoulliSampler, ReservoirSampler
from repro.setsystems import PrefixSystem

UNIVERSE = 4_096


def _adaptive(n: int, chunk_size, seed: int = 0, sampler=None):
    return run_adaptive_game(
        sampler if sampler is not None else ReservoirSampler(200, seed=seed),
        UniformAdversary(UNIVERSE, seed=seed + 1),
        n,
        set_system=PrefixSystem(UNIVERSE),
        epsilon=0.5,
        keep_updates=False,
        chunk_size=chunk_size,
    )


def _continuous(n: int, chunk_size, every: int, seed: int = 0):
    return run_continuous_game(
        ReservoirSampler(200, seed=seed),
        UniformAdversary(UNIVERSE, seed=seed + 1),
        n,
        set_system=PrefixSystem(UNIVERSE),
        checkpoints=range(every, n + 1, every),
        keep_updates=False,
        chunk_size=chunk_size,
    )


def test_perf_adaptive_chunked(benchmark):
    """Chunked endpoint game at moderate scale."""
    result = benchmark(_adaptive, 20_000, None)
    assert result.stream_length == 20_000


def test_perf_adaptive_per_element(benchmark):
    """The per-element path at the same scale (the chunked path's baseline)."""
    result = benchmark.pedantic(_adaptive, args=(20_000, 1), rounds=1, iterations=1)
    assert result.stream_length == 20_000


def test_perf_continuous_chunked(benchmark):
    """Chunked continuous game, 200 checkpoints on a 20k stream."""
    result = benchmark(_continuous, 20_000, None, 100)
    assert len(result.checkpoint_errors) == 200


def test_chunked_equivalence_bit_identical_sampler():
    """Bernoulli's kernel is bit-identical, so the whole game must be."""
    n = 20_000
    per_element = _adaptive(n, 1, sampler=BernoulliSampler(0.01, seed=7))
    chunked = _adaptive(n, None, sampler=BernoulliSampler(0.01, seed=7))
    assert per_element.stream == chunked.stream
    assert per_element.sample == chunked.sample
    assert per_element.error == chunked.error


def test_adaptive_game_speedup_on_1e5_stream():
    """Acceptance gate: >= 3x over the per-element path at n = 10^5."""
    n = 100_000
    start = time.perf_counter()
    fast = _adaptive(n, None)
    fast_seconds = time.perf_counter() - start

    start = time.perf_counter()
    slow = _adaptive(n, 1)
    slow_seconds = time.perf_counter() - start

    assert fast.stream_length == slow.stream_length == n
    speedup = slow_seconds / fast_seconds
    assert speedup >= 3.0, (
        f"chunked adaptive game is only {speedup:.1f}x faster "
        f"({fast_seconds:.2f}s vs {slow_seconds:.2f}s)"
    )


def test_continuous_game_speedup_on_1e5_stream_dense_checkpoints():
    """Acceptance gate: >= 3x with dense checkpoints at n = 10^5.

    Both paths use the incremental tracker, so the measured gap isolates the
    chunked stream/sampler pipeline rather than checkpoint answering.
    """
    n, every = 100_000, 250
    start = time.perf_counter()
    fast = _continuous(n, None, every)
    fast_seconds = time.perf_counter() - start

    start = time.perf_counter()
    slow = _continuous(n, 1, every)
    slow_seconds = time.perf_counter() - start

    assert len(fast.checkpoint_errors) == len(slow.checkpoint_errors) == n // every
    assert fast.checkpoints == slow.checkpoints
    speedup = slow_seconds / fast_seconds
    assert speedup >= 3.0, (
        f"chunked continuous game is only {speedup:.1f}x faster "
        f"({fast_seconds:.2f}s vs {slow_seconds:.2f}s)"
    )
