"""Benchmarks for the incremental discrepancy tracker in the continuous game.

The headline measurement: ``run_continuous_game`` with a dense checkpoint
schedule on a 10^5-element stream over the prefix system, incremental tracker
vs the seed behaviour (a full ``max_discrepancy`` recomputation — i.e. a sort
of the whole prefix — at every checkpoint).  The tracker path is required to
be at least 5x faster at that scale, and its reported checkpoint errors are
bit-identical to the recomputation (asserted here and property-tested in
``tests/test_tracker_incremental.py``).
"""

from __future__ import annotations

import time

from repro.adversary import UniformAdversary, run_continuous_game
from repro.samplers import ReservoirSampler
from repro.setsystems import IntervalSystem, PrefixSystem

UNIVERSE = 4_096


def _play(n: int, system, incremental: bool, every: int, seed: int = 0):
    return run_continuous_game(
        ReservoirSampler(200, seed=seed),
        UniformAdversary(UNIVERSE, seed=seed + 1),
        n,
        set_system=system,
        checkpoints=range(every, n + 1, every),
        incremental=incremental,
    )


def test_perf_continuous_prefix_tracker(benchmark):
    """Tracker path at moderate scale (200 checkpoints on a 20k stream)."""
    result = benchmark(_play, 20_000, PrefixSystem(UNIVERSE), True, 100)
    assert len(result.checkpoint_errors) == 200


def test_perf_continuous_prefix_seed_path(benchmark):
    """Seed behaviour at the same scale: re-sort the prefix per checkpoint."""
    result = benchmark.pedantic(
        _play,
        args=(20_000, PrefixSystem(UNIVERSE), False, 100),
        rounds=1,
        iterations=1,
    )
    assert len(result.checkpoint_errors) == 200


def test_perf_continuous_interval_tracker(benchmark):
    result = benchmark(_play, 20_000, IntervalSystem(UNIVERSE), True, 100)
    assert len(result.checkpoint_errors) == 200


def test_tracker_speedup_on_1e5_stream():
    """Acceptance gate: >= 5x over the seed path at n = 10^5, dense checkpoints.

    One timed shot each (the seed path is far too slow for calibration
    rounds); errors must also agree bit for bit between the two paths.
    """
    n, every = 100_000, 250
    system = PrefixSystem(UNIVERSE)

    start = time.perf_counter()
    fast = _play(n, system, True, every)
    fast_seconds = time.perf_counter() - start

    start = time.perf_counter()
    slow = _play(n, system, False, every)
    slow_seconds = time.perf_counter() - start

    assert fast.checkpoint_errors == slow.checkpoint_errors
    speedup = slow_seconds / fast_seconds
    assert speedup >= 5.0, (
        f"incremental tracker is only {speedup:.1f}x faster "
        f"({fast_seconds:.2f}s vs {slow_seconds:.2f}s)"
    )
