"""Micro-benchmarks for the game loop, the attacks and the discrepancy sweeps (P3/P4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary import (
    BisectionAdversary,
    GreedyDensityAdversary,
    ThresholdAttackAdversary,
    UniformAdversary,
    run_adaptive_game,
)
from repro.samplers import BernoulliSampler, ReservoirSampler
from repro.setsystems import IntervalSystem, Prefix, PrefixSystem, SingletonSystem

STREAM_LENGTH = 5_000
UNIVERSE = 4_096


def test_perf_game_static_uniform(benchmark):
    def run():
        result = run_adaptive_game(
            ReservoirSampler(200, seed=0),
            UniformAdversary(UNIVERSE, seed=0),
            STREAM_LENGTH,
            keep_updates=False,
        )
        return result.sample_size

    assert benchmark(run) == 200


def test_perf_game_figure3_attack(benchmark):
    def run():
        adversary = ThresholdAttackAdversary.for_reservoir(50, STREAM_LENGTH)
        result = run_adaptive_game(
            ReservoirSampler(50, seed=0), adversary, STREAM_LENGTH, keep_updates=False
        )
        return result.sample_size

    assert benchmark(run) == 50


def test_perf_game_bisection_attack(benchmark):
    def run():
        result = run_adaptive_game(
            BernoulliSampler(0.05, seed=0),
            BisectionAdversary(),
            STREAM_LENGTH,
            keep_updates=False,
        )
        return result.stream_length

    assert benchmark(run) == STREAM_LENGTH


def test_perf_game_greedy_attack(benchmark):
    def run():
        adversary = GreedyDensityAdversary(Prefix(UNIVERSE // 2), 1, UNIVERSE)
        result = run_adaptive_game(
            ReservoirSampler(200, seed=0), adversary, STREAM_LENGTH, keep_updates=False
        )
        return result.stream_length

    assert benchmark(run) == STREAM_LENGTH


@pytest.fixture(scope="module")
def discrepancy_data() -> tuple[list[int], list[int]]:
    rng = np.random.default_rng(3)
    stream = [int(x) for x in rng.integers(1, UNIVERSE + 1, size=STREAM_LENGTH)]
    sample = stream[:: STREAM_LENGTH // 400]
    return stream, sample


def test_perf_prefix_discrepancy(benchmark, discrepancy_data):
    stream, sample = discrepancy_data
    system = PrefixSystem(UNIVERSE)
    result = benchmark(system.max_discrepancy, stream, sample)
    assert 0.0 <= result.error <= 1.0


def test_perf_interval_discrepancy(benchmark, discrepancy_data):
    stream, sample = discrepancy_data
    system = IntervalSystem(UNIVERSE)
    result = benchmark(system.max_discrepancy, stream, sample)
    assert 0.0 <= result.error <= 1.0


def test_perf_singleton_discrepancy(benchmark, discrepancy_data):
    stream, sample = discrepancy_data
    system = SingletonSystem(UNIVERSE)
    result = benchmark(system.max_discrepancy, stream, sample)
    assert 0.0 <= result.error <= 1.0


def test_perf_exact_bigint_discrepancy(benchmark):
    # The exact-arithmetic fallback used by the Figure-3 attack streams.
    base = 2**200
    stream = [base + 37 * i for i in range(2_000)]
    sample = stream[::20]
    system = PrefixSystem(2**220)
    result = benchmark(system.max_discrepancy, stream, sample)
    assert 0.0 <= result.error <= 1.0
