"""Benchmarks and acceptance gates for the replicated-defense wrappers.

A replication defense runs ``copies`` full samplers behind one streaming
interface, with one vectorised ``extend`` kernel call per copy per segment.
The cost model is therefore *linear in the copy count*, and the gate pins
it: ingesting a 10^5-element stream through a 2-copy defense must cost no
more than ``copies x undefended + 20%`` bookkeeping.  A regression here
usually means the wrapper fell off the batched path (per-element fan-out)
or started materialising update records it was asked to suppress.
"""

from __future__ import annotations

import time

import numpy as np

from repro.defenses import (
    DifferenceEstimatorSampler,
    DPAggregateSampler,
    SketchSwitchingSampler,
)
from repro.samplers import BernoulliSampler, SlidingWindowSampler

UNIVERSE = 4_096
COPIES = 2
#: Copy-linear cost target: defended <= COPIES * undefended * (1 + slack).
#: The slack absorbs serving-index bookkeeping and timer noise on shared
#: runners (the gate compares two timings of the same process).
SLACK = 0.2


def _data(n: int) -> list[int]:
    rng = np.random.default_rng(0)
    return [int(value) for value in rng.integers(1, UNIVERSE + 1, size=n)]


def _bernoulli_factory(rng):
    return BernoulliSampler(0.02, seed=rng)


def _window_factory(rng):
    return SlidingWindowSampler(64, 4_096, seed=rng)


def _time_ingest(make_sampler, data) -> float:
    sampler = make_sampler()
    start = time.perf_counter()
    sampler.extend(data, updates=False)
    seconds = time.perf_counter() - start
    assert sampler.rounds_processed == len(data)
    return seconds


def test_perf_defended_ingest(benchmark):
    """Chunked defended ingestion at moderate scale."""
    data = _data(20_000)

    def run():
        defended = SketchSwitchingSampler(_bernoulli_factory, copies=COPIES, seed=1)
        defended.extend(data, updates=False)
        return defended

    defended = benchmark(run)
    assert defended.rounds_processed == 20_000


def test_defended_ingest_is_copy_linear_on_1e5_stream():
    """Acceptance gate: defended extend <= copies x undefended + 20%."""
    n = 100_000
    data = _data(n)

    undefended_seconds = _time_ingest(lambda: _bernoulli_factory(1), data)
    budget = COPIES * undefended_seconds * (1.0 + SLACK)

    for label, make_sampler in (
        (
            "sketch_switching",
            lambda: SketchSwitchingSampler(_bernoulli_factory, copies=COPIES, seed=1),
        ),
        (
            "dp_aggregate",
            lambda: DPAggregateSampler(_bernoulli_factory, copies=COPIES, seed=1),
        ),
    ):
        defended_seconds = _time_ingest(make_sampler, data)
        assert defended_seconds <= budget, (
            f"{label} ingestion costs {defended_seconds:.3f}s vs an undefended "
            f"{undefended_seconds:.3f}s — over the {COPIES}x + {SLACK:.0%} "
            f"budget of {budget:.3f}s"
        )


def test_difference_estimator_ingest_is_copy_linear():
    """The window-family wrapper obeys the same copy-linear budget."""
    n = 50_000
    data = _data(n)

    undefended_seconds = _time_ingest(lambda: _window_factory(1), data)
    defended_seconds = _time_ingest(
        lambda: DifferenceEstimatorSampler(_window_factory, copies=COPIES, seed=1),
        data,
    )
    budget = COPIES * undefended_seconds * (1.0 + SLACK)
    assert defended_seconds <= budget, (
        f"difference-estimator ingestion costs {defended_seconds:.3f}s vs an "
        f"undefended {undefended_seconds:.3f}s — over the {COPIES}x + "
        f"{SLACK:.0%} budget of {budget:.3f}s"
    )
