"""Benchmarks for E3 (Theorem 1.3 / Figure 3 attack) and E4 (introduction bisection attack)."""

from __future__ import annotations

from conftest import run_experiment_once

from repro.experiments.attack import run_attack_lower_bound, run_bisection_attack


def test_bench_e3_attack_lower_bound(benchmark, bench_config):
    result = run_experiment_once(benchmark, run_attack_lower_bound, bench_config)
    reservoir_rows = [row for row in result.rows if row["mechanism"] == "reservoir"]
    below = [row for row in reservoir_rows if row["below_threshold"]]
    above = [row for row in reservoir_rows if not row["below_threshold"]]
    # Shape: the attack wins below the Theorem 1.3 threshold and loses for
    # samples that are a constant fraction of the stream.
    assert min(row["mean_error"] for row in below) > 0.5
    assert min(row["mean_error"] for row in above) < 0.3


def test_bench_e4_bisection_attack(benchmark, bench_config):
    result = run_experiment_once(benchmark, run_bisection_attack, bench_config)
    bernoulli_rows = [row for row in result.rows if row["sampler"] == "bernoulli"]
    # The sample is exactly the smallest elements with probability 1.
    assert all(row["sample_equals_smallest_rate"] == 1.0 for row in bernoulli_rows)
