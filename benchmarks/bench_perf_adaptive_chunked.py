"""Benchmarks and acceptance gates for cadence-aware chunked *adaptive* games.

PR 3's chunked engine accelerated oblivious games but fell back to the
per-element path for every adaptive adversary — the very games the paper is
about.  The decision-cadence protocol
(:class:`repro.adversary.base.CadencedAdversary`) closes that gap: an
adaptive adversary declares how often it observes the sampler and commits
whole decision blocks in between, so the runners feed the blocks through the
vectorised sampler kernels.

Gates (n = 10^5 adaptive games, cadence-declaring attack adversaries):

* **≥ 3× end to end** over the ``chunk_size=1`` per-element path for the
  endpoint game, for both feedback shapes — a sample-observing attack
  (greedy density, ``decision_needs="sample"``) and an update-driven attack
  (the Figure-3 threshold attack, ``decision_needs="updates"``) — and for
  the continuous game with checkpoints.
* **Bit identity**: the adversary's decision sequence is chunking-
  independent, so against a sampler whose kernel is bit-identical to
  sequential processing (Bernoulli) the whole game — stream, sample, error —
  must match the ``chunk_size=1`` realisation exactly.
"""

from __future__ import annotations

import time

from repro.adversary import (
    MixingGreedyDensityAdversary,
    ThresholdAttackAdversary,
    run_adaptive_game,
    run_continuous_game,
)
from repro.samplers import BernoulliSampler, ReservoirSampler
from repro.setsystems import Prefix, PrefixSystem

UNIVERSE = 4_096
#: Reaction cadence used by the gates: coarse enough that kernel launches
#: amortise, fine enough that the attack stays visibly adaptive (hundreds of
#: decision points on the gated streams).
PERIOD = 256


def _greedy(period: int = PERIOD) -> MixingGreedyDensityAdversary:
    return MixingGreedyDensityAdversary(
        Prefix(UNIVERSE // 4), 1, UNIVERSE, decision_period=period
    )


def _adaptive(n: int, chunk_size, seed: int = 0, sampler=None, adversary=None):
    return run_adaptive_game(
        sampler if sampler is not None else ReservoirSampler(200, seed=seed),
        adversary if adversary is not None else _greedy(),
        n,
        set_system=PrefixSystem(UNIVERSE),
        epsilon=0.5,
        keep_updates=False,
        chunk_size=chunk_size,
    )


def _continuous(n: int, chunk_size, every: int, seed: int = 0):
    return run_continuous_game(
        ReservoirSampler(200, seed=seed),
        _greedy(),
        n,
        set_system=PrefixSystem(UNIVERSE),
        checkpoints=range(every, n + 1, every),
        keep_updates=False,
        chunk_size=chunk_size,
    )


def _timed(function, *args):
    start = time.perf_counter()
    result = function(*args)
    return result, time.perf_counter() - start


def test_perf_adaptive_cadence_chunked(benchmark):
    """Chunked cadence game at moderate scale."""
    result = benchmark(_adaptive, 20_000, None)
    assert result.stream_length == 20_000


def test_perf_adaptive_cadence_per_element(benchmark):
    """The per-element path at the same scale (the chunked path's baseline)."""
    result = benchmark.pedantic(_adaptive, args=(20_000, 1), rounds=1, iterations=1)
    assert result.stream_length == 20_000


def test_cadence_equivalence_bit_identical_sampler():
    """Bernoulli's kernel is bit-identical and the decision sequence is
    chunking-independent, so the whole cadenced game must be too."""
    n = 20_000
    per_element = _adaptive(
        n, 1, sampler=BernoulliSampler(0.01, seed=7), adversary=_greedy(64)
    )
    chunked = _adaptive(
        n, None, sampler=BernoulliSampler(0.01, seed=7), adversary=_greedy(64)
    )
    assert per_element.stream == chunked.stream
    assert per_element.sample == chunked.sample
    assert per_element.error == chunked.error


def test_adaptive_cadence_speedup_on_1e5_stream():
    """Acceptance gate: >= 3x for a sample-observing cadence attack at n = 10^5."""
    n = 100_000
    fast, fast_seconds = _timed(_adaptive, n, None)
    slow, slow_seconds = _timed(_adaptive, n, 1)
    assert fast.stream_length == slow.stream_length == n
    speedup = slow_seconds / fast_seconds
    assert speedup >= 3.0, (
        f"chunked cadence game is only {speedup:.1f}x faster "
        f"({fast_seconds:.2f}s vs {slow_seconds:.2f}s)"
    )


def test_update_driven_cadence_speedup_on_1e5_stream():
    """Acceptance gate: >= 3x for an update-driven cadence attack at n = 10^5.

    The Figure-3 threshold attack reads only per-round acceptance records
    (``decision_needs="updates"``): the runner skips materialising the
    sample view entirely and hands whole columnar ``UpdateBatch`` records to
    ``observe_block``.
    """
    n = 100_000

    def play(chunk_size):
        adversary = ThresholdAttackAdversary.for_bernoulli(
            0.001, n, decision_period=128
        )
        return run_adaptive_game(
            BernoulliSampler(0.001, seed=0),
            adversary,
            n,
            keep_updates=False,
            chunk_size=chunk_size,
        )

    fast, fast_seconds = _timed(play, None)
    slow, slow_seconds = _timed(play, 1)
    # Bit identity rides along: Bernoulli's kernel is bit-identical, so the
    # two realisations must agree exactly.
    assert fast.stream == slow.stream
    assert fast.sample == slow.sample
    speedup = slow_seconds / fast_seconds
    assert speedup >= 3.0, (
        f"chunked update-driven cadence game is only {speedup:.1f}x faster "
        f"({fast_seconds:.2f}s vs {slow_seconds:.2f}s)"
    )


def test_continuous_cadence_speedup_on_1e5_stream():
    """Acceptance gate: >= 3x for the continuous cadence game at n = 10^5.

    Checkpoints every 1000 rounds; both paths answer them from the
    incremental tracker, so the measured gap isolates the chunked
    stream/sampler pipeline rather than checkpoint answering.
    """
    n, every = 100_000, 1_000
    fast, fast_seconds = _timed(_continuous, n, None, every)
    slow, slow_seconds = _timed(_continuous, n, 1, every)
    assert len(fast.checkpoint_errors) == len(slow.checkpoint_errors) == n // every
    assert fast.checkpoints == slow.checkpoints
    speedup = slow_seconds / fast_seconds
    assert speedup >= 3.0, (
        f"chunked continuous cadence game is only {speedup:.1f}x faster "
        f"({fast_seconds:.2f}s vs {slow_seconds:.2f}s)"
    )
