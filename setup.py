"""Setuptools entry point.

All package metadata lives in ``pyproject.toml`` (PEP 621).  This shim is
kept so that environments with older tooling — or fully offline environments
where PEP 517 build isolation cannot download build dependencies — can still
run ``python setup.py develop`` / ``pip install -e . --no-build-isolation``
against a stock setuptools.  See README "Development workflow" for the
supported install paths.
"""

from setuptools import setup

setup()
