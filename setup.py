"""Setuptools entry point.

All package metadata lives in ``setup.cfg``.  A ``setup.py`` shim (rather than
a ``pyproject.toml`` build-system table) is used deliberately so that
``pip install -e .`` works in fully offline environments: PEP 517 build
isolation would otherwise try to download setuptools/wheel at install time.
"""

from setuptools import setup

setup()
