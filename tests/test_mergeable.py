"""Property tests pinning the Mergeable protocol's merge-equivalence guarantees.

Every mergeable sampler family must stay within the same error guarantee on
a sharded-and-merged run as a single sampler on the concatenated stream, and
the merge must be **bit-identical** where it is exact:

* Bernoulli and sliding-window merges are exact: when the part samplers
  consume the same underlying bit stream as one sampler over the
  concatenated stream (shared generator), the merged state equals the single
  sampler's state bit for bit.
* The reservoir merge is an exactly uniform draw (not bit-identical by
  design — it adds coordinator randomness) and is pinned structurally:
  merged size, multiset membership, stream accounting, determinism under a
  fixed merge generator.
* Misra–Gries merges stay within the ``n // (capacity + 1)`` underestimate
  budget, with :attr:`max_underestimate` tracking the realised error
  exactly; without truncation the merge is bit-identical to a single
  summary.
* KLL merges preserve the element count and the ``O(eps n)`` rank-error
  regime.
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import ShardedSampler
from repro.exceptions import ConfigurationError
from repro.rng import ensure_generator, spawn_generators
from repro.samplers import (
    BernoulliSampler,
    KLLSketch,
    Mergeable,
    MisraGriesSummary,
    ReservoirSampler,
    SlidingWindowSampler,
)

streams = st.lists(st.integers(min_value=1, max_value=64), min_size=2, max_size=300)


def _split(stream: list, fraction: float) -> tuple[list, list]:
    cut = max(1, min(len(stream) - 1, int(len(stream) * fraction)))
    return stream[:cut], stream[cut:]


class TestProtocol:
    def test_mergeable_families_satisfy_the_protocol(self):
        assert isinstance(BernoulliSampler(0.5, seed=0), Mergeable)
        assert isinstance(ReservoirSampler(4, seed=0), Mergeable)
        assert isinstance(SlidingWindowSampler(4, 16, seed=0), Mergeable)
        assert isinstance(MisraGriesSummary(4), Mergeable)
        assert isinstance(KLLSketch(16, seed=0), Mergeable)

    def test_cross_family_merges_are_rejected(self):
        with pytest.raises(ConfigurationError):
            BernoulliSampler(0.5, seed=0).merge([ReservoirSampler(4, seed=0)])
        with pytest.raises(ConfigurationError):
            MisraGriesSummary(4).merge([KLLSketch(16, seed=0)])

    def test_mismatched_parameters_are_rejected(self):
        with pytest.raises(ConfigurationError):
            BernoulliSampler(0.5, seed=0).merge([BernoulliSampler(0.25, seed=0)])
        with pytest.raises(ConfigurationError):
            ReservoirSampler(4, seed=0).merge([ReservoirSampler(8, seed=0)])
        with pytest.raises(ConfigurationError):
            SlidingWindowSampler(4, 16, seed=0).merge([SlidingWindowSampler(4, 32, seed=0)])
        with pytest.raises(ConfigurationError):
            MisraGriesSummary(4).merge([MisraGriesSummary(5)])
        with pytest.raises(ConfigurationError):
            KLLSketch(16, seed=0).merge([KLLSketch(32, seed=0)])

    def test_reservoir_ablation_evictions_are_not_mergeable(self):
        uniform = ReservoirSampler(4, seed=0)
        fifo = ReservoirSampler(4, seed=0, eviction="fifo")
        with pytest.raises(ConfigurationError, match="not mergeable"):
            uniform.merge([fifo])


class TestBernoulliMergeExact:
    @settings(max_examples=60, deadline=None)
    @given(stream=streams, fraction=st.floats(0.1, 0.9), seed=st.integers(0, 2**16))
    def test_bit_identical_to_single_sampler_on_concatenated_stream(
        self, stream, fraction, seed
    ):
        """Parts sharing one generator reproduce the single sampler exactly."""
        part_a, part_b = _split(stream, fraction)
        single = BernoulliSampler(0.3, seed=ensure_generator(seed))
        single.extend(stream, updates=False)

        shared = ensure_generator(seed)
        a = BernoulliSampler(0.3, seed=shared)
        b = BernoulliSampler(0.3, seed=shared)
        a.extend(part_a, updates=False)
        b.extend(part_b, updates=False)
        merged = a.merge([b])

        assert list(merged.sample) == list(single.sample)
        assert merged.rounds_processed == single.rounds_processed
        # The parts were not mutated by the merge.
        assert a.rounds_processed == len(part_a)
        assert b.rounds_processed == len(part_b)

    def test_merge_does_not_consume_part_randomness(self):
        a = BernoulliSampler(0.5, seed=1)
        b = BernoulliSampler(0.5, seed=2)
        a.extend(range(50), updates=False)
        b.extend(range(50), updates=False)
        state_before = a._rng.bit_generator.state
        a.merge([b])
        assert a._rng.bit_generator.state == state_before


class TestSlidingWindowMergeExact:
    @settings(max_examples=40, deadline=None)
    @given(
        stream=streams,
        fraction=st.floats(0.1, 0.9),
        seed=st.integers(0, 2**16),
        capacity=st.integers(1, 6),
        window=st.integers(8, 64),
    )
    def test_bit_identical_to_single_sampler_on_concatenated_stream(
        self, stream, fraction, seed, capacity, window
    ):
        window = max(window, capacity)
        part_a, part_b = _split(stream, fraction)
        single = SlidingWindowSampler(capacity, window, seed=ensure_generator(seed))
        single.extend(stream, updates=False)

        shared = ensure_generator(seed)
        a = SlidingWindowSampler(capacity, window, seed=shared)
        b = SlidingWindowSampler(capacity, window, seed=shared)
        a.extend(part_a, updates=False)
        b.extend(part_b, updates=False)
        merged = a.merge([b])

        assert merged._candidates == single._candidates
        assert merged.sample == single.sample
        assert merged.rounds_processed == single.rounds_processed

    def test_three_way_merge_matches_single_run(self):
        stream = list(range(1, 201))
        shared = ensure_generator(9)
        parts = [SlidingWindowSampler(4, 32, seed=shared) for _ in range(3)]
        parts[0].extend(stream[:70], updates=False)
        parts[1].extend(stream[70:120], updates=False)
        parts[2].extend(stream[120:], updates=False)
        single = SlidingWindowSampler(4, 32, seed=ensure_generator(9))
        single.extend(stream, updates=False)
        merged = parts[0].merge(parts[1:])
        assert merged._candidates == single._candidates

    def test_explicit_offsets_keep_every_local_window_live(self):
        """Trailing offsets (the sharded view) never expire live candidates."""
        a = SlidingWindowSampler(4, 16, seed=1)
        b = SlidingWindowSampler(4, 16, seed=2)
        a.extend(range(100), updates=False)
        b.extend(range(100, 130), updates=False)
        total = a.rounds_processed + b.rounds_processed
        merged = a.merge(
            [b], offsets=[total - a.rounds_processed, total - b.rounds_processed]
        )
        live_priorities = sorted(
            priority
            for part in (a, b)
            for _arrival, priority, _element in part._candidates
        )
        merged_priorities = sorted(p for _a, p, _e in merged._current_sample_entries())
        assert merged_priorities == live_priorities[: len(merged_priorities)]


class TestReservoirMergeUniform:
    @settings(max_examples=40, deadline=None)
    @given(
        lengths=st.lists(st.integers(0, 120), min_size=2, max_size=4),
        capacity=st.integers(1, 16),
        seed=st.integers(0, 2**16),
    )
    def test_merge_structure(self, lengths, capacity, seed):
        if sum(lengths) == 0:
            lengths[0] = 1
        parts = []
        offset = 0
        for index, length in enumerate(lengths):
            part = ReservoirSampler(capacity, seed=index)
            part.extend(range(offset, offset + length), updates=False)
            offset += length
            parts.append(part)
        merged = parts[0].merge(parts[1:], rng=ensure_generator(seed))
        total = sum(lengths)
        assert merged.rounds_processed == total
        assert merged.sample_size == min(capacity, total)
        union = Counter()
        for part in parts:
            union.update(part.sample)
        assert not Counter(merged.sample) - union, "merged sample left the union"

    def test_merge_is_deterministic_under_a_fixed_generator(self):
        a = ReservoirSampler(8, seed=1)
        b = ReservoirSampler(8, seed=2)
        a.extend(range(100), updates=False)
        b.extend(range(100, 300), updates=False)
        one = a.merge([b], rng=ensure_generator(7))
        two = a.merge([b], rng=ensure_generator(7))
        assert list(one.sample) == list(two.sample)

    def test_merged_reservoir_keeps_streaming_with_correct_rounds(self):
        a = ReservoirSampler(8, seed=1)
        b = ReservoirSampler(8, seed=2)
        a.extend(range(50), updates=False)
        b.extend(range(50, 80), updates=False)
        merged = a.merge([b], rng=ensure_generator(3))
        update = merged.process(999)
        assert update.round_index == 81

    def test_merge_is_statistically_uniform(self):
        """Each element of the union appears in the merged k-subset with
        probability ~ k / total (chi-square-free coarse check)."""
        hits = Counter()
        trials = 400
        for trial in range(trials):
            a = ReservoirSampler(4, seed=trial * 2)
            b = ReservoirSampler(4, seed=trial * 2 + 1)
            a.extend(range(10), updates=False)
            b.extend(range(10, 30), updates=False)
            merged = a.merge([b], rng=ensure_generator(10_000 + trial))
            hits.update(merged.sample)
        expected = trials * 4 / 30
        for element in range(30):
            assert hits[element] > 0.3 * expected, (element, hits[element], expected)
            assert hits[element] < 2.5 * expected, (element, hits[element], expected)


class TestMisraGriesMergeBudget:
    @settings(max_examples=60, deadline=None)
    @given(
        stream_a=st.lists(st.integers(1, 12), max_size=250),
        stream_b=st.lists(st.integers(1, 12), max_size=250),
        capacity=st.integers(1, 8),
    )
    def test_merged_estimates_stay_within_the_tracked_budget(
        self, stream_a, stream_b, capacity
    ):
        a, b = MisraGriesSummary(capacity), MisraGriesSummary(capacity)
        for element in stream_a:
            a.update(element)
        for element in stream_b:
            b.update(element)
        merged = a.merge([b])
        n = len(stream_a) + len(stream_b)
        assert merged.count == n
        assert merged.memory_footprint() <= capacity
        assert merged.max_underestimate <= n // (capacity + 1)
        true = Counter(stream_a + stream_b)
        for element, frequency in true.items():
            estimate = merged.estimate(element)
            assert estimate <= frequency
            assert frequency - estimate <= merged.max_underestimate

    @settings(max_examples=60, deadline=None)
    @given(
        stream_a=st.lists(st.integers(1, 4), max_size=120),
        stream_b=st.lists(st.integers(1, 4), max_size=120),
    )
    def test_exact_when_no_truncation_is_needed(self, stream_a, stream_b):
        """Few distinct keys => the merge is bit-identical to one summary."""
        a, b, single = (MisraGriesSummary(8) for _ in range(3))
        for element in stream_a:
            a.update(element)
        for element in stream_b:
            b.update(element)
        for element in stream_a + stream_b:
            single.update(element)
        merged = a.merge([b])
        assert merged._counters == single._counters
        assert merged.max_underestimate == 0 == single.max_underestimate

    def test_streaming_decrements_are_tracked(self):
        summary = MisraGriesSummary(2)
        for element in [1, 2, 3, 4, 5, 6]:
            summary.update(element)
        assert summary.max_underestimate == summary._decrements > 0
        assert summary.max_underestimate <= summary.count // 3


class TestMergeEdgeCases:
    """Degenerate inputs every merge kernel must handle: empty parts (a shard
    that received nothing) and single-element streams."""

    def test_empty_bernoulli_parts_merge_exactly(self):
        a, b = BernoulliSampler(0.3, seed=1), BernoulliSampler(0.3, seed=2)
        b.extend(range(50), updates=False)
        merged = a.merge([b])
        assert list(merged.sample) == list(b.sample)
        assert merged.rounds_processed == 50
        both = BernoulliSampler(0.3, seed=3).merge([BernoulliSampler(0.3, seed=4)])
        assert both.rounds_processed == 0
        assert list(both.sample) == []

    def test_empty_sliding_window_parts_merge_exactly(self):
        a = SlidingWindowSampler(4, 16, seed=1)
        b = SlidingWindowSampler(4, 16, seed=2)
        b.extend(range(40), updates=False)
        # An empty leading part shifts arrivals by zero: the merge equals b.
        merged = a.merge([b])
        assert merged._candidates == b._candidates
        assert merged.rounds_processed == 40
        both = SlidingWindowSampler(4, 16, seed=5).merge([SlidingWindowSampler(4, 16, seed=6)])
        assert list(both.sample) == []

    def test_empty_reservoir_parts_merge_exactly(self):
        a, b = ReservoirSampler(8, seed=1), ReservoirSampler(8, seed=2)
        b.extend(range(30), updates=False)
        merged = a.merge([b], rng=ensure_generator(3))
        assert merged.rounds_processed == 30
        assert merged.sample_size == 8
        assert not Counter(merged.sample) - Counter(b.sample)
        both = ReservoirSampler(8, seed=4).merge(
            [ReservoirSampler(8, seed=5)], rng=ensure_generator(6)
        )
        assert both.rounds_processed == 0
        assert both.sample_size == 0

    def test_empty_summary_parts_merge_exactly(self):
        fed = MisraGriesSummary(4)
        for element in [1, 1, 2, 3]:
            fed.update(element)
        merged = MisraGriesSummary(4).merge([fed])
        assert merged._counters == fed._counters
        assert merged.count == 4
        sketch = KLLSketch(16, seed=0)
        sketch.extend(np.random.default_rng(0).random(200))
        merged_sketch = KLLSketch(16, seed=1).merge([sketch], rng=ensure_generator(2))
        assert merged_sketch.count == 200

    def test_single_element_streams_merge_across_families(self):
        a, b = ReservoirSampler(4, seed=1), ReservoirSampler(4, seed=2)
        a.extend([7], updates=False)
        b.extend([9], updates=False)
        merged = a.merge([b], rng=ensure_generator(3))
        assert sorted(merged.sample) == [7, 9]
        assert merged.rounds_processed == 2

        keep_all = BernoulliSampler(1.0, seed=1)
        keep_all.extend([7], updates=False)
        other = BernoulliSampler(1.0, seed=2)
        other.extend([9], updates=False)
        assert sorted(keep_all.merge([other]).sample) == [7, 9]

        one = SlidingWindowSampler(1, 8, seed=1)
        one.extend([7], updates=False)
        two = SlidingWindowSampler(1, 8, seed=2)
        merged_window = one.merge([two])
        assert list(merged_window.sample) == [7]

        summary = MisraGriesSummary(2)
        summary.update(7)
        assert summary.merge([MisraGriesSummary(2)]).estimate(7) == 1

        sketch = KLLSketch(16, seed=0)
        sketch.extend([0.5])
        merged_sketch = sketch.merge([KLLSketch(16, seed=1)])
        assert merged_sketch.count == 1
        assert merged_sketch.rank_query(0.7) == 1


#: Factory and merge-exactness flag per shardable Mergeable family (the
#: reservoir coordinator redraws, so its merged view is compared as a
#: multiset rather than bit-for-bit).
SHARDABLE_FAMILIES = {
    "bernoulli": (lambda rng: BernoulliSampler(0.3, seed=rng), True),
    "reservoir": (lambda rng: ReservoirSampler(6, seed=rng), False),
    "sliding_window": (lambda rng: SlidingWindowSampler(4, 24, seed=rng), True),
}


class TestDegenerateSharding:
    """ShardedSampler edge regimes: one site, empty sites, one-element streams."""

    @pytest.mark.parametrize("family", sorted(SHARDABLE_FAMILIES))
    def test_single_site_is_bit_identical_to_unsharded(self, family):
        """num_sites=1 routes everything to the lone site, whose generator is
        the third child of the deployment seed — reproduced here with a twin
        generator, so the per-site state matches the standalone sampler bit
        for bit."""
        factory, exact = SHARDABLE_FAMILIES[family]
        stream = list(range(1, 121))
        sharded = ShardedSampler(1, factory, strategy="round_robin", seed=42)
        sharded.extend(stream, updates=False)
        _route, _merge, site_rng = spawn_generators(ensure_generator(42), 3)
        single = factory(site_rng)
        single.extend(stream, updates=False)
        assert tuple(sharded.site_sample(0)) == tuple(single.sample)
        if exact:
            assert tuple(sharded.sample) == tuple(single.sample)
        else:
            assert Counter(sharded.sample) == Counter(single.sample)

    @pytest.mark.parametrize("family", sorted(SHARDABLE_FAMILIES))
    def test_hash_hotspot_leaves_sites_empty(self, family):
        """A constant-valued stream hash-routes to one site; the other sites
        stay empty and the merge must cope with their empty summaries."""
        factory, _ = SHARDABLE_FAMILIES[family]
        sharded = ShardedSampler(3, factory, strategy="hash", seed=7)
        sharded.extend([5] * 40, updates=False)
        counts = list(sharded.site_counts)
        assert sorted(counts) == [0, 0, 40]
        for site, count in enumerate(counts):
            if count == 0:
                assert tuple(sharded.site_sample(site)) == ()
        assert sharded.rounds_processed == 40
        assert set(sharded.sample) <= {5}
        assert len(sharded.sample) > 0

    @pytest.mark.parametrize("family", sorted(SHARDABLE_FAMILIES))
    @pytest.mark.parametrize("strategy", ["random", "hash", "round_robin", "skewed"])
    def test_single_element_stream(self, family, strategy):
        factory, _ = SHARDABLE_FAMILIES[family]
        sharded = ShardedSampler(4, factory, strategy=strategy, seed=3)
        sharded.extend([9], updates=False)
        assert sharded.rounds_processed == 1
        assert sum(sharded.site_counts) == 1
        assert set(sharded.sample) <= {9}
        if family != "bernoulli":  # Bernoulli may legitimately reject it
            assert tuple(sharded.sample) == (9,)

    def test_empty_extend_is_a_no_op(self):
        sharded = ShardedSampler(2, lambda rng: ReservoirSampler(4, seed=rng), seed=1)
        assert sharded.extend([], updates=False) is None
        batch = sharded.extend([], updates=True)
        assert len(batch) == 0
        assert sharded.sample == ()


#: Every non-empty subset of a 4-site deployment, as survivor index tuples.
_SURVIVOR_SUBSETS = [
    subset for size in (1, 2, 3, 4) for subset in combinations(range(4), size)
]


class TestSurvivorSubsetMerge:
    """PR 8 fault-tolerance property: merging *any* non-empty subset of a
    deployment's per-site states yields a valid sampler of the family, and
    the family's :meth:`degradation_report` brackets the error realised on
    the survivor union.  This is what makes coordinator re-merges after a
    site loss trustworthy: the degraded view never lies about what it
    still represents."""

    def _integer_substreams(self) -> list[list[int]]:
        rng = np.random.default_rng(11)
        return [
            [int(value) for value in rng.integers(1, 13, size=length)]
            for length in (40, 25, 55, 30)
        ]

    @pytest.mark.parametrize("survivors", _SURVIVOR_SUBSETS)
    def test_bernoulli_survivor_merge_is_the_exact_union(self, survivors):
        substreams = self._integer_substreams()
        parts = [BernoulliSampler(0.3, seed=index) for index in range(4)]
        for part, substream in zip(parts, substreams):
            part.extend(substream, updates=False)
        alive = [parts[index] for index in survivors]
        merged = alive[0].merge(alive[1:])
        report = merged.degradation_report()
        expected_rounds = sum(len(substreams[index]) for index in survivors)
        assert report["family"] == "bernoulli"
        assert report["rounds"] == merged.rounds_processed == expected_rounds
        union = Counter()
        for part in alive:
            union.update(part.sample)
        assert Counter(merged.sample) == union
        assert report["sample_size"] == len(merged.sample)

    @pytest.mark.parametrize("survivors", _SURVIVOR_SUBSETS)
    def test_reservoir_survivor_merge_reports_zero_shortfall(self, survivors):
        substreams = self._integer_substreams()
        parts = [ReservoirSampler(6, seed=index) for index in range(4)]
        for part, substream in zip(parts, substreams):
            part.extend(substream, updates=False)
        alive = [parts[index] for index in survivors]
        merged = alive[0].merge(alive[1:], rng=ensure_generator(99))
        report = merged.degradation_report()
        expected_rounds = sum(len(substreams[index]) for index in survivors)
        assert report["rounds"] == expected_rounds
        # The hypergeometric merge refills to min(capacity, rounds): the
        # merged view is a full uniform sample of the survivor rounds.
        assert report["expected_size"] == min(6, expected_rounds)
        assert report["sample_size"] == merged.sample_size == report["expected_size"]
        assert report["shortfall"] == 0
        union = Counter()
        for part in alive:
            union.update(part.sample)
        assert not Counter(merged.sample) - union

    @pytest.mark.parametrize("survivors", _SURVIVOR_SUBSETS)
    def test_sliding_window_survivor_merge_stays_inside_the_union(self, survivors):
        substreams = self._integer_substreams()
        parts = [SlidingWindowSampler(4, 24, seed=index) for index in range(4)]
        for part, substream in zip(parts, substreams):
            part.extend(substream, updates=False)
        alive = [parts[index] for index in survivors]
        merged = alive[0].merge(alive[1:])
        report = merged.degradation_report()
        expected_rounds = sum(len(substreams[index]) for index in survivors)
        assert report["rounds"] == merged.rounds_processed == expected_rounds
        live = Counter()
        for part in alive:
            live.update(element for _a, _p, element in part._candidates)
        assert not Counter(merged.sample) - live, "merged sample left the live union"
        assert report["sample_size"] == len(merged.sample) <= 4

    @pytest.mark.parametrize("survivors", _SURVIVOR_SUBSETS)
    def test_misra_gries_survivor_merge_brackets_every_estimate(self, survivors):
        substreams = self._integer_substreams()
        parts = [MisraGriesSummary(4) for _ in range(4)]
        for part, substream in zip(parts, substreams):
            for element in substream:
                part.update(element)
        alive = [parts[index] for index in survivors]
        merged = alive[0].merge(alive[1:])
        report = merged.degradation_report()
        surviving = [e for index in survivors for e in substreams[index]]
        assert report["rounds"] == len(surviving)
        # Realised error never exceeds the a-priori family guarantee ...
        assert report["max_underestimate"] <= report["guarantee"]
        assert report["guarantee"] == len(surviving) // 5
        # ... and every estimate is bracketed by the realised error.
        true = Counter(surviving)
        for element, frequency in true.items():
            estimate = merged.estimate(element)
            assert estimate <= frequency
            assert frequency - estimate <= report["max_underestimate"]

    @pytest.mark.parametrize("survivors", _SURVIVOR_SUBSETS)
    def test_kll_survivor_merge_stays_inside_the_rank_budget(self, survivors):
        rng = np.random.default_rng(23)
        substreams = [rng.random(length) for length in (400, 250, 550, 300)]
        parts = [KLLSketch(64, seed=index) for index in range(4)]
        for part, substream in zip(parts, substreams):
            part.extend(substream)
        alive = [parts[index] for index in survivors]
        merged = alive[0].merge(alive[1:], rng=ensure_generator(5))
        report = merged.degradation_report()
        surviving = np.sort(
            np.concatenate([substreams[index] for index in survivors])
        )
        assert report["rounds"] == merged.count == len(surviving)
        assert report["rank_error_budget"] == report["estimated_epsilon"] * len(surviving)
        budget = 6 * report["rank_error_budget"]
        for probe in (0.1, 0.5, 0.9):
            true_rank = int(np.searchsorted(surviving, probe, side="right"))
            assert abs(merged.rank_query(probe) - true_rank) <= budget


class TestKLLMerge:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_merged_rank_queries_stay_in_the_eps_n_regime(self, seed):
        rng = np.random.default_rng(seed)
        values_a = rng.random(3_000)
        values_b = rng.random(2_000)
        a, b = KLLSketch(64, seed=seed), KLLSketch(64, seed=seed + 100)
        a.extend(values_a)
        b.extend(values_b)
        merged = a.merge([b], rng=ensure_generator(seed + 200))
        assert merged.count == 5_000
        everything = np.sort(np.concatenate([values_a, values_b]))
        budget = 6 * merged.estimated_epsilon * merged.count
        for probe in (0.05, 0.25, 0.5, 0.75, 0.95):
            true_rank = int(np.searchsorted(everything, probe, side="right"))
            assert abs(merged.rank_query(probe) - true_rank) <= budget

    def test_merge_respects_capacity_invariants(self):
        a, b = KLLSketch(16, seed=0), KLLSketch(16, seed=1)
        a.extend(np.random.default_rng(0).random(4_000))
        b.extend(np.random.default_rng(1).random(4_000))
        merged = a.merge([b], rng=ensure_generator(2))
        assert merged._size() <= merged._capacity_total()
        assert merged.count == 8_000

    def test_parts_are_not_mutated(self):
        a, b = KLLSketch(16, seed=0), KLLSketch(16, seed=1)
        a.extend(np.random.default_rng(0).random(1_000))
        b.extend(np.random.default_rng(1).random(1_000))
        before_a = [list(level) for level in a._compactors]
        before_b = [list(level) for level in b._compactors]
        a.merge([b], rng=ensure_generator(5))
        assert [list(level) for level in a._compactors] == before_a
        assert [list(level) for level in b._compactors] == before_b

    def test_streaming_into_the_merged_sketch_leaves_the_parts_seeded_streams_alone(self):
        a, b = KLLSketch(16, seed=0), KLLSketch(16, seed=1)
        a.extend(np.random.default_rng(0).random(500))
        b.extend(np.random.default_rng(1).random(500))
        merged = a.merge([b])
        state_a = a._rng.bit_generator.state
        merged.extend(np.random.default_rng(2).random(2_000))
        assert a._rng.bit_generator.state == state_a
