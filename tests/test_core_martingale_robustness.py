"""Tests for the martingale trackers (Claims 4.2/4.3) and robustness certificates."""

from __future__ import annotations

import math

import pytest

from repro.core.martingale import (
    BernoulliMartingaleTracker,
    MartingaleTrace,
    ReservoirMartingaleTracker,
    empirical_drift,
    normalized_final_deviation,
)
from repro.core.robustness import certify_bernoulli, certify_reservoir
from repro.exceptions import ConfigurationError
from repro.samplers import BernoulliSampler, ReservoirSampler
from repro.setsystems import Prefix, PrefixSystem


class TestBernoulliTracker:
    def test_out_of_range_elements_leave_z_unchanged(self):
        tracker = BernoulliMartingaleTracker(stream_length=10, probability=0.5)
        tracker.record_step(in_range=False, sampled=True)
        tracker.record_step(in_range=False, sampled=False)
        assert tracker.trace.values == [0.0, 0.0, 0.0]

    def test_in_range_sampled_step_value(self):
        n, p = 10, 0.5
        tracker = BernoulliMartingaleTracker(n, p)
        tracker.record_step(in_range=True, sampled=True)
        expected = 1 / (n * p) - 1 / n
        assert tracker.trace.final_value == pytest.approx(expected)

    def test_in_range_unsampled_step_value(self):
        n, p = 10, 0.5
        tracker = BernoulliMartingaleTracker(n, p)
        tracker.record_step(in_range=True, sampled=False)
        assert tracker.trace.final_value == pytest.approx(-1 / n)

    def test_difference_bounds_hold(self):
        tracker = BernoulliMartingaleTracker(100, 0.2)
        for i in range(100):
            tracker.record_step(in_range=(i % 2 == 0), sampled=(i % 5 == 0))
        assert tracker.trace.differences_within_bounds()

    def test_too_many_steps_rejected(self):
        tracker = BernoulliMartingaleTracker(2, 0.5)
        tracker.record_step(True, True)
        tracker.record_step(True, True)
        with pytest.raises(ConfigurationError):
            tracker.record_step(True, True)

    def test_theoretical_bounds_match_claim(self):
        tracker = BernoulliMartingaleTracker(1000, 0.1)
        assert tracker.theoretical_difference_bound == pytest.approx(1 / 100)
        assert tracker.theoretical_variance_bound == pytest.approx(1 / (1000**2 * 0.1))

    def test_final_value_matches_definition_during_real_game(self, rng):
        # Z_n must equal |R∩S|/(np) - |R∩X|/n at the end of a real run.
        n, p = 400, 0.25
        target = Prefix(500)
        sampler = BernoulliSampler(p, seed=rng)
        tracker = BernoulliMartingaleTracker(n, p)
        stream = [int(rng.integers(1, 1001)) for _ in range(n)]
        for element in stream:
            update = sampler.process(element)
            tracker.record_step(element in target, update.accepted)
        stream_hits = sum(1 for x in stream if x in target)
        sample_hits = sum(1 for x in sampler.sample if x in target)
        expected = sample_hits / (n * p) - stream_hits / n
        assert tracker.trace.final_value == pytest.approx(expected)


class TestReservoirTracker:
    def test_zero_while_filling(self):
        tracker = ReservoirMartingaleTracker(5)
        for _ in range(5):
            tracker.record_step(in_range=True, sample_hits=0)
        assert all(value == 0.0 for value in tracker.trace.values)

    def test_bounds_match_claim(self):
        tracker = ReservoirMartingaleTracker(10)
        assert tracker.difference_bound_at(20) == pytest.approx(2.0)
        assert tracker.variance_bound_at(5) == 0.0
        assert tracker.variance_bound_at(30) == pytest.approx(3.0)

    def test_difference_bounds_hold_during_real_game(self, rng):
        k, n = 20, 300
        target = Prefix(50)
        sampler = ReservoirSampler(k, seed=rng)
        tracker = ReservoirMartingaleTracker(k)
        for _ in range(n):
            element = int(rng.integers(1, 101))
            sampler.process(element)
            hits = sum(1 for value in sampler.sample if value in target)
            tracker.record_step(element in target, hits)
        assert tracker.trace.differences_within_bounds()

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            ReservoirMartingaleTracker(0)


class TestTraceHelpers:
    def test_empirical_drift_of_constant_sequence(self):
        assert empirical_drift([0.0, 0.0, 0.0]) == 0.0

    def test_empirical_drift_linear(self):
        assert empirical_drift([0.0, 1.0, 2.0]) == pytest.approx(1.0)

    def test_empirical_drift_short(self):
        assert empirical_drift([0.0]) == 0.0

    def test_normalized_deviation_zero_variance(self):
        trace = MartingaleTrace()
        assert normalized_final_deviation(trace) == 0.0

    def test_freedman_bound_monotone(self):
        tracker = BernoulliMartingaleTracker(50, 0.5)
        for _ in range(50):
            tracker.record_step(True, True)
        assert tracker.trace.freedman_bound(0.5) <= tracker.trace.freedman_bound(0.1)


class TestCertificates:
    def test_reservoir_certificate_at_theorem_size_is_nonvacuous(self):
        from repro.core.bounds import reservoir_adaptive_size

        system = PrefixSystem(1000)
        epsilon, delta = 0.2, 0.1
        size = reservoir_adaptive_size(system.log_cardinality(), epsilon, delta).size
        certificate = certify_reservoir(size, epsilon, set_system=system)
        assert certificate.delta <= delta + 1e-9
        assert not certificate.is_vacuous

    def test_tiny_reservoir_certificate_is_vacuous(self):
        certificate = certify_reservoir(3, 0.1, log_cardinality=math.log(1000))
        assert certificate.is_vacuous

    def test_bernoulli_certificate_at_theorem_rate(self):
        from repro.core.bounds import bernoulli_adaptive_rate

        system = PrefixSystem(1000)
        epsilon, delta, n = 0.2, 0.1, 200_000
        rate = bernoulli_adaptive_rate(system.log_cardinality(), epsilon, delta, n).probability
        certificate = certify_bernoulli(rate, n, epsilon, set_system=system)
        assert certificate.delta <= 2 * delta

    def test_certificate_requires_exactly_one_cardinality_source(self):
        with pytest.raises(ConfigurationError):
            certify_reservoir(100, 0.1)
        with pytest.raises(ConfigurationError):
            certify_reservoir(100, 0.1, set_system=PrefixSystem(10), log_cardinality=1.0)

    def test_certificate_mechanism_labels(self):
        reservoir = certify_reservoir(100, 0.2, log_cardinality=3.0)
        bernoulli = certify_bernoulli(0.5, 1000, 0.2, log_cardinality=3.0)
        assert reservoir.mechanism == "reservoir"
        assert bernoulli.mechanism == "bernoulli"

    def test_larger_cardinality_weakens_certificate(self):
        small = certify_reservoir(500, 0.2, log_cardinality=2.0)
        large = certify_reservoir(500, 0.2, log_cardinality=20.0)
        assert large.delta >= small.delta
