"""Tests for the Section 1.2 applications: quantiles, heavy hitters, range queries,
center points, clustering and load balancing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.applications import (
    RobustQuantileSketch,
    SampleHeavyHitters,
    SampleRangeCounter,
    center_from_sample,
    compare_sample_clustering,
    empirical_quantile,
    evaluate_heavy_hitters,
    exact_heavy_hitters,
    exact_range_count,
    greedy_k_center,
    is_beta_center,
    kmeans,
    kmeans_cost,
    quantile_rank_error,
    rank_of,
    required_stream_length,
    simulate_load_balancing,
    tukey_depth,
    worst_quantile_error,
)
from repro.adversary import GreedyDensityAdversary, MedianAttackAdversary, run_adaptive_game
from repro.exceptions import ConfigurationError, EmptySampleError
from repro.setsystems import Prefix, PrefixSystem
from repro.setsystems.rectangles import Box
from repro.streams import clustered_points, uniform_stream


class TestQuantileHelpers:
    def test_rank_of(self):
        assert rank_of([1, 2, 3, 4], 2) == 2
        assert rank_of([1, 2, 3, 4], 0) == 0

    def test_empirical_quantile_median(self):
        assert empirical_quantile([5, 1, 3], 0.5) == 3

    def test_empirical_quantile_extremes(self):
        data = list(range(1, 11))
        assert empirical_quantile(data, 0.0) == 1
        assert empirical_quantile(data, 1.0) == 10

    def test_empty_rejected(self):
        with pytest.raises(EmptySampleError):
            empirical_quantile([], 0.5)

    def test_quantile_rank_error_of_perfect_sample(self):
        stream = list(range(1, 101))
        assert quantile_rank_error(stream, stream, 0.5) <= 0.01

    def test_worst_quantile_error_of_biased_sample(self):
        stream = list(range(1, 101))
        sample = [1, 2, 3]
        assert worst_quantile_error(stream, sample) > 0.4


class TestRobustQuantileSketch:
    def test_reservoir_sizing_matches_corollary(self):
        sketch = RobustQuantileSketch(universe_size=1024, epsilon=0.2, delta=0.1)
        assert sketch.sample_size_bound.size == pytest.approx(
            2 * (np.log(1024) + np.log(20)) / 0.04, abs=1
        )

    def test_bernoulli_requires_stream_length(self):
        with pytest.raises(ConfigurationError):
            RobustQuantileSketch(1024, 0.2, 0.1, mechanism="bernoulli")

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ConfigurationError):
            RobustQuantileSketch(1024, 0.2, 0.1, mechanism="magic")

    def test_median_accuracy_on_static_stream(self, rng):
        sketch = RobustQuantileSketch(universe_size=2**16, epsilon=0.15, delta=0.1, seed=rng)
        stream = uniform_stream(4000, 2**16, seed=rng)
        sketch.extend(stream)
        median = sketch.median()
        achieved = rank_of(stream, median) / len(stream)
        assert abs(achieved - 0.5) <= 0.15

    def test_rank_estimate(self, rng):
        sketch = RobustQuantileSketch(universe_size=1000, epsilon=0.2, delta=0.1, seed=rng)
        stream = uniform_stream(2000, 1000, seed=rng)
        sketch.extend(stream)
        estimate = sketch.rank_estimate(500)
        assert abs(estimate - rank_of(stream, 500)) <= 0.2 * len(stream)

    def test_empty_queries_rejected(self):
        sketch = RobustQuantileSketch(universe_size=1000, epsilon=0.2, delta=0.1)
        with pytest.raises(EmptySampleError):
            sketch.median()

    def test_survives_median_attack_at_corollary_size(self, rng):
        universe_size = 2**16
        epsilon = 0.25
        sketch = RobustQuantileSketch(universe_size, epsilon, 0.1, seed=rng)
        n = 1500
        adversary = MedianAttackAdversary(n, universe_size=universe_size)
        outcome = run_adaptive_game(sketch.sampler, adversary, n, keep_updates=False)
        error = worst_quantile_error(outcome.stream, list(outcome.sample))
        assert error <= epsilon


class TestHeavyHitters:
    def test_exact_heavy_hitters(self):
        stream = [1] * 60 + [2] * 30 + [3] * 10
        assert exact_heavy_hitters(stream, 0.3) == {1, 2}

    def test_exact_heavy_hitters_validation(self):
        with pytest.raises(EmptySampleError):
            exact_heavy_hitters([], 0.5)
        with pytest.raises(ConfigurationError):
            exact_heavy_hitters([1], 0.0)

    def test_evaluation_flags_misses_and_spurious(self):
        stream = [1] * 50 + [2] * 50
        evaluation = evaluate_heavy_hitters({3}, stream, alpha=0.4, epsilon=0.2)
        assert 1 in evaluation.missed_heavy and 2 in evaluation.missed_heavy
        assert 3 in evaluation.spurious_light
        assert not evaluation.correct

    def test_evaluation_grey_zone_tolerated(self):
        stream = [1] * 35 + list(range(100, 165))
        # Element 1 has density 0.35: with alpha=0.4, epsilon=0.2 it is in the
        # grey zone and may be reported or not without penalty.
        for reported in (set(), {1}):
            evaluation = evaluate_heavy_hitters(reported, stream, alpha=0.4, epsilon=0.2)
            assert evaluation.correct

    def test_detector_finds_planted_heavy_hitter(self, rng):
        detector = SampleHeavyHitters(
            universe_size=1000, alpha=0.4, epsilon=0.3, delta=0.1, seed=rng
        )
        stream = [7] * 900 + uniform_stream(1100, 1000, seed=rng)
        rng.shuffle(stream)
        detector.extend(stream)
        report = detector.report()
        evaluation = evaluate_heavy_hitters(report, stream, 0.4, 0.3)
        assert 7 in report
        assert evaluation.correct

    def test_detector_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            SampleHeavyHitters(1000, alpha=0.2, epsilon=0.3, delta=0.1)
        with pytest.raises(ConfigurationError):
            SampleHeavyHitters(1000, alpha=0.4, epsilon=0.3, delta=0.1, mechanism="bernoulli")

    def test_estimated_density(self, rng):
        detector = SampleHeavyHitters(
            universe_size=100, alpha=0.5, epsilon=0.3, delta=0.1, seed=rng
        )
        detector.extend([1] * 50 + [2] * 50)
        assert detector.estimated_density(1) == pytest.approx(0.5, abs=0.2)


class TestRangeQueries:
    def test_exact_range_count(self):
        points = [(1, 1), (2, 2), (5, 5)]
        assert exact_range_count(points, Box((1.0, 1.0), (3.0, 3.0))) == 2

    def test_counter_estimates_within_epsilon(self, rng):
        epsilon = 0.25
        counter = SampleRangeCounter(side=16, dimension=2, epsilon=epsilon, delta=0.1, seed=rng)
        points = clustered_points(2000, 16, 2, clusters=3, seed=rng)
        counter.extend(points)
        box = Box((1.0, 1.0), (8.0, 8.0))
        result = counter.answer(box, points)
        assert result.normalized_error <= epsilon

    def test_dimension_mismatch_rejected(self, rng):
        counter = SampleRangeCounter(side=16, dimension=2, epsilon=0.3, delta=0.1, seed=rng)
        with pytest.raises(ConfigurationError):
            counter.update((1, 2, 3))

    def test_empty_counter_query_rejected(self):
        counter = SampleRangeCounter(side=16, dimension=2, epsilon=0.3, delta=0.1)
        with pytest.raises(EmptySampleError):
            counter.count(Box((1.0, 1.0), (2.0, 2.0)))

    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            SampleRangeCounter(side=1, dimension=2, epsilon=0.3, delta=0.1)
        with pytest.raises(ConfigurationError):
            SampleRangeCounter(side=16, dimension=2, epsilon=0.3, delta=0.1, mechanism="bernoulli")


class TestCenterPoints:
    def test_tukey_depth_of_median_is_half(self):
        points = [(float(i),) for i in range(1, 101)]
        assert tukey_depth((50.0,), points) == pytest.approx(0.5, abs=0.02)

    def test_tukey_depth_of_extreme_point_is_small(self):
        points = [(float(i),) for i in range(1, 101)]
        assert tukey_depth((1.0,), points) <= 0.02

    def test_is_beta_center(self):
        points = [(float(i),) for i in range(1, 101)]
        assert is_beta_center((50.0,), points, 0.4)
        assert not is_beta_center((2.0,), points, 0.4)

    def test_center_from_sample_transfers_on_clustered_data(self, rng):
        points = clustered_points(1000, 64, 2, clusters=1, spread=0.1, seed=rng)
        sample = points[::10]
        result = center_from_sample(sample, points, beta=0.25, seed=rng)
        assert result.sample_depth >= 0.25
        assert result.valid_for_stream

    def test_invalid_beta_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            center_from_sample([(1, 1)], [(1, 1)], beta=0.9)

    def test_empty_points_rejected(self):
        with pytest.raises(EmptySampleError):
            tukey_depth((1.0,), [])


class TestClustering:
    def test_kmeans_recovers_separated_clusters(self, rng):
        cluster_a = [(float(rng.normal(10, 0.5)), float(rng.normal(10, 0.5))) for _ in range(100)]
        cluster_b = [(float(rng.normal(90, 0.5)), float(rng.normal(90, 0.5))) for _ in range(100)]
        result = kmeans(cluster_a + cluster_b, 2, seed=rng)
        centers = sorted(result.centers.tolist())
        assert centers[0][0] == pytest.approx(10, abs=2)
        assert centers[1][0] == pytest.approx(90, abs=2)

    def test_kmeans_cost_zero_for_duplicate_points(self):
        points = [(5.0, 5.0)] * 10
        result = kmeans(points, 1, seed=0)
        assert result.cost == pytest.approx(0.0)

    def test_kmeans_validation(self):
        with pytest.raises(ConfigurationError):
            kmeans([(1, 1)], 2)
        with pytest.raises(EmptySampleError):
            kmeans([], 1)

    def test_greedy_k_center_covers_extremes(self, rng):
        points = [(0.0, 0.0)] * 50 + [(100.0, 100.0)] * 50
        result = greedy_k_center(points, 2, seed=rng)
        assert result.cost == pytest.approx(0.0)

    def test_sample_clustering_close_to_full_clustering(self, rng):
        points = clustered_points(1500, 256, 2, clusters=4, spread=0.02, seed=rng)
        sample = points[::5]
        comparison = compare_sample_clustering(points, sample, 4, seed=rng)
        assert comparison.cost_ratio < 1.5

    def test_kmeans_cost_monotone_in_center_quality(self, rng):
        points = clustered_points(300, 64, 2, clusters=2, seed=rng)
        good = kmeans(points, 2, seed=rng).centers
        bad = np.asarray([[1.0, 1.0]])
        assert kmeans_cost(points, good) <= kmeans_cost(points, bad)


class TestLoadBalancing:
    def test_required_stream_length_grows_with_servers(self):
        short = required_stream_length(2, 5.0, 0.2, 0.1)
        long = required_stream_length(16, 5.0, 0.2, 0.1)
        assert long > short

    def test_required_stream_length_validation(self):
        with pytest.raises(ConfigurationError):
            required_stream_length(1, 5.0, 0.2, 0.1)

    def test_static_simulation_reports_all_servers(self, rng):
        system = PrefixSystem(64)
        report = simulate_load_balancing(
            uniform_stream(4000, 64, seed=rng), 4, system, seed=rng
        )
        assert report.num_servers == 4
        assert len(report.per_server_errors) == 4
        assert report.stream_length == 4000
        assert report.worst_error < 0.2

    def test_adaptive_simulation_runs(self, rng):
        system = PrefixSystem(64)
        adversary = GreedyDensityAdversary(Prefix(32), in_range_element=1, out_range_element=64)
        report = simulate_load_balancing(
            None, 4, system, adversary=adversary, stream_length=800, seed=rng
        )
        assert report.stream_length == 800
        assert 0.0 <= report.worst_error <= 1.0

    def test_exactly_one_input_mode_required(self, rng):
        system = PrefixSystem(64)
        with pytest.raises(ConfigurationError):
            simulate_load_balancing([1, 2, 3], 4, system, adversary=GreedyDensityAdversary(
                Prefix(32), 1, 64
            ))
        with pytest.raises(ConfigurationError):
            simulate_load_balancing(None, 4, system)

    def test_load_imbalance_small_for_long_streams(self, rng):
        system = PrefixSystem(64)
        report = simulate_load_balancing(
            uniform_stream(8000, 64, seed=rng), 8, system, seed=rng
        )
        assert report.load_imbalance < 0.05
        assert report.servers_within(0.5) == 8
