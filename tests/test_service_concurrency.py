"""Concurrency tests for the always-on query service.

Run under the CI ``service-stress`` matrix: ``REPRO_SERVICE_CLIENTS`` scales
the reader pool (1/4/16 threads) without touching the test code, and
``PYTHONFAULTHANDLER=1`` plus pytest-timeout turn a deadlock into a stack
dump instead of a hung job.

The two load-bearing properties:

* **snapshot consistency** — for an exact-merge family (Bernoulli, sliding
  window; deterministic merges that consume no randomness under hash
  routing), every snapshot a reader acquires at round ``r`` under concurrent
  ingest equals the offline merged view of an identically-seeded twin
  deployment fed exactly the first ``r`` rounds;
* **no torn reads** — the published (snapshot, counts) pair is swapped
  atomically, so a reader never observes a sample from one round paired
  with counts from another, and with a keep-everything sampler every
  acquired sample is exactly the ingested prefix.
"""

from __future__ import annotations

import os
import threading

import numpy as np
import pytest

from repro.distributed import ShardedSampler
from repro.samplers import BernoulliSampler, ReservoirSampler, SlidingWindowSampler
from repro.service import QueryService, ServiceReport

CLIENTS = int(os.environ.get("REPRO_SERVICE_CLIENTS", "4"))
JOIN_TIMEOUT = 30.0
UNIVERSE = 256


def _stream(n: int, seed: int = 0) -> list[int]:
    rng = np.random.default_rng(seed)
    return [int(value) for value in rng.integers(1, UNIVERSE + 1, size=n)]


def _join_all(threads: list[threading.Thread]) -> None:
    for thread in threads:
        thread.join(timeout=JOIN_TIMEOUT)
        assert not thread.is_alive(), f"thread {thread.name} failed to stop"


EXACT_MERGE_DEPLOYMENTS = {
    "bernoulli": lambda: ShardedSampler(
        4,
        lambda rng: BernoulliSampler(0.2, seed=rng),
        strategy="hash",
        seed=7,
    ),
    "sliding_window": lambda: ShardedSampler(
        4,
        lambda rng: SlidingWindowSampler(16, 2_048, seed=rng),
        strategy="hash",
        seed=7,
    ),
}


class TestSnapshotConsistency:
    @pytest.mark.parametrize("family", sorted(EXACT_MERGE_DEPLOYMENTS))
    def test_snapshots_under_concurrent_ingest_match_offline_replay(self, family):
        """Every snapshot acquired mid-ingest equals the offline merged view
        of the first ``round_index`` rounds — concurrency changes *when* a
        view is taken, never *what* it contains."""
        n, chunk = 12_000, 500
        data = _stream(n)
        service = QueryService(EXACT_MERGE_DEPLOYMENTS[family]())
        observed: list = []
        lock = threading.Lock()
        stop = threading.Event()

        def reader(index: int) -> None:
            while not stop.is_set():
                snapshot, _ = service.acquire(fresh=index % 2 == 0)
                with lock:
                    observed.append(snapshot)

        threads = [
            threading.Thread(target=reader, args=(index,), daemon=True,
                             name=f"consistency-reader-{index}")
            for index in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        try:
            for start in range(0, n, chunk):
                service.ingest(data[start : start + chunk])
        finally:
            stop.set()
        _join_all(threads)

        by_round = {snapshot.round_index: snapshot for snapshot in observed}
        assert by_round, "readers acquired no snapshots"
        # The writer lock serialises reads against ingest, so every snapshot
        # sits on a chunk boundary.
        assert all(round_index % chunk == 0 for round_index in by_round)
        for round_index, snapshot in sorted(by_round.items()):
            twin = EXACT_MERGE_DEPLOYMENTS[family]()
            twin.extend(data[:round_index], updates=False)
            assert tuple(twin.sample) == snapshot.sample, (
                f"{family} snapshot at round {round_index} diverges from the "
                "offline replay"
            )

    def test_versions_and_rounds_are_monotone_per_reader(self):
        n, chunk = 8_000, 400
        data = _stream(n, seed=3)
        service = QueryService(EXACT_MERGE_DEPLOYMENTS["bernoulli"]())
        stop = threading.Event()
        failures: list[str] = []

        def reader(index: int) -> None:
            last_round = -1
            while not stop.is_set():
                snapshot, _ = service.acquire()
                if snapshot.round_index < last_round:
                    failures.append(
                        f"reader {index} saw rounds go backwards: "
                        f"{last_round} -> {snapshot.round_index}"
                    )
                    return
                last_round = snapshot.round_index

        threads = [
            threading.Thread(target=reader, args=(index,), daemon=True,
                             name=f"monotone-reader-{index}")
            for index in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        try:
            for start in range(0, n, chunk):
                service.ingest(data[start : start + chunk])
        finally:
            stop.set()
        _join_all(threads)
        assert failures == []


class TestNoTornReads:
    def test_keep_everything_sampler_always_serves_an_exact_prefix(self):
        """With Bernoulli p=1.0 the sample *is* the stream prefix: any torn
        read — a sample from one round with counts from another, or a
        half-updated view — is directly visible as a prefix mismatch."""
        n, chunk = 20_000, 250
        data = [(index % UNIVERSE) + 1 for index in range(n)]
        service = QueryService(
            BernoulliSampler(1.0, seed=1), universe_size=UNIVERSE
        )
        stop = threading.Event()
        failures: list[str] = []
        checked = [0]
        lock = threading.Lock()

        def reader(index: int) -> None:
            while not stop.is_set():
                snapshot, counts = service.acquire(fresh=index % 2 == 0)
                rounds = snapshot.round_index
                if snapshot.size != rounds:
                    failures.append(
                        f"sample size {snapshot.size} != round {rounds}"
                    )
                    return
                if snapshot.sample != tuple(data[:rounds]):
                    failures.append(f"sample at round {rounds} is not the prefix")
                    return
                if int(counts.sum()) != rounds:
                    failures.append(
                        f"counts sum {int(counts.sum())} != round {rounds}: "
                        "snapshot and counts are torn"
                    )
                    return
                with lock:
                    checked[0] += 1

        threads = [
            threading.Thread(target=reader, args=(index,), daemon=True,
                             name=f"torn-reader-{index}")
            for index in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        try:
            for start in range(0, n, chunk):
                service.ingest(data[start : start + chunk])
        finally:
            stop.set()
        _join_all(threads)
        assert failures == []
        assert checked[0] > 0, "readers never completed a checked acquire"


class TestServeHarness:
    def test_serve_reports_latencies_and_bounded_staleness(self):
        n = 10_000
        data = _stream(n, seed=5)
        bound = 2_000
        service = QueryService(
            ShardedSampler(
                4, lambda rng: ReservoirSampler(64, seed=rng),
                strategy="hash", seed=2,
            ),
            staleness_rounds=bound,
            universe_size=UNIVERSE,
        )
        report = service.serve(
            data, chunk_size=500, clients=CLIENTS, adversarial_clients=1
        )
        assert isinstance(report, ServiceReport)
        assert report.rounds == n
        assert report.queries > 0
        assert report.query_p50 is not None
        assert report.query_p99 >= report.query_p50
        assert report.max_staleness_served <= bound
        assert report.final_sample_size > 0
        assert sum(report.per_kind.values()) == report.queries
        payload = report.to_dict()
        assert payload["rounds"] == n
        assert payload["queries"] == report.queries

    def test_adversarial_fresh_reads_observe_zero_staleness_rounds(self):
        """A fresh read always reflects every ingested round at the moment
        the lock is held — the adversary pays latency for freshness."""
        n = 6_000
        data = _stream(n, seed=9)
        service = QueryService(BernoulliSampler(1.0, seed=4))
        stop = threading.Event()
        failures: list[str] = []

        def adversary() -> None:
            while not stop.is_set():
                snapshot, _ = service.acquire(fresh=True)
                live = service.sampler.rounds_processed
                # rounds_processed can only have advanced since the acquire.
                if snapshot.round_index > live:
                    failures.append(
                        f"fresh snapshot at round {snapshot.round_index} is "
                        f"ahead of the live sampler at {live}"
                    )
                    return

        threads = [
            threading.Thread(target=adversary, daemon=True,
                             name=f"fresh-adversary-{index}")
            for index in range(max(1, CLIENTS // 2))
        ]
        for thread in threads:
            thread.start()
        try:
            for start in range(0, n, 300):
                service.ingest(data[start : start + 300])
        finally:
            stop.set()
        _join_all(threads)
        assert failures == []
