"""Tests for the batched game engine (BatchGameRunner, run_monte_carlo)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary import (
    BatchGameRunner,
    UniformAdversary,
    run_adaptive_game,
)
from repro.adversary.batch import run_monte_carlo
from repro.exceptions import ConfigurationError
from repro.experiments import monte_carlo
from repro.rng import derive_substream
from repro.samplers import BernoulliSampler, ReservoirSampler
from repro.setsystems import PrefixSystem

UNIVERSE = 64
STREAM_LENGTH = 300


# Module-level factories: picklable, so the process-pool path is exercised.
def make_reservoir(rng: np.random.Generator) -> ReservoirSampler:
    return ReservoirSampler(24, seed=rng)


def make_bernoulli(rng: np.random.Generator) -> BernoulliSampler:
    return BernoulliSampler(0.08, seed=rng)


def make_uniform(rng: np.random.Generator) -> UniformAdversary:
    return UniformAdversary(UNIVERSE, seed=rng)


def _square_trial(rng: np.random.Generator, index: int) -> float:
    return index + float(rng.random())


GRID_SAMPLERS = {"reservoir": make_reservoir, "bernoulli": make_bernoulli}
GRID_ADVERSARIES = {"uniform": make_uniform}


def _run_grid(workers: int, seed: int = 99, continuous: bool = False):
    runner = BatchGameRunner(
        STREAM_LENGTH,
        set_system=PrefixSystem(UNIVERSE),
        epsilon=0.3,
        continuous=continuous,
        seed=seed,
        workers=workers,
    )
    return runner.run_grid(GRID_SAMPLERS, GRID_ADVERSARIES, trials=4)


class TestBatchGameRunner:
    def test_grid_shape_and_aggregates(self):
        cells = _run_grid(workers=1)
        assert [(c.sampler, c.adversary) for c in cells] == [
            ("reservoir", "uniform"),
            ("bernoulli", "uniform"),
        ]
        for cell in cells:
            assert cell.trials == 4
            assert len(cell.errors) == 4
            assert all(0.0 <= e <= 1.0 for e in cell.errors)
            assert cell.max_error >= cell.mean_error
            assert cell.failure_rate is not None
            assert cell.mean_sample_size > 0

    def test_parallel_equals_serial_bit_for_bit(self):
        serial = _run_grid(workers=1)
        parallel = _run_grid(workers=3)
        for a, b in zip(serial, parallel):
            assert a.errors == b.errors
            assert a.mean_error == b.mean_error

    def test_same_seed_reproduces_and_seeds_differ_across_trials(self):
        first = _run_grid(workers=1, seed=7)
        second = _run_grid(workers=1, seed=7)
        other_seed = _run_grid(workers=1, seed=8)
        assert first[0].errors == second[0].errors
        assert first[0].errors != other_seed[0].errors
        # Independent trials: errors should not all collapse to one value.
        assert len(set(first[0].errors)) > 1

    def test_matches_direct_game_with_derived_seeds(self):
        """The engine is a scheduler, not a new game: replaying one trial by
        hand with the documented seed derivation gives the same error."""
        runner = BatchGameRunner(
            STREAM_LENGTH, set_system=PrefixSystem(UNIVERSE), epsilon=0.3, seed=123
        )
        outcomes = runner.run_trials(
            make_reservoir, make_uniform, trials=2,
            sampler_label="reservoir", adversary_label="uniform",
        )
        sampler_rng = derive_substream(runner.base_seed, 1, "reservoir", "sampler")
        adversary_rng = derive_substream(runner.base_seed, 1, "uniform", "adversary")
        by_hand = run_adaptive_game(
            make_reservoir(sampler_rng),
            make_uniform(adversary_rng),
            STREAM_LENGTH,
            set_system=PrefixSystem(UNIVERSE),
            epsilon=0.3,
        )
        assert outcomes[1].error == by_hand.error

    def test_continuous_grid_records_checkpoint_errors(self):
        cells = _run_grid(workers=2, continuous=True)
        for cell in cells:
            assert cell.mean_max_checkpoint_error is not None
            assert cell.worst_checkpoint_error >= cell.mean_max_checkpoint_error

    def test_mixed_picklable_grid_falls_back_to_in_process(self):
        """One unpicklable factory anywhere in the grid must not crash the pool."""
        runner = BatchGameRunner(
            100, set_system=PrefixSystem(UNIVERSE), epsilon=0.3, seed=5, workers=2
        )
        with pytest.warns(RuntimeWarning, match="in-process"):
            cells = runner.run_grid(
                samplers={"reservoir": make_reservoir},
                adversaries={
                    "uniform": make_uniform,
                    "closure": lambda rng: UniformAdversary(UNIVERSE, seed=rng),
                },
                trials=2,
            )
        assert len(cells) == 2 and all(c.trials == 2 for c in cells)

    def test_continuous_succeeded_uses_every_checkpoint(self):
        """The Figure-2 verdict must count mid-stream violations, not just the end.

        A Bernoulli sampler's earliest checkpoints have (here, deterministically
        tiny) samples that misrepresent the prefix, so the continuous verdict
        is False even when the final sample is fine.
        """
        runner = BatchGameRunner(
            2_000,
            set_system=PrefixSystem(UNIVERSE),
            epsilon=0.2,
            continuous=True,
            checkpoints=[1, 2_000],
            seed=0,
        )
        outcomes = runner.run_trials(make_bernoulli, make_uniform, trials=5)
        for outcome in outcomes:
            violated = any(e > 0.2 for e in outcome.checkpoint_errors)
            assert outcome.succeeded == (not violated)
        # With p = 0.08 the round-1 checkpoint is almost surely violated.
        assert any(not o.succeeded for o in outcomes)
        # Aggregation must keep the continuous verdict: violation_rate sees
        # mid-stream violations that the endpoint-based failure_rate cannot.
        from repro.adversary import BatchCellStats

        stats = BatchCellStats.from_outcomes(outcomes, epsilon=0.2)
        assert stats.violation_rate == sum(not o.succeeded for o in outcomes) / len(outcomes)
        assert stats.violation_rate >= stats.failure_rate

    def test_closure_factories_fall_back_to_in_process(self):
        runner = BatchGameRunner(
            100, set_system=PrefixSystem(UNIVERSE), epsilon=0.3, seed=5, workers=2
        )
        capacity = 10  # captured by the closures below
        with pytest.warns(RuntimeWarning, match="not picklable"):
            outcomes = runner.run_trials(
                lambda rng: ReservoirSampler(capacity, seed=rng),
                lambda rng: UniformAdversary(UNIVERSE, seed=rng),
                trials=3,
            )
        assert len(outcomes) == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BatchGameRunner(0)
        with pytest.raises(ConfigurationError):
            BatchGameRunner(10, continuous=True)
        with pytest.raises(ConfigurationError):
            BatchGameRunner(10, epsilon=0.1)
        with pytest.raises(ConfigurationError):
            # Checkpoint arguments without continuous=True would be ignored.
            BatchGameRunner(10, set_system=PrefixSystem(8), checkpoints=[5])
        with pytest.raises(ConfigurationError):
            BatchGameRunner(10, set_system=PrefixSystem(8), checkpoint_ratio=0.1)
        runner = BatchGameRunner(10)
        with pytest.raises(ConfigurationError):
            runner.run_trials(make_reservoir, make_uniform, trials=0)
        with pytest.raises(ConfigurationError):
            runner.run_grid({}, GRID_ADVERSARIES, trials=1)


class TestMonteCarloEngine:
    def test_serial_seeding_unchanged(self):
        """monte_carlo keeps the historical spawn_generators semantics."""
        values = monte_carlo(_square_trial, 5, seed=20200614)
        again = monte_carlo(_square_trial, 5, seed=20200614)
        assert values == again
        assert [int(v) for v in values] == [0, 1, 2, 3, 4]

    def test_parallel_returns_serial_results_in_order(self):
        serial = run_monte_carlo(_square_trial, 8, seed=3, workers=1)
        parallel = run_monte_carlo(_square_trial, 8, seed=3, workers=3)
        assert serial == parallel

    def test_closures_fall_back_in_process(self):
        local = 10
        with pytest.warns(RuntimeWarning, match="not picklable"):
            values = run_monte_carlo(
                lambda rng, i: i * local, 4, seed=0, workers=2
            )
        assert values == [0, 10, 20, 30]

    def test_trial_count_validated(self):
        with pytest.raises(ConfigurationError):
            run_monte_carlo(_square_trial, 0, seed=0)
