"""Tests for the epsilon-approximation helpers and continuous traces."""

from __future__ import annotations

import pytest

from repro.core.approximation import (
    approximation_error,
    approximation_report,
    continuous_approximation_trace,
    density,
    geometric_checkpoints,
    is_epsilon_approximation,
)
from repro.exceptions import EmptySampleError
from repro.setsystems import Prefix, PrefixSystem


class TestDensity:
    def test_counts_fraction(self):
        assert density(Prefix(5), [1, 2, 9, 10]) == pytest.approx(0.5)

    def test_duplicates_count(self):
        assert density(Prefix(5), [1, 1, 1, 9]) == pytest.approx(0.75)

    def test_empty_sequence_rejected(self):
        with pytest.raises(EmptySampleError):
            density(Prefix(5), [])


class TestApproximationHelpers:
    def test_error_equals_system_discrepancy(self, prefix_system):
        stream = [1, 5, 9, 13, 17, 21, 25, 29]
        sample = [5, 17, 29]
        assert approximation_error(prefix_system, stream, sample) == pytest.approx(
            prefix_system.max_discrepancy(stream, sample).error
        )

    def test_report_contains_witness(self, prefix_system):
        stream = list(range(1, 33))
        sample = [1, 2]
        report = approximation_report(prefix_system, stream, sample)
        assert report.error > 0.9
        assert report.witness.bound == 2

    def test_is_epsilon_approximation_boundary(self, prefix_system):
        stream = list(range(1, 33))
        sample = list(range(1, 33))
        assert is_epsilon_approximation(prefix_system, stream, sample, 0.0)

    def test_not_approximation_when_biased(self, prefix_system):
        stream = list(range(1, 33))
        sample = [1, 1, 1, 1]
        assert not is_epsilon_approximation(prefix_system, stream, sample, 0.5)


class TestGeometricCheckpoints:
    def test_includes_endpoints(self):
        points = geometric_checkpoints(10, 1000, 0.25)
        assert points[0] == 10
        assert points[-1] == 1000

    def test_monotone_increasing(self):
        points = geometric_checkpoints(5, 500, 0.1)
        assert all(b > a for a, b in zip(points, points[1:]))

    def test_count_is_logarithmic(self):
        points = geometric_checkpoints(1, 10**6, 0.5)
        assert len(points) < 60

    def test_ratio_respected(self):
        points = geometric_checkpoints(100, 10_000, 0.2)
        for a, b in zip(points[1:-1], points[2:-1]):
            assert b <= int(1.2 * a) + 1

    def test_degenerate_start_equals_end(self):
        assert geometric_checkpoints(7, 7, 0.3) == [7]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            geometric_checkpoints(0, 10, 0.1)
        with pytest.raises(ValueError):
            geometric_checkpoints(10, 5, 0.1)
        with pytest.raises(ValueError):
            geometric_checkpoints(1, 10, 0.0)


class TestContinuousTrace:
    def test_trace_records_requested_checkpoints(self):
        system = PrefixSystem(100)
        stream = list(range(1, 101))
        snapshots = {i: stream[:i:2] or [1] for i in range(1, 101)}
        trace = continuous_approximation_trace(
            system, stream, lambda i: snapshots[i], checkpoints=[10, 50, 100]
        )
        assert trace.checkpoints == [10, 50, 100]
        assert len(trace.errors) == 3

    def test_empty_snapshot_counts_as_full_error(self):
        system = PrefixSystem(10)
        stream = [1, 2, 3, 4]
        trace = continuous_approximation_trace(
            system, stream, lambda i: [], checkpoints=[2, 4]
        )
        assert trace.errors == [1.0, 1.0]
        assert trace.max_error == 1.0

    def test_violations_listed(self):
        system = PrefixSystem(10)
        stream = [1, 2, 3, 4, 5, 6, 7, 8]
        def snapshot(i):
            return [1] if i <= 4 else stream[:i]
        trace = continuous_approximation_trace(
            system, stream, snapshot, checkpoints=[4, 8]
        )
        assert trace.violations(0.2) == [4]
        assert trace.error_at(8) == pytest.approx(0.0)

    def test_default_checkpoints_cover_every_prefix(self):
        system = PrefixSystem(10)
        stream = [1, 2, 3]
        trace = continuous_approximation_trace(system, stream, lambda i: stream[:i])
        assert trace.checkpoints == [1, 2, 3]
        assert trace.max_error == pytest.approx(0.0)
