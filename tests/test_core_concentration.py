"""Tests for the concentration inequalities of Section 3."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.concentration import (
    azuma_tail,
    bernoulli_martingale_tail,
    chernoff_lower_tail,
    chernoff_two_sided,
    chernoff_upper_tail,
    freedman_tail,
    hoeffding_tail,
    reservoir_closed_form_tail,
    reservoir_martingale_tail,
)
from repro.exceptions import ConfigurationError


class TestChernoff:
    def test_lower_tail_formula(self):
        assert chernoff_lower_tail(100.0, 0.5) == pytest.approx(math.exp(-0.25 * 100 / 2))

    def test_upper_tail_formula(self):
        expected = math.exp(-0.25 * 100 / (2 + 2 * 0.5 / 3))
        assert chernoff_upper_tail(100.0, 0.5) == pytest.approx(expected)

    def test_tails_decrease_with_mean(self):
        assert chernoff_lower_tail(1000.0, 0.2) < chernoff_lower_tail(10.0, 0.2)

    def test_two_sided_capped_at_one(self):
        assert chernoff_two_sided(0.001, 0.01) == 1.0

    def test_invalid_deviation_rejected(self):
        with pytest.raises(ConfigurationError):
            chernoff_lower_tail(10.0, 1.5)

    def test_bounds_are_valid_upper_bounds_empirically(self, rng):
        # Binomial(n, p): the Chernoff bound must dominate the empirical tail.
        n, p, deviation = 500, 0.3, 0.3
        draws = rng.binomial(n, p, size=4000)
        mean = n * p
        empirical = np.mean(draws >= (1 + deviation) * mean)
        assert empirical <= chernoff_upper_tail(mean, deviation) + 0.02


class TestHoeffdingAzuma:
    def test_hoeffding_decreases_with_deviation(self):
        assert hoeffding_tail(100, 30.0) < hoeffding_tail(100, 10.0)

    def test_hoeffding_capped(self):
        assert hoeffding_tail(100, 0.0) == 1.0

    def test_azuma_zero_variance(self):
        assert azuma_tail(1.0, [0.0, 0.0]) == 0.0
        assert azuma_tail(0.0, [0.0]) == 1.0

    def test_azuma_formula(self):
        bounds = [1.0] * 100
        assert azuma_tail(20.0, bounds) == pytest.approx(2 * math.exp(-400 / 200))

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            hoeffding_tail(0, 1.0)
        with pytest.raises(ConfigurationError):
            azuma_tail(-1.0, [1.0])


class TestFreedman:
    def test_formula(self):
        value = freedman_tail(0.5, 2.0, 0.1, two_sided=False)
        assert value == pytest.approx(math.exp(-0.25 / (4.0 + 0.1 * 0.5 / 3)))

    def test_two_sided_doubles(self):
        one = freedman_tail(0.5, 2.0, 0.1, two_sided=False)
        two = freedman_tail(0.5, 2.0, 0.1, two_sided=True)
        assert two == pytest.approx(min(1.0, 2 * one))

    def test_degenerate_variance(self):
        assert freedman_tail(1.0, 0.0, 0.0) == 0.0
        assert freedman_tail(0.0, 0.0, 0.0) == 1.0

    def test_tightens_with_small_variance(self):
        assert freedman_tail(1.0, 0.1, 0.5) < freedman_tail(1.0, 10.0, 0.5)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            freedman_tail(-1.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            freedman_tail(1.0, -1.0, 1.0)


class TestPaperInstantiations:
    def test_bernoulli_tail_matches_paper_shape(self):
        # The paper derives < 2 exp(-eps^2 n p / 9); check the same order.
        epsilon, n, p = 0.1, 10_000, 0.05
        ours = bernoulli_martingale_tail(epsilon, n, p)
        paper = 2 * math.exp(-(epsilon**2) * n * p / 9)
        assert ours <= paper * 1.5

    def test_reservoir_closed_form_matches_paper(self):
        assert reservoir_closed_form_tail(0.1, 2000) == pytest.approx(
            2 * math.exp(-0.01 * 2000 / 2)
        )

    def test_reservoir_martingale_close_to_closed_form(self):
        # The explicit variance-sum evaluation should be within a small factor
        # of the paper's simplified closed form.
        explicit = reservoir_martingale_tail(0.2, 5000, 500)
        closed = reservoir_closed_form_tail(0.2, 500)
        assert explicit <= closed * 2 + 1e-9

    def test_paper_sample_sizes_give_small_delta(self):
        # Plugging the Theorem 1.2 reservoir size back into the tail should
        # give a per-range failure probability at most delta.
        from repro.core.bounds import reservoir_adaptive_size

        epsilon, delta = 0.1, 0.05
        size = reservoir_adaptive_size(0.0, epsilon, delta).size
        assert reservoir_closed_form_tail(epsilon, size) <= delta + 1e-9

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            bernoulli_martingale_tail(0.1, 0, 0.5)
        with pytest.raises(ConfigurationError):
            reservoir_martingale_tail(0.1, 100, 0)
        with pytest.raises(ConfigurationError):
            reservoir_closed_form_tail(0.1, 0)
