"""The continuous game's tracker fallback paths, pinned to batch recomputation.

``run_continuous_game`` prefers the incremental :class:`DiscrepancyTracker`
but must *silently* degrade to the batch ``max_discrepancy`` path in two
situations, always with identical reported errors:

* the set system has no incremental algorithm at all (rectangles, halfspaces,
  explicitly enumerated systems) — ``make_tracker`` returns ``None``;
* the system has a tracker but the stream carries an element the tracker
  cannot index (outside the universe, non-integral, astronomically large) —
  the tracker raises ``TrackerUnsupportedError`` mid-stream and the runner
  recomputes every remaining (and the current) checkpoint from the stream.
"""

from __future__ import annotations

import pytest

from repro.adversary import StaticAdversary, run_continuous_game
from repro.exceptions import TrackerUnsupportedError
from repro.samplers import ReservoirSampler
from repro.setsystems import (
    ExplicitSetSystem,
    HalfspaceSystem,
    IntervalSystem,
    PrefixSystem,
    RectangleSystem,
    SingletonSystem,
)
from repro.streams import clustered_points, uniform_stream

CHECKPOINTS = (8, 16, 32, 48, 64)
N = 64


def _play(system, stream, seed=7):
    """One continuous game per incremental flag, on the identical stream."""
    results = []
    for incremental in (True, False):
        results.append(
            run_continuous_game(
                ReservoirSampler(12, seed=seed),
                StaticAdversary(stream),
                len(stream),
                set_system=system,
                epsilon=0.5,
                checkpoints=CHECKPOINTS,
                incremental=incremental,
            )
        )
    return results


def _assert_identical(tracked, batch):
    assert tracked.checkpoint_errors == batch.checkpoint_errors
    assert tracked.error == batch.error
    assert tracked.succeeded == batch.succeeded


class TestSystemsWithoutTrackers:
    """Rectangles, halfspaces and discrete systems never get a tracker."""

    def test_rectangle_system_declines_tracker(self):
        assert RectangleSystem(8, 2, seed=0).make_tracker(64) is None

    def test_halfspace_system_declines_tracker(self):
        assert HalfspaceSystem(8, 2, directions=16, seed=0).make_tracker(64) is None

    def test_explicit_system_declines_tracker(self):
        assert ExplicitSetSystem.prefixes(12).make_tracker(64) is None

    def test_rectangle_continuous_game_matches_batch(self):
        stream = clustered_points(N, side=8, dimension=2, clusters=3, seed=5)
        tracked, batch = _play(RectangleSystem(8, 2, seed=0), stream)
        _assert_identical(tracked, batch)

    def test_halfspace_continuous_game_matches_batch(self):
        stream = clustered_points(N, side=8, dimension=2, clusters=3, seed=5)
        tracked, batch = _play(HalfspaceSystem(8, 2, directions=16, seed=0), stream)
        _assert_identical(tracked, batch)

    def test_explicit_continuous_game_matches_batch(self):
        stream = uniform_stream(N, 12, seed=3)
        tracked, batch = _play(ExplicitSetSystem.prefixes(12), stream)
        _assert_identical(tracked, batch)


@pytest.mark.parametrize("bad_element", [0, -3, N + 17, 2.5, 2**200])
@pytest.mark.parametrize(
    "system_factory", [PrefixSystem, IntervalSystem, SingletonSystem]
)
class TestMidStreamFallback:
    """An unindexable element mid-stream deactivates the tracker in place."""

    def test_matches_batch_after_midstream_deactivation(self, system_factory, bad_element):
        system = system_factory(N)
        assert system.make_tracker(N) is not None, "precondition: system has a tracker"
        stream = uniform_stream(N, N, seed=11)
        # The offending element lands between the 2nd and 3rd checkpoints, so
        # some checkpoints are answered by the live tracker and the rest by
        # the batch fallback within the same game.
        stream[20] = bad_element
        tracked, batch = _play(system, stream)
        _assert_identical(tracked, batch)

    def test_tracker_add_raises_and_preserves_state(self, system_factory, bad_element):
        tracker = system_factory(N).make_tracker(N)
        good_prefix = [1, 5, 9, 13]
        tracker.add_batch(good_prefix)
        before = tracker.checkpoint([5, 9])
        with pytest.raises(TrackerUnsupportedError):
            tracker.add(bad_element)
        # State is untouched: same length, same checkpoint answer.
        assert tracker.stream_length == len(good_prefix)
        after = tracker.checkpoint([5, 9])
        assert after.error == before.error
        assert after.witness == before.witness


class TestFallbackBeforeFirstCheckpoint:
    def test_bad_first_element_falls_back_for_every_checkpoint(self):
        system = PrefixSystem(N)
        stream = uniform_stream(N, N, seed=2)
        stream[0] = 2**200  # tracker dies on round 1, before any checkpoint
        tracked, batch = _play(system, stream)
        _assert_identical(tracked, batch)

    def test_huge_integer_streams_use_exact_batch_path(self):
        # The Figure-3 regime: elements far beyond 2^53.  The tracker cannot
        # index them, and the batch path must route to exact arithmetic —
        # both flags must agree on every checkpoint.
        base = 2**120
        stream = [base + i for i in uniform_stream(N, N, seed=4)]
        tracked, batch = _play(PrefixSystem(2**130), stream)
        _assert_identical(tracked, batch)
