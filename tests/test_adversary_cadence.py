"""Tests for the decision-cadence protocol (CadencedAdversary and friends).

The pins, in the order the chunked engine relies on them:

* **chunk invariance** — a cadenced adversary's decision sequence depends
  only on its ``decision_period``, never on how the runner chunks the
  stream, so against a sampler with a bit-identical kernel (Bernoulli) the
  ``chunk_size=1`` and chunked games agree exactly, for every attack
  adversary and several periods;
* **period 1 is the historical attack** — hand-driven traces match the
  pre-cadence per-round behaviour;
* **protocol plumbing** — ``decision_needs`` controls what the runner
  materialises, ``apply_decision_period`` re-declares cadence through
  wrappers, and the per-element fallback warns once.
"""

from __future__ import annotations

import warnings

import pytest

from repro.adversary import (
    Adversary,
    BatchGameRunner,
    BisectionAdversary,
    CadencedAdversary,
    EvictionChaserAdversary,
    GreedyDensityAdversary,
    MedianAttackAdversary,
    MixingGreedyDensityAdversary,
    SwitchingSingletonAdversary,
    ThresholdAttackAdversary,
    UniformAdversary,
    apply_decision_period,
    run_adaptive_game,
    run_continuous_game,
)
from repro.adversary.game import _FALLBACK_WARNED
from repro.exceptions import ConfigurationError
from repro.samplers import BernoulliSampler
from repro.samplers.base import SampleUpdate, UpdateBatch
from repro.scenarios import ScenarioConfig, run_config
from repro.setsystems import ContinuousPrefixSystem, Prefix, PrefixSystem

UNIVERSE = 256

#: One factory per attack adversary, so every family is pinned.
ATTACK_FACTORIES = {
    "bisection": lambda period: BisectionAdversary(decision_period=period),
    "figure3": lambda period: ThresholdAttackAdversary.for_bernoulli(
        0.05, 400, decision_period=period
    ),
    "median": lambda period: MedianAttackAdversary(400, decision_period=period),
    "greedy": lambda period: GreedyDensityAdversary(
        Prefix(64), 1, UNIVERSE, decision_period=period
    ),
    "mixing-greedy": lambda period: MixingGreedyDensityAdversary(
        Prefix(64), 1, UNIVERSE, decision_period=period
    ),
    "switching": lambda period: SwitchingSingletonAdversary(
        UNIVERSE, revisit_evicted=True, decision_period=period
    ),
    "eviction-chaser": lambda period: EvictionChaserAdversary(
        Prefix(64), 1, UNIVERSE, reservoir_size=16, decision_period=period
    ),
}


def _play(adversary, chunk_size, seed=11, n=400, continuous=False):
    """A game against the bit-identical Bernoulli kernel (0/1-valued streams
    map into every attack's universe)."""
    sampler = BernoulliSampler(0.08, seed=seed)
    if continuous:
        return run_continuous_game(
            sampler,
            adversary,
            n,
            set_system=ContinuousPrefixSystem(0.0, 2.0**901),
            checkpoints=range(37, n + 1, 37),
            chunk_size=chunk_size,
        )
    return run_adaptive_game(sampler, adversary, n, chunk_size=chunk_size)


class TestChunkInvariance:
    """chunk_size=1 == chunked, for every attack family and period."""

    @pytest.mark.parametrize("name", sorted(ATTACK_FACTORIES))
    @pytest.mark.parametrize("period", [1, 7, 32])
    def test_endpoint_game_bit_identical(self, name, period):
        factory = ATTACK_FACTORIES[name]
        per_element = _play(factory(period), chunk_size=1)
        chunked = _play(factory(period), chunk_size=None)
        assert per_element.stream == chunked.stream
        assert per_element.sample == chunked.sample
        assert list(per_element.updates) == list(chunked.updates)

    @pytest.mark.parametrize("name", ["bisection", "mixing-greedy", "switching"])
    def test_continuous_game_bit_identical(self, name):
        factory = ATTACK_FACTORIES[name]
        per_element = _play(factory(16), chunk_size=1, continuous=True)
        chunked = _play(factory(16), chunk_size=None, continuous=True)
        assert per_element.stream == chunked.stream
        assert per_element.checkpoint_errors == chunked.checkpoint_errors
        assert per_element.error == chunked.error

    @pytest.mark.parametrize("name", sorted(ATTACK_FACTORIES))
    def test_odd_chunk_sizes_bit_identical(self, name):
        """Blocks that span several segments (chunk < period) still realise
        the same decision sequence."""
        factory = ATTACK_FACTORIES[name]
        reference = _play(factory(32), chunk_size=1)
        for chunk in (5, 32, 50):
            other = _play(factory(32), chunk_size=chunk)
            assert reference.stream == other.stream, f"chunk={chunk}"
            assert reference.sample == other.sample, f"chunk={chunk}"


class TestPeriodOneIsHistorical:
    """Hand-driven traces at decision_period=1 match the per-round attacks."""

    def test_bisection_trace(self):
        adversary = BisectionAdversary()
        low, high = 0.0, 1.0
        for round_index, accepted in enumerate([True, False, True, False], start=1):
            element = adversary.next_element(round_index, None)
            assert element == (low + high) / 2.0
            adversary.observe_update(
                SampleUpdate(round_index=round_index, element=element, accepted=accepted)
            )
            if accepted:
                low = element
            else:
                high = element
            assert adversary.working_range == (low, high)

    def test_eviction_chaser_backoff_lasts_one_round(self):
        adversary = EvictionChaserAdversary(Prefix(10), 1, 99, reservoir_size=5)
        adversary.observe_update(
            SampleUpdate(round_index=999, element=1, accepted=True)
        )
        assert adversary.next_element(1000, None) == 99
        assert adversary.next_element(1001, None) == 1

    def test_switching_singleton_burns_on_acceptance(self):
        adversary = SwitchingSingletonAdversary(100)
        assert adversary.next_element(1, None) == 1
        adversary.observe_update(SampleUpdate(round_index=1, element=1, accepted=True))
        assert adversary.next_element(2, None) == 2
        assert adversary.burnt_targets == [1]


class TestCadenceSemantics:
    def test_every_attack_family_is_cadenced(self):
        for name, factory in ATTACK_FACTORIES.items():
            adversary = factory(4)
            assert isinstance(adversary, CadencedAdversary), name
            assert adversary.decision_period == 4, name

    def test_bisection_block_repeats_midpoint_and_moves_on_any_acceptance(self):
        adversary = BisectionAdversary(decision_period=4)
        block = adversary.next_elements(1, 4, None)
        assert block == [0.5] * 4
        batch = UpdateBatch.from_updates(
            SampleUpdate(round_index=i, element=0.5, accepted=(i == 3))
            for i in range(1, 5)
        )
        adversary.observe_update_batch(batch)
        assert adversary.working_range == (0.5, 1.0)

    def test_bisection_block_moves_down_without_acceptance(self):
        adversary = BisectionAdversary(decision_period=4)
        adversary.next_elements(1, 4, None)
        batch = UpdateBatch.from_updates(
            SampleUpdate(round_index=i, element=0.5, accepted=False)
            for i in range(1, 5)
        )
        adversary.observe_update_batch(batch)
        assert adversary.working_range == (0.0, 0.5)

    def test_block_spanning_segments_flushes_once_complete(self):
        adversary = SwitchingSingletonAdversary(100, decision_period=6)
        first = adversary.next_elements(1, 4, None)
        assert first == [1] * 4
        adversary.observe_update_batch(
            UpdateBatch.from_updates(
                SampleUpdate(round_index=i, element=1, accepted=(i == 2))
                for i in range(1, 5)
            )
        )
        # The block is not complete: the acceptance must not be digested yet.
        assert adversary.current_target == 1
        rest = adversary.next_elements(5, 10, None)
        assert rest == [1] * 2
        adversary.observe_update_batch(
            UpdateBatch.from_updates(
                SampleUpdate(round_index=i, element=1, accepted=False)
                for i in range(5, 7)
            )
        )
        assert adversary.current_target == 2
        assert adversary.burnt_targets == [1]

    def test_greedy_density_needs_sample_not_updates(self):
        adversary = GreedyDensityAdversary(Prefix(10), 1, 99)
        assert adversary.decision_needs == "sample"
        assert adversary.uses_observed_sample
        assert not adversary.observes_updates(1, 100)

    def test_mid_block_segments_skip_the_sample_view(self):
        """With chunk_size < decision_period the runner must materialise the
        sample once per *block*, not once per segment (the view is an
        expensive merge on sharded deployments)."""
        observations = []

        class CountingSampler(BernoulliSampler):
            @property
            def sample(self):
                view = super().sample
                observations.append(len(view))
                return view

        adversary = GreedyDensityAdversary(
            Prefix(10), 1, 99, decision_period=64
        )
        run_adaptive_game(
            CountingSampler(0.1, seed=3), adversary, 640, chunk_size=16, keep_updates=False
        )
        # 640 rounds / 64-round blocks = 10 decision points (plus the final
        # result snapshot), not one per 16-round segment (40).
        assert len(observations) == 11

    def test_update_driven_attacks_skip_the_sample_view(self):
        """The runner passes None to plan_block for decision_needs="updates"
        even under the full-knowledge model."""
        seen = []

        class Spy(ThresholdAttackAdversary):
            def plan_block(self, round_index, count, observed_sample):
                seen.append(observed_sample)
                return super().plan_block(round_index, count, observed_sample)

        adversary = Spy(10**6, 60, 0.2, decision_period=10)
        run_adaptive_game(
            BernoulliSampler(0.2, seed=1), adversary, 60, knowledge="full"
        )
        assert seen and all(view is None for view in seen)

    def test_invalid_decision_period_rejected(self):
        with pytest.raises(ConfigurationError):
            BisectionAdversary(decision_period=0)
        with pytest.raises(ConfigurationError):
            BisectionAdversary().set_decision_period(-3)

    def test_set_decision_period_mid_block_rejected(self):
        adversary = BisectionAdversary(decision_period=8)
        adversary.next_elements(1, 3, None)
        with pytest.raises(ConfigurationError, match="mid-block"):
            adversary.set_decision_period(4)

    def test_reset_clears_cadence_state(self):
        adversary = SwitchingSingletonAdversary(100, decision_period=4)
        adversary.next_elements(1, 2, None)
        adversary.reset()
        assert adversary.next_elements(1, 4, None) == [1] * 4


class TestApplyDecisionPeriod:
    def test_applies_to_cadenced_adversaries(self):
        adversary = MedianAttackAdversary(100)
        assert apply_decision_period(adversary, 25)
        assert adversary.decision_period == 25

    def test_oblivious_adversaries_decline(self):
        assert not apply_decision_period(UniformAdversary(16, seed=0), 25)

    def test_batch_runner_threads_the_knob(self):
        def sampler(rng):
            return BernoulliSampler(0.1, seed=rng)

        def adversary(rng):
            return MedianAttackAdversary(200)

        def run(decision_period):
            runner = BatchGameRunner(
                200,
                set_system=PrefixSystem(2**24),
                seed=5,
                decision_period=decision_period,
            )
            return runner.run_trials(sampler, adversary, trials=2)

        imposed = run(16)
        explicit = BatchGameRunner(200, set_system=PrefixSystem(2**24), seed=5).run_trials(
            sampler, lambda rng: MedianAttackAdversary(200, decision_period=16), trials=2
        )
        assert [o.error for o in imposed] == [o.error for o in explicit]
        # And a different cadence realises a different game.
        assert [o.error for o in imposed] != [o.error for o in run(1)]

    def test_batch_runner_validates_the_knob(self):
        with pytest.raises(ConfigurationError):
            BatchGameRunner(100, decision_period=0)


class TestPerElementFallbackWarning:
    class PerRoundAttack(Adversary):
        name = "per-round-attack"

        def next_element(self, round_index, observed_sample):
            return round_index

    def test_warns_once_under_default_chunking(self):
        _FALLBACK_WARNED.discard("PerRoundAttack")
        with pytest.warns(RuntimeWarning, match="per-element path"):
            run_adaptive_game(BernoulliSampler(0.5, seed=0), self.PerRoundAttack(), 10)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_adaptive_game(BernoulliSampler(0.5, seed=0), self.PerRoundAttack(), 10)

    def test_explicit_chunk_size_one_stays_silent(self):
        _FALLBACK_WARNED.discard("PerRoundAttack")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_adaptive_game(
                BernoulliSampler(0.5, seed=0), self.PerRoundAttack(), 10, chunk_size=1
            )
        assert "PerRoundAttack" not in _FALLBACK_WARNED

    def test_cadenced_adversaries_stay_silent(self):
        before = set(_FALLBACK_WARNED)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_adaptive_game(
                BernoulliSampler(0.5, seed=0), BisectionAdversary(), 10
            )
        assert set(_FALLBACK_WARNED) == before


class TestScenarioCadence:
    SMALL = dict(stream_length=192, universe_size=64, trials=2)

    def test_decision_period_field_is_validated(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(name="x", decision_period=0)

    def test_decision_period_round_trips_through_json(self):
        config = ScenarioConfig(name="x", decision_period=16)
        assert ScenarioConfig.from_json(config.to_json()) == config

    def test_spec_level_cadence_overrides_config_level(self):
        base = dict(
            name="cadence",
            **self.SMALL,
            samplers={"bernoulli": {"family": "bernoulli", "probability": 0.1}},
            set_system={"kind": "prefix"},
        )
        config_level = run_config(
            ScenarioConfig(
                **base,
                decision_period=16,
                adversary={
                    "family": "greedy_density",
                    "target": {"kind": "prefix", "bound_fraction": 0.5},
                },
            )
        )
        spec_level = run_config(
            ScenarioConfig(
                **base,
                decision_period=3,
                adversary={
                    "family": "greedy_density",
                    "decision_period": 16,
                    "target": {"kind": "prefix", "bound_fraction": 0.5},
                },
            )
        )
        assert config_level.cells[0]["mean_error"] == spec_level.cells[0]["mean_error"]

    def test_spec_level_cadence_on_oblivious_family_rejected(self):
        config = ScenarioConfig(
            name="bad",
            **self.SMALL,
            adversary={"family": "uniform", "decision_period": 16},
        )
        with pytest.raises(ConfigurationError, match="declares no decision"):
            run_config(config)

    def test_config_level_cadence_is_lenient_for_oblivious_families(self):
        config = ScenarioConfig(
            name="ok",
            **self.SMALL,
            decision_period=16,
            adversary={"family": "uniform"},
        )
        result = run_config(config)
        assert result.cells


class TestBudgetedCadence:
    def test_budget_boundary_caps_blocks(self):
        """The wrapper slices cadence blocks at the attack/benign boundary
        and forwards only attack-window update records (columnar slice)."""
        from repro.scenarios.builders import BudgetedAdversary

        inner = SwitchingSingletonAdversary(100, decision_period=8)
        wrapper = BudgetedAdversary(inner, lambda: 0, attack_rounds=10)
        first = wrapper.next_elements(9, 100, None)
        assert first == [1, 1]  # capped at the boundary
        batch = UpdateBatch.from_updates(
            SampleUpdate(round_index=i, element=1, accepted=True) for i in range(9, 13)
        )
        wrapper.observe_update_batch(batch)
        # Rounds 11-12 are benign-tail records and must not reach the inner
        # attack; the block (8 long) is still incomplete, so nothing burns.
        assert inner.current_target == 1
        assert wrapper.next_elements(11, 3, None) == [0, 0, 0]

    def test_budgeted_wrapper_forwards_sample_appetite(self):
        from repro.scenarios.builders import BudgetedAdversary

        updates_driven = BudgetedAdversary(
            ThresholdAttackAdversary(10**6, 100, 0.2), lambda: 0, attack_rounds=50
        )
        assert not updates_driven.uses_observed_sample
        sample_driven = BudgetedAdversary(
            GreedyDensityAdversary(Prefix(10), 1, 99), lambda: 0, attack_rounds=50
        )
        assert sample_driven.uses_observed_sample

    def test_budgeted_wrapper_forwards_set_decision_period(self):
        from repro.scenarios.builders import BudgetedAdversary

        inner = BisectionAdversary()
        wrapper = BudgetedAdversary(inner, lambda: 0, attack_rounds=50)
        assert apply_decision_period(wrapper, 9)
        assert inner.decision_period == 9
        oblivious = BudgetedAdversary(UniformAdversary(8, seed=0), lambda: 0, attack_rounds=5)
        assert not apply_decision_period(oblivious, 9)


class TestCadencedSubclassOverridingNextElement:
    def test_per_round_override_is_honoured(self):
        """Mirrors the static adversaries' regression guard: a subclass that
        overrides next_element must not be bypassed by block serving."""

        class Constant(BisectionAdversary):
            def next_element(self, round_index, observed_sample):
                return 0.25

        result = run_adaptive_game(
            BernoulliSampler(0.5, seed=1), Constant(decision_period=32), 40
        )
        assert result.stream == [0.25] * 40
