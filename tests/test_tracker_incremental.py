"""Tests for the incremental discrepancy trackers (continuous-game fast path).

The central property: at every checkpoint of every stream, the tracker's
reported error equals the batch ``max_discrepancy`` recomputation on the same
prefix and sample — verified both directly (property tests over random
streams) and end to end through ``run_continuous_game`` on random and
adversarial streams.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary import (
    GreedyDensityAdversary,
    ThresholdAttackAdversary,
    UniformAdversary,
    run_continuous_game,
)
from repro.exceptions import EmptySampleError, TrackerUnsupportedError
from repro.samplers import BernoulliSampler, ReservoirSampler
from repro.setsystems import (
    ContinuousPrefixSystem,
    DenseCountTracker,
    ExplicitSetSystem,
    IntervalSystem,
    Prefix,
    PrefixSystem,
    SingletonSystem,
)

FAST = settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])

UNIVERSE = 16
elements = st.integers(min_value=1, max_value=UNIVERSE)
streams = st.lists(elements, min_size=1, max_size=80)
samples = st.lists(elements, min_size=1, max_size=20)

SYSTEMS = [PrefixSystem, IntervalSystem, SingletonSystem]


class TestTrackerMatchesBatchRecomputation:
    @FAST
    @given(stream=streams, sample=samples, data=st.data())
    @pytest.mark.parametrize("system_cls", SYSTEMS)
    def test_checkpoint_equals_max_discrepancy_on_random_streams(
        self, system_cls, stream, sample, data
    ):
        """Tracker error == batch recomputation at an arbitrary prefix."""
        system = system_cls(UNIVERSE)
        tracker = system.make_tracker()
        assert tracker is not None
        cut = data.draw(st.integers(min_value=1, max_value=len(stream)))
        for element in stream[:cut]:
            tracker.add(element)
        incremental = tracker.checkpoint(sample)
        batch = system.max_discrepancy(stream[:cut], sample)
        assert incremental.error == batch.error  # bit-identical by design
        assert incremental.exact

    @FAST
    @given(stream=streams, sample=samples)
    @pytest.mark.parametrize("system_cls", SYSTEMS)
    def test_checkpoint_at_every_prefix(self, system_cls, stream, sample):
        """Equality holds at *all* prefixes of one growing stream."""
        system = system_cls(UNIVERSE)
        tracker = system.make_tracker()
        for cut, element in enumerate(stream, start=1):
            tracker.add(element)
            assert (
                tracker.checkpoint(sample).error
                == system.max_discrepancy(stream[:cut], sample).error
            )

    @pytest.mark.parametrize("system_cls", SYSTEMS)
    def test_witness_achieves_reported_error(self, system_cls, rng):
        system = system_cls(64)
        tracker = system.make_tracker()
        stream = [int(x) for x in rng.integers(1, 65, size=400)]
        sample = stream[::13]
        tracker.add_batch(stream)
        report = tracker.checkpoint(sample)
        witnessed = abs(
            system.density(report.witness, stream) - system.density(report.witness, sample)
        )
        assert witnessed == pytest.approx(report.error, abs=1e-12)


class TestContinuousGameEquivalence:
    @pytest.mark.parametrize("system_cls", SYSTEMS)
    def test_random_stream_checkpoint_errors_identical(self, system_cls):
        system = system_cls(50)
        kwargs = dict(
            stream_length=400,
            set_system=system,
            epsilon=0.4,
            checkpoints=list(range(1, 401, 7)),
        )
        with_tracker = run_continuous_game(
            ReservoirSampler(25, seed=3), UniformAdversary(50, seed=4), **kwargs
        )
        without_tracker = run_continuous_game(
            ReservoirSampler(25, seed=3),
            UniformAdversary(50, seed=4),
            incremental=False,
            **kwargs,
        )
        assert with_tracker.checkpoint_errors == without_tracker.checkpoint_errors
        assert with_tracker.error == without_tracker.error

    def test_adversarial_stream_checkpoint_errors_identical(self):
        """The greedy density attack (adaptive, feedback-driven) as workload."""
        system = PrefixSystem(128)

        def play(incremental: bool):
            return run_continuous_game(
                ReservoirSampler(10, seed=11),
                GreedyDensityAdversary(Prefix(64), 1, 128),
                300,
                set_system=system,
                epsilon=0.3,
                checkpoint_ratio=0.05,
                incremental=incremental,
            )

        assert play(True).checkpoint_errors == play(False).checkpoint_errors

    def test_bernoulli_empty_prefix_sample_scores_one(self):
        """Empty snapshots bypass the tracker and score error 1.0 either way."""
        system = PrefixSystem(32)
        result = run_continuous_game(
            BernoulliSampler(1e-9, seed=0),
            UniformAdversary(32, seed=1),
            50,
            set_system=system,
            checkpoints=[1, 10, 50],
        )
        assert result.checkpoint_errors == [1.0, 1.0, 1.0]

    def test_figure3_huge_universe_falls_back_to_batch_path(self):
        """The Figure-3 attack uses a 2^Θ(n) universe: no dense tracker fits.

        ``make_tracker`` refuses the universe, the game silently uses the
        batch path, and results equal the explicitly non-incremental run.
        """
        n, k = 120, 4
        universe_size = 2 ** (n // k + 2)
        system = PrefixSystem(universe_size)
        assert system.make_tracker() is None

        def play(incremental: bool):
            return run_continuous_game(
                ReservoirSampler(k, seed=5),
                ThresholdAttackAdversary.for_reservoir(k, n, universe_size=universe_size),
                n,
                set_system=system,
                checkpoints=[n // 4, n // 2, n],
                incremental=incremental,
            )

        assert play(True).checkpoint_errors == play(False).checkpoint_errors


class TestTrackerEdgeCases:
    def test_out_of_universe_element_raises_and_leaves_state_intact(self):
        tracker = PrefixSystem(8).make_tracker()
        tracker.add(3)
        for bad in (0, 9, -1, 2.5, "x", None):
            with pytest.raises(TrackerUnsupportedError):
                tracker.add(bad)
        assert tracker.stream_length == 1
        assert tracker.checkpoint([3]).error == 0.0

    def test_game_falls_back_when_stream_leaves_universe(self):
        """An adversary may submit data the tracker cannot index mid-stream."""
        from repro.adversary import StaticAdversary

        system = PrefixSystem(16)
        stream = [1, 5, 9, 2.5, 13, 4]  # 2.5 is not a universe element
        kwargs = dict(
            stream_length=len(stream),
            set_system=system,
            checkpoints=[2, len(stream)],
        )
        with_tracker = run_continuous_game(
            ReservoirSampler(4, seed=2), StaticAdversary(stream), **kwargs
        )
        without_tracker = run_continuous_game(
            ReservoirSampler(4, seed=2),
            StaticAdversary(stream),
            incremental=False,
            **kwargs,
        )
        assert with_tracker.checkpoint_errors == without_tracker.checkpoint_errors

    def test_add_batch_equals_repeated_add(self, rng):
        stream = [int(x) for x in rng.integers(1, 33, size=200)]
        one = PrefixSystem(32).make_tracker()
        other = PrefixSystem(32).make_tracker()
        for element in stream:
            one.add(element)
        other.add_batch(stream)
        sample = stream[::9]
        assert one.checkpoint(sample).error == other.checkpoint(sample).error
        assert one.stream_length == other.stream_length == 200

    def test_reset_forgets_the_stream(self):
        tracker = SingletonSystem(8).make_tracker()
        tracker.add_batch([1, 1, 1, 2])
        tracker.reset()
        assert tracker.stream_length == 0
        tracker.add(5)
        assert tracker.checkpoint([5]).error == 0.0

    def test_empty_sample_rejected(self):
        tracker = IntervalSystem(8).make_tracker()
        tracker.add(1)
        with pytest.raises(EmptySampleError):
            tracker.checkpoint([])

    def test_systems_without_incremental_algorithms_return_none(self):
        assert ContinuousPrefixSystem().make_tracker() is None
        assert ExplicitSetSystem.prefixes(6).make_tracker() is None
        assert PrefixSystem(DenseCountTracker.MAX_DENSE_UNIVERSE + 1).make_tracker() is None

    def test_dense_tracker_declined_for_short_streams_over_huge_universes(self):
        """O(N) checkpoints would lose to the O(n log n) batch path there."""
        huge = PrefixSystem(DenseCountTracker.MAX_DENSE_UNIVERSE)
        assert huge.make_tracker(stream_length=1_000) is None
        # A stream long enough to amortise the dense arrays gets the tracker.
        assert huge.make_tracker(stream_length=DenseCountTracker.MAX_DENSE_UNIVERSE) is not None
        # Small universes always qualify, whatever the stream length.
        assert PrefixSystem(1024).make_tracker(stream_length=10) is not None
