"""Tests for the deterministic/randomised summary baselines (GK, merge-reduce, MG, KLL)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, EmptySampleError
from repro.samplers import (
    GreenwaldKhannaSketch,
    KLLSketch,
    MergeReduceSummary,
    MisraGriesSummary,
)


class TestGreenwaldKhanna:
    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ConfigurationError):
            GreenwaldKhannaSketch(0.0)

    def test_empty_queries_rejected(self):
        sketch = GreenwaldKhannaSketch(0.1)
        with pytest.raises(EmptySampleError):
            sketch.quantile_query(0.5)
        with pytest.raises(EmptySampleError):
            sketch.rank_query(1.0)

    def test_quantiles_within_epsilon_on_shuffled_stream(self, rng):
        epsilon = 0.05
        sketch = GreenwaldKhannaSketch(epsilon)
        values = list(range(1, 2001))
        rng.shuffle(values)
        sketch.extend(values)
        for fraction in (0.1, 0.25, 0.5, 0.75, 0.9):
            estimate = sketch.quantile_query(fraction)
            true_rank = estimate / 2000
            assert abs(true_rank - fraction) <= 2 * epsilon

    def test_quantiles_within_epsilon_on_sorted_stream(self):
        epsilon = 0.05
        sketch = GreenwaldKhannaSketch(epsilon)
        sketch.extend(range(1, 3001))
        median = sketch.quantile_query(0.5)
        assert abs(median / 3000 - 0.5) <= 2 * epsilon

    def test_memory_is_sublinear(self):
        sketch = GreenwaldKhannaSketch(0.02)
        sketch.extend(range(20_000))
        assert sketch.memory_footprint() < 4000

    def test_rank_query_monotone(self, rng):
        sketch = GreenwaldKhannaSketch(0.1)
        sketch.extend(rng.integers(0, 1000, size=500))
        assert sketch.rank_query(100) <= sketch.rank_query(900)

    def test_reset(self):
        sketch = GreenwaldKhannaSketch(0.1)
        sketch.extend(range(100))
        sketch.reset()
        assert sketch.count == 0
        assert sketch.memory_footprint() == 0

    def test_invalid_fraction_rejected(self):
        sketch = GreenwaldKhannaSketch(0.1)
        sketch.update(1.0)
        with pytest.raises(ConfigurationError):
            sketch.quantile_query(1.5)


class TestMergeReduce:
    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ConfigurationError):
            MergeReduceSummary(1.5)

    def test_empty_query_rejected(self):
        with pytest.raises(EmptySampleError):
            MergeReduceSummary(0.1).weighted_points()

    def test_total_weight_matches_count(self, rng):
        summary = MergeReduceSummary(0.1)
        summary.extend(rng.integers(0, 1000, size=777))
        total_weight = sum(point.weight for point in summary.weighted_points())
        assert total_weight == pytest.approx(777)

    def test_prefix_density_accurate(self, rng):
        epsilon = 0.05
        summary = MergeReduceSummary(epsilon)
        values = list(range(1, 4001))
        rng.shuffle(values)
        summary.extend(values)
        assert summary.prefix_density(2000) == pytest.approx(0.5, abs=2 * epsilon)

    def test_quantile_accuracy(self, rng):
        epsilon = 0.05
        summary = MergeReduceSummary(epsilon)
        values = list(range(1, 5001))
        rng.shuffle(values)
        summary.extend(values)
        for fraction in (0.25, 0.5, 0.75):
            estimate = summary.quantile_query(fraction)
            assert abs(estimate / 5000 - fraction) <= 2 * epsilon

    def test_memory_sublinear(self):
        summary = MergeReduceSummary(0.05)
        summary.extend(range(30_000))
        assert summary.memory_footprint() < 3000

    def test_deterministic_given_same_stream(self):
        first = MergeReduceSummary(0.1)
        second = MergeReduceSummary(0.1)
        data = list(range(1000, 0, -1))
        first.extend(data)
        second.extend(data)
        assert [p.value for p in first.weighted_points()] == [
            p.value for p in second.weighted_points()
        ]

    def test_reset(self):
        summary = MergeReduceSummary(0.1)
        summary.extend(range(100))
        summary.reset()
        assert summary.count == 0
        assert summary.memory_footprint() == 0


class TestMisraGries:
    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            MisraGriesSummary(0)

    def test_exact_when_few_distinct_values(self):
        summary = MisraGriesSummary(10)
        stream = [1] * 30 + [2] * 20 + [3] * 10
        summary.extend(stream)
        assert summary.estimate(1) == 30
        assert summary.estimate(2) == 20

    def test_frequency_bounds_contain_truth(self, rng):
        summary = MisraGriesSummary(20)
        stream = list(rng.zipf(1.5, size=5000) % 100)
        summary.extend(stream)
        true_count = stream.count(7)
        lower, upper = summary.frequency_bounds(7)
        assert lower <= true_count <= upper

    def test_heavy_hitters_never_missed(self, rng):
        summary = MisraGriesSummary(capacity=19)  # error n/20
        heavy = [42] * 300
        light = list(rng.integers(100, 1000, size=700))
        stream = heavy + light
        rng.shuffle(stream)
        summary.extend(stream)
        assert 42 in summary.heavy_hitters(0.2)

    def test_light_elements_eventually_excluded(self):
        summary = MisraGriesSummary(5)
        stream = [1] * 90 + list(range(100, 110))
        summary.extend(stream)
        reported = summary.heavy_hitters(0.5)
        assert 1 in reported
        assert 105 not in reported

    def test_memory_bounded_by_capacity(self, rng):
        summary = MisraGriesSummary(8)
        summary.extend(rng.integers(0, 10_000, size=5000))
        assert summary.memory_footprint() <= 8

    def test_invalid_threshold_rejected(self):
        summary = MisraGriesSummary(4)
        with pytest.raises(ConfigurationError):
            summary.heavy_hitters(0.0)

    def test_reset(self):
        summary = MisraGriesSummary(4)
        summary.extend([1, 2, 3])
        summary.reset()
        assert summary.count == 0
        assert summary.memory_footprint() == 0


class TestKLL:
    def test_invalid_k_rejected(self):
        with pytest.raises(ConfigurationError):
            KLLSketch(k=2)

    def test_empty_queries_rejected(self):
        sketch = KLLSketch(k=50)
        with pytest.raises(EmptySampleError):
            sketch.quantile_query(0.5)

    def test_rank_accuracy(self, rng):
        sketch = KLLSketch(k=200, seed=rng)
        values = list(range(1, 10_001))
        rng.shuffle(values)
        sketch.extend(values)
        estimated = sketch.rank_query(5000)
        assert abs(estimated - 5000) <= 0.05 * 10_000

    def test_quantile_accuracy(self, rng):
        sketch = KLLSketch(k=200, seed=rng)
        values = list(range(1, 8001))
        rng.shuffle(values)
        sketch.extend(values)
        median = sketch.quantile_query(0.5)
        assert abs(median / 8000 - 0.5) <= 0.06

    def test_memory_sublinear(self, rng):
        sketch = KLLSketch(k=100, seed=rng)
        sketch.extend(rng.random(50_000))
        assert sketch.memory_footprint() < 2500

    def test_estimated_epsilon(self):
        assert KLLSketch(k=170).estimated_epsilon == pytest.approx(0.01)

    def test_reset(self, rng):
        sketch = KLLSketch(k=64, seed=rng)
        sketch.extend(range(1000))
        sketch.reset()
        assert sketch.count == 0
        assert sketch.memory_footprint() == 0

    def test_invalid_fraction_rejected(self, rng):
        sketch = KLLSketch(k=64, seed=rng)
        sketch.update(1.0)
        with pytest.raises(ConfigurationError):
            sketch.quantile_query(-0.1)
