"""Tests for the sample-size bound calculators (Theorems 1.2, 1.3, 1.4)."""

from __future__ import annotations

import math

import pytest

from repro.core.bounds import (
    attack_universe_bounds,
    bernoulli_adaptive_rate,
    bernoulli_attack_threshold,
    bernoulli_static_rate,
    epsilon_for_bernoulli,
    epsilon_for_reservoir,
    reservoir_adaptive_size,
    reservoir_attack_threshold,
    reservoir_continuous_size,
    reservoir_continuous_size_static,
    reservoir_continuous_size_union_bound,
    reservoir_static_size,
)
from repro.exceptions import ConfigurationError


class TestReservoirAdaptiveSize:
    def test_matches_theorem_formula(self):
        bound = reservoir_adaptive_size(math.log(1000), 0.1, 0.05)
        expected = 2.0 * (math.log(1000) + math.log(2 / 0.05)) / 0.01
        assert bound.value == pytest.approx(expected)
        assert bound.size == math.ceil(expected)

    def test_grows_with_log_cardinality(self):
        small = reservoir_adaptive_size(5.0, 0.2, 0.1).value
        large = reservoir_adaptive_size(50.0, 0.2, 0.1).value
        assert large > small

    def test_shrinks_with_epsilon(self):
        tight = reservoir_adaptive_size(10.0, 0.05, 0.1).value
        loose = reservoir_adaptive_size(10.0, 0.5, 0.1).value
        assert tight > loose

    def test_quadratic_epsilon_dependence(self):
        base = reservoir_adaptive_size(10.0, 0.2, 0.1).value
        halved = reservoir_adaptive_size(10.0, 0.1, 0.1).value
        assert halved == pytest.approx(4.0 * base)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ConfigurationError):
            reservoir_adaptive_size(10.0, 1.5, 0.1)

    def test_invalid_delta_rejected(self):
        with pytest.raises(ConfigurationError):
            reservoir_adaptive_size(10.0, 0.1, 0.0)

    def test_size_is_positive_integer(self):
        bound = reservoir_adaptive_size(0.0, 0.9, 0.9)
        assert bound.size >= 1
        assert bound.probability is None


class TestBernoulliAdaptiveRate:
    def test_matches_theorem_formula(self):
        bound = bernoulli_adaptive_rate(math.log(1000), 0.1, 0.05, 100_000)
        expected = 10.0 * (math.log(1000) + math.log(4 / 0.05)) / (0.01 * 100_000)
        assert bound.probability == pytest.approx(expected)

    def test_probability_capped_at_one(self):
        bound = bernoulli_adaptive_rate(100.0, 0.1, 0.1, 10)
        assert bound.probability == 1.0
        assert bound.size == 10

    def test_rate_decreases_with_stream_length(self):
        short = bernoulli_adaptive_rate(10.0, 0.2, 0.1, 1_000).probability
        long = bernoulli_adaptive_rate(10.0, 0.2, 0.1, 100_000).probability
        assert long < short

    def test_expected_sample_size_independent_of_length(self):
        short = bernoulli_adaptive_rate(10.0, 0.2, 0.1, 10_000)
        long = bernoulli_adaptive_rate(10.0, 0.2, 0.1, 1_000_000)
        assert short.value == pytest.approx(long.value)

    def test_invalid_stream_length_rejected(self):
        with pytest.raises(ConfigurationError):
            bernoulli_adaptive_rate(10.0, 0.2, 0.1, 0)


class TestStaticBounds:
    def test_static_uses_vc_not_cardinality(self):
        static = reservoir_static_size(1, 0.2, 0.1)
        adaptive = reservoir_adaptive_size(math.log(2**40), 0.2, 0.1)
        assert static.size < adaptive.size

    def test_static_bernoulli_capped(self):
        bound = bernoulli_static_rate(5, 0.1, 0.1, 10)
        assert bound.probability == 1.0

    def test_static_reservoir_formula(self):
        bound = reservoir_static_size(3, 0.1, 0.2)
        expected = 4.0 * (3 + math.log(1 / 0.2)) / 0.01
        assert bound.value == pytest.approx(expected)


class TestAttackThresholds:
    def test_reservoir_threshold_formula(self):
        value = reservoir_attack_threshold(60.0, 1000)
        assert value == pytest.approx((1.0 / 6.0) * 60.0 / math.log(1000))

    def test_bernoulli_threshold_formula(self):
        value = bernoulli_attack_threshold(60.0, 1000)
        assert value == pytest.approx((1.0 / 6.0) * 60.0 / (1000 * math.log(1000)))

    def test_thresholds_grow_with_cardinality(self):
        assert reservoir_attack_threshold(100.0, 1000) > reservoir_attack_threshold(10.0, 1000)

    def test_threshold_below_adaptive_bound(self):
        # The attack threshold must always sit below the Theorem 1.2 size —
        # otherwise upper and lower bounds would contradict each other.
        log_r = math.log(10**9)
        threshold = reservoir_attack_threshold(log_r, 10_000)
        upper = reservoir_adaptive_size(log_r, 0.25, 0.25).size
        assert threshold < upper

    def test_short_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            reservoir_attack_threshold(10.0, 2)

    def test_attack_universe_bounds_ordering(self):
        # The theorem's window n^{6 ln n} <= N <= 2^{n/2} is non-empty only
        # once the stream is long enough.
        lower, upper = attack_universe_bounds(2000)
        assert lower < upper

    def test_attack_universe_bounds_invalid(self):
        with pytest.raises(ConfigurationError):
            attack_universe_bounds(1)


class TestContinuousBounds:
    def test_continuous_exceeds_endpoint_bound(self):
        log_r = math.log(1024)
        endpoint = reservoir_adaptive_size(log_r, 0.2, 0.1).size
        continuous = reservoir_continuous_size(log_r, 0.2, 0.1, 10_000).size
        assert continuous > endpoint

    def test_continuous_below_union_bound_for_very_long_streams(self):
        # Theorem 1.4's advantage over the naive union bound is the ln ln n
        # versus ln n additive term, so it only dominates asymptotically.
        log_r = math.log(1024)
        continuous = reservoir_continuous_size(log_r, 0.2, 0.1, 10**30).size
        union = reservoir_continuous_size_union_bound(log_r, 0.2, 0.1, 10**30).size
        assert continuous < union

    def test_continuous_grows_very_slowly_with_n(self):
        log_r = math.log(1024)
        short = reservoir_continuous_size(log_r, 0.2, 0.1, 10**3).value
        long = reservoir_continuous_size(log_r, 0.2, 0.1, 10**6).value
        assert long / short < 1.5

    def test_static_variant_smaller_than_adaptive(self):
        adaptive = reservoir_continuous_size(math.log(2**40), 0.2, 0.1, 10_000).size
        static = reservoir_continuous_size_static(1, 0.2, 0.1, 10_000).size
        assert static < adaptive

    def test_short_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            reservoir_continuous_size(5.0, 0.2, 0.1, 2)


class TestInverseBounds:
    def test_epsilon_for_reservoir_inverts_size(self):
        log_r = math.log(500)
        epsilon = 0.15
        size = reservoir_adaptive_size(log_r, epsilon, 0.1).size
        recovered = epsilon_for_reservoir(log_r, 0.1, size)
        assert recovered <= epsilon + 0.01

    def test_epsilon_for_bernoulli_inverts_rate(self):
        log_r = math.log(500)
        epsilon = 0.2
        bound = bernoulli_adaptive_rate(log_r, epsilon, 0.1, 50_000)
        recovered = epsilon_for_bernoulli(log_r, 0.1, bound.probability, 50_000)
        assert recovered == pytest.approx(epsilon, abs=0.01)

    def test_more_budget_means_smaller_epsilon(self):
        assert epsilon_for_reservoir(5.0, 0.1, 1000) < epsilon_for_reservoir(5.0, 0.1, 100)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            epsilon_for_reservoir(5.0, 0.1, 0)
        with pytest.raises(ConfigurationError):
            epsilon_for_bernoulli(5.0, 0.1, 0.0, 100)
