"""Fault injection, crash/recovery and elastic resharding (PR 8).

The elasticity layer's contract, pinned here:

* :class:`FaultPlan` is pure, validated data — overlapping outages,
  topology changes inside an outage, and malformed specs are rejected at
  construction; plans round-trip through JSON.
* Fault transitions fire *before* the element of their round on both the
  per-element and the chunked path, so a faulted run is bit-reproducible
  and chunking-independent under deterministic routing.
* ``"drop"`` loses outage traffic permanently (and accounts for it);
  ``"replay"`` buffers it and flushes the buffer through the ordinary
  ``extend`` kernel at the recovery boundary.
* The coordinator's merged view is memoised behind a version counter
  (repeated reads are free), stale windows serve the cached view across
  ingests (the stale-coordinator exploit), and every site↔coordinator
  exchange lands in the :class:`MessageCostLedger`.
* ``split_site`` / ``merge_sites`` implement the [CTW16] hypergeometric
  rule and its reverse: splits and merges preserve exact uniformity of the
  reservoir sample and are deterministic under a fixed seed.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.distributed import (
    FaultPlan,
    MessageCostLedger,
    Reshard,
    ShardedSampler,
    SiteCrash,
    StaleWindow,
)
from repro.distributed.faults import compile_fault_spec
from repro.exceptions import ConfigurationError
from repro.rng import ensure_generator
from repro.samplers import BernoulliSampler, ReservoirSampler

UNIVERSE = 64


def _reservoir_site(rng):
    return ReservoirSampler(8, seed=rng)


def _bernoulli_site(rng):
    return BernoulliSampler(0.4, seed=rng)


def _stream(n: int, seed: int = 0) -> list[int]:
    rng = np.random.default_rng(seed)
    return [int(value) for value in rng.integers(1, UNIVERSE + 1, size=n)]


# ----------------------------------------------------------------------
# Plan validation and serialisation
# ----------------------------------------------------------------------
class TestFaultPlanValidation:
    def test_event_field_validation(self):
        with pytest.raises(ConfigurationError, match="loss model"):
            SiteCrash(site=0, round=5, loss="explode")
        with pytest.raises(ConfigurationError, match="round must be >= 1"):
            SiteCrash(site=0, round=0)
        with pytest.raises(ConfigurationError, match="recovery_rounds"):
            SiteCrash(site=0, round=5, recovery_rounds=0)
        with pytest.raises(ConfigurationError, match="duration"):
            StaleWindow(round=3, duration=0)
        with pytest.raises(ConfigurationError, match="needs an 'other'"):
            Reshard(round=5, op="merge", site=0)
        with pytest.raises(ConfigurationError, match="takes no 'other'"):
            Reshard(round=5, op="split", site=0, other=1)
        with pytest.raises(ConfigurationError, match="with itself"):
            Reshard(round=5, op="merge", site=2, other=2)
        with pytest.raises(ConfigurationError, match="unknown reshard op"):
            Reshard(round=5, op="rebalance", site=0)

    def test_overlapping_outages_per_site_are_rejected(self):
        with pytest.raises(ConfigurationError, match="still down"):
            FaultPlan(
                crashes=(
                    SiteCrash(site=1, round=10, recovery_rounds=20),
                    SiteCrash(site=1, round=15, recovery_rounds=5),
                )
            )
        with pytest.raises(ConfigurationError, match="never"):
            FaultPlan(
                crashes=(
                    SiteCrash(site=1, round=10),  # never recovers
                    SiteCrash(site=1, round=40, recovery_rounds=5),
                )
            )
        # Distinct sites may be down simultaneously.
        FaultPlan(
            crashes=(
                SiteCrash(site=0, round=10, recovery_rounds=20),
                SiteCrash(site=1, round=15, recovery_rounds=5),
            )
        )

    def test_reshards_inside_an_outage_are_rejected(self):
        with pytest.raises(ConfigurationError, match="inside the outage"):
            FaultPlan(
                crashes=(SiteCrash(site=0, round=10, recovery_rounds=10),),
                reshards=(Reshard(round=15, op="split", site=1),),
            )
        with pytest.raises(ConfigurationError, match="inside the outage"):
            FaultPlan(
                crashes=(SiteCrash(site=0, round=10),),  # permanent outage
                reshards=(Reshard(round=500, op="split", site=1),),
            )
        # Before the crash, or from the recovery boundary on, is fine.
        FaultPlan(
            crashes=(SiteCrash(site=0, round=10, recovery_rounds=10),),
            reshards=(
                Reshard(round=5, op="split", site=1),
                Reshard(round=21, op="merge", site=1, other=2),
            ),
        )

    def test_transition_fire_order_within_a_round(self):
        plan = FaultPlan(
            crashes=(
                SiteCrash(site=0, round=5, recovery_rounds=15),
                SiteCrash(site=1, round=20, recovery_rounds=5),
            ),
            reshards=(
                Reshard(round=30, op="merge", site=0, other=1),
                Reshard(round=30, op="split", site=2),
            ),
        )
        kinds = [(t.round, t.kind) for t in plan.transitions()]
        # Round 20: site 0's recovery fires before site 1's crash; round 30:
        # the split fires before the merge regardless of declaration order.
        assert kinds == [
            (5, "crash"),
            (20, "recover"),
            (20, "crash"),
            (25, "recover"),
            (30, "split"),
            (30, "merge"),
        ]

    def test_stale_window_coverage_and_truthiness(self):
        plan = FaultPlan(stale_windows=(StaleWindow(round=10, duration=5),))
        assert not plan.is_stale(9)
        assert plan.is_stale(10)
        assert plan.is_stale(14)
        assert not plan.is_stale(15)
        assert bool(plan)
        assert not bool(FaultPlan())

    def test_json_round_trip(self):
        plan = FaultPlan(
            crashes=(SiteCrash(site=1, round=7, recovery_rounds=3, loss="replay"),),
            stale_windows=(StaleWindow(round=12, duration=4),),
            reshards=(
                Reshard(round=30, op="split", site=0),
                Reshard(round=40, op="merge", site=0, other=1, strategy="hash"),
            ),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_payload_fields_are_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault plan fields"):
            FaultPlan.from_dict({"explosions": []})
        with pytest.raises(ConfigurationError, match="invalid crash spec"):
            FaultPlan.from_dict({"crashes": [{"site": 0, "round": 5, "speed": 3}]})


class TestCompileFaultSpec:
    def test_fractions_resolve_against_the_stream_length(self):
        plan = compile_fault_spec(
            {
                "crashes": [
                    {"site": 1, "round_fraction": 0.5, "recovery_fraction": 0.25}
                ],
                "stale_windows": [{"round_fraction": 0.1, "duration_fraction": 0.05}],
                "reshards": [{"round_fraction": 0.9, "op": "split", "site": 0}],
            },
            200,
        )
        assert plan.crashes[0].round == 100
        assert plan.crashes[0].recovery_rounds == 50
        assert plan.stale_windows[0] == StaleWindow(round=20, duration=10)
        assert plan.reshards[0].round == 180

    def test_tiny_fractions_clamp_to_one_round(self):
        plan = compile_fault_spec(
            {"stale_windows": [{"round_fraction": 0.001, "duration_fraction": 0.001}]},
            100,
        )
        assert plan.stale_windows[0] == StaleWindow(round=1, duration=1)

    def test_absolute_rounds_pass_through(self):
        plan = compile_fault_spec(
            {"crashes": [{"site": 0, "round": 17, "recovery_rounds": 4}]}, 100
        )
        assert plan.crashes[0].round == 17
        assert plan.crashes[0].recovery_rounds == 4

    def test_spec_validation_errors(self):
        with pytest.raises(ConfigurationError, match="pick one"):
            compile_fault_spec(
                {"crashes": [{"site": 0, "round": 5, "round_fraction": 0.5}]}, 100
            )
        with pytest.raises(ConfigurationError, match="needs either"):
            compile_fault_spec({"crashes": [{"site": 0}]}, 100)
        with pytest.raises(ConfigurationError, match="must lie in"):
            compile_fault_spec(
                {"crashes": [{"site": 0, "round_fraction": 1.5}]}, 100
            )
        with pytest.raises(ConfigurationError, match="needs a 'site'"):
            compile_fault_spec({"crashes": [{"round": 5}]}, 100)
        with pytest.raises(ConfigurationError, match="needs an 'op'"):
            compile_fault_spec({"reshards": [{"round": 5, "site": 0}]}, 100)
        with pytest.raises(ConfigurationError, match="unknown faults spec fields"):
            compile_fault_spec({"meteors": []}, 100)
        with pytest.raises(ConfigurationError, match="unknown fields in faults spec"):
            compile_fault_spec({"crashes": [{"site": 0, "round": 5, "bogus": 1}]}, 100)
        with pytest.raises(ConfigurationError, match="must be a list"):
            compile_fault_spec({"crashes": {"site": 0}}, 100)
        with pytest.raises(ConfigurationError, match="must be a mapping"):
            compile_fault_spec([], 100)


# ----------------------------------------------------------------------
# Crash and recovery semantics
# ----------------------------------------------------------------------
class TestCrashSemantics:
    """Round-robin routing over two sites makes the per-site timeline exact:
    site 1 receives every even round.  A crash at round 10 recovering at
    round 20 therefore wipes site 1's four pre-crash rounds (2,4,6,8) and
    subjects its five outage rounds (10..18) to the loss model."""

    def _deploy(self, loss: str) -> ShardedSampler:
        plan = FaultPlan(
            crashes=(SiteCrash(site=1, round=10, recovery_rounds=10, loss=loss),)
        )
        return ShardedSampler(
            2, _reservoir_site, strategy="round_robin", seed=3, fault_plan=plan
        )

    def test_drop_loses_outage_traffic_permanently(self):
        sharded = self._deploy("drop")
        sharded.extend(_stream(30), updates=False)
        report = sharded.degradation_report()
        assert sharded.site_counts == (15, 6)  # wiped 4, dropped 5, kept 6
        assert report["total_rounds"] == 30
        assert report["survivor_rounds"] == 21
        assert report["dropped_rounds"] == 5
        assert report["pending_replay"] == 0
        assert report["lost_rounds"] == 9  # 4 wiped + 5 dropped
        assert report["coverage"] == pytest.approx(21 / 30)
        assert report["live_sites"] == 2

    def test_replay_buffers_and_flushes_at_recovery(self):
        sharded = self._deploy("replay")
        data = _stream(30)
        for element in data[:15]:  # stop mid-outage
            sharded.process(element)
        assert sharded.down_sites == (1,)
        mid = sharded.degradation_report()
        assert mid["pending_replay"] == 3  # rounds 10, 12, 14 buffered
        assert mid["dropped_rounds"] == 0
        sharded.extend(data[15:], updates=False)
        assert sharded.down_sites == ()
        report = sharded.degradation_report()
        assert sharded.site_counts == (15, 11)  # 5 replayed + 6 post-recovery
        assert report["pending_replay"] == 0
        assert report["dropped_rounds"] == 0
        assert report["lost_rounds"] == 4  # only the wiped pre-crash state
        assert report["coverage"] == pytest.approx(26 / 30)

    def test_crash_wipes_the_site_state(self):
        sharded = self._deploy("drop")
        data = _stream(30)
        for element in data[:9]:
            sharded.process(element)
        assert len(sharded.site_sample(1)) == 4
        sharded.process(data[9])  # round 10: the crash fires first
        assert sharded.site_sample(1) == []
        assert sharded.down_sites == (1,)

    def test_down_site_updates_are_not_accepted(self):
        sharded = self._deploy("drop")
        data = _stream(30)
        for element in data[:9]:
            sharded.process(element)
        update = sharded.process(data[9])  # round 10 routes to the down site
        assert update.accepted is False
        assert update.round_index == 10

    def test_permanent_outage_degrades_the_merged_view(self):
        plan = FaultPlan(crashes=(SiteCrash(site=0, round=8),))
        sharded = ShardedSampler(
            2, _reservoir_site, strategy="round_robin", seed=3, fault_plan=plan
        )
        sharded.extend(_stream(40), updates=False)
        assert sharded.down_sites == (0,)
        report = sharded.degradation_report()
        assert report["live_sites"] == 1
        assert 0 < report["coverage"] < 1
        merged = report["merged"]
        assert merged["family"] == "reservoir"
        assert merged["rounds"] == report["survivor_rounds"]
        # The survivors' merged sample is still served.
        assert set(sharded.sample) <= set(_stream(40))

    def test_all_sites_down_serves_an_empty_sample(self):
        plan = FaultPlan(
            crashes=(SiteCrash(site=0, round=5), SiteCrash(site=1, round=5))
        )
        sharded = ShardedSampler(
            2, _reservoir_site, strategy="round_robin", seed=3, fault_plan=plan
        )
        sharded.extend(_stream(10), updates=False)
        assert sharded.sample == ()
        with pytest.raises(ConfigurationError, match="every site is down"):
            sharded.merged_sampler()

    def test_reset_rewinds_the_fault_timeline(self):
        sharded = self._deploy("drop")
        sharded.extend(_stream(30), updates=False)
        assert sharded.degradation_report()["dropped_rounds"] == 5
        sharded.reset()
        assert sharded.down_sites == ()
        assert sharded.rounds_processed == 0
        assert sharded.ledger.total_messages == 0
        sharded.extend(_stream(30, seed=1), updates=False)
        # The plan replays from round 1 after a reset.
        assert sharded.degradation_report()["dropped_rounds"] == 5


class TestChunkingIndependence:
    """Transitions fire before their round's element on both ingestion
    paths, so any chunking of the stream produces the identical faulted
    deployment under deterministic routing and chunk-identical kernels."""

    PLAN = FaultPlan(
        crashes=(SiteCrash(site=1, round=40, recovery_rounds=25, loss="replay"),),
        stale_windows=(StaleWindow(round=70, duration=20),),
        reshards=(
            Reshard(round=100, op="split", site=0),
            Reshard(round=130, op="merge", site=0, other=2),
        ),
    )

    def _ingest(self, chunks: list[int]) -> ShardedSampler:
        sharded = ShardedSampler(
            3, _bernoulli_site, strategy="hash", seed=11, fault_plan=self.PLAN
        )
        data = _stream(150)
        position = 0
        for size in chunks:
            sharded.extend(data[position : position + size], updates=False)
            position += size
        assert position == 150
        return sharded

    def test_chunked_equals_per_element(self):
        whole = self._ingest([150])
        ragged = self._ingest([13] * 11 + [7])
        single = self._ingest([1] * 150)
        for other in (ragged, single):
            assert other.site_counts == whole.site_counts
            assert other.num_sites == whole.num_sites
            assert tuple(other.sample) == tuple(whole.sample)
            assert other.degradation_report() == whole.degradation_report()

    def test_faulted_runs_are_bit_reproducible(self):
        one, two = self._ingest([150]), self._ingest([150])
        assert tuple(one.sample) == tuple(two.sample)
        assert one.ledger.to_dict() == two.ledger.to_dict()


# ----------------------------------------------------------------------
# Memoisation and stale windows
# ----------------------------------------------------------------------
class TestMergedViewMemoisation:
    def test_repeated_reads_cost_one_merge(self):
        sharded = ShardedSampler(3, _reservoir_site, strategy="hash", seed=2)
        sharded.extend(_stream(60), updates=False)
        first = sharded.merged_sampler()
        for _ in range(5):
            assert sharded.merged_sampler() is first
        assert sharded.ledger.events("merge") == 1
        assert sharded.ledger.messages("merge") == 3

    def test_ingest_invalidates_the_cache(self):
        sharded = ShardedSampler(3, _reservoir_site, strategy="hash", seed=2)
        sharded.extend(_stream(60), updates=False)
        version = sharded.version
        sharded.merged_sampler()
        sharded.process(7)
        assert sharded.version > version
        sharded.merged_sampler()
        assert sharded.ledger.events("merge") == 2

    def test_reshard_and_crash_invalidate_the_cache(self):
        sharded = ShardedSampler(3, _reservoir_site, strategy="hash", seed=2)
        sharded.extend(_stream(60), updates=False)
        sharded.merged_sampler()
        sharded.split_site(0)
        sharded.merged_sampler()
        assert sharded.ledger.events("merge") == 2

    def test_exposure_observing_sites_bypass_the_cache(self):
        """Defense wrappers advance serving state on every read, so their
        merged view must be rebuilt per read (PR 7 semantics preserved)."""
        from repro.defenses import SketchSwitchingSampler

        def site(rng):
            return SketchSwitchingSampler(
                lambda r: BernoulliSampler(0.3, seed=r), copies=2, seed=rng
            )

        sharded = ShardedSampler(2, site, strategy="hash", seed=4)
        sharded.extend(_stream(40), updates=False)
        sharded.merged_sampler()
        sharded.merged_sampler()
        assert sharded.ledger.events("merge") == 2


class TestStaleWindows:
    PLAN = FaultPlan(stale_windows=(StaleWindow(round=21, duration=20),))

    def _deploy(self) -> ShardedSampler:
        return ShardedSampler(
            2, _reservoir_site, strategy="hash", seed=5, fault_plan=self.PLAN
        )

    def test_window_serves_the_cached_view_across_ingests(self):
        sharded = self._deploy()
        sharded.extend(_stream(20), updates=False)
        before = sharded.merged_sampler()
        sharded.extend(_stream(10, seed=9), updates=False)  # rounds 21..30: stale
        assert sharded.merged_sampler() is before
        assert sharded.ledger.events("merge") == 1, "no messages spent while stale"

    def test_fresh_merge_after_the_window_closes(self):
        sharded = self._deploy()
        sharded.extend(_stream(20), updates=False)
        stale_view = sharded.merged_sampler()
        sharded.extend(_stream(25, seed=9), updates=False)  # round 45 > window end
        fresh = sharded.merged_sampler()
        assert fresh is not stale_view
        assert fresh.rounds_processed == 45
        assert sharded.ledger.events("merge") == 2


# ----------------------------------------------------------------------
# Elastic resharding
# ----------------------------------------------------------------------
class TestReservoirSplitKernel:
    def test_split_partitions_the_stored_sample(self):
        reservoir = ReservoirSampler(8, seed=1)
        reservoir.extend(range(100), updates=False)
        before = Counter(reservoir.sample)
        sibling = reservoir.split(rng=ensure_generator(2))
        assert Counter(reservoir.sample) + Counter(sibling.sample) == before
        assert reservoir.rounds_processed == 50
        assert sibling.rounds_processed == 50
        assert sibling.capacity == 8

    def test_split_is_deterministic_under_a_fixed_generator(self):
        def run():
            reservoir = ReservoirSampler(8, seed=1)
            reservoir.extend(range(100), updates=False)
            sibling = reservoir.split(rng=ensure_generator(2))
            return list(reservoir.sample), list(sibling.sample)

        assert run() == run()

    def test_split_rejects_ablation_evictions(self):
        fifo = ReservoirSampler(4, seed=0, eviction="fifo")
        with pytest.raises(ConfigurationError, match="not splittable"):
            fifo.split()

    def test_split_is_statistically_uniform(self):
        """Marginal membership pin: with capacity 4 over 20 rounds, a stored
        element moves to the sibling with probability take/4 where take ~
        Hypergeometric(10, 10, 4), so any fixed element lands in either
        half's sample with probability (4/20) * (1/2) = 0.1."""
        parent_hits: Counter = Counter()
        sibling_hits: Counter = Counter()
        trials = 600
        for trial in range(trials):
            reservoir = ReservoirSampler(4, seed=trial)
            reservoir.extend(range(20), updates=False)
            sibling = reservoir.split(rng=ensure_generator(10_000 + trial))
            parent_hits.update(reservoir.sample)
            sibling_hits.update(sibling.sample)
        expected = trials * (4 / 20) * 0.5
        for element in range(20):
            for hits in (parent_hits, sibling_hits):
                assert 0.3 * expected < hits[element] < 2.5 * expected, (
                    element,
                    hits[element],
                    expected,
                )

    def test_split_then_merge_stays_uniform(self):
        """The [CTW16] merge of a split pair is again a uniform sample."""
        hits: Counter = Counter()
        trials = 400
        for trial in range(trials):
            reservoir = ReservoirSampler(4, seed=trial)
            reservoir.extend(range(30), updates=False)
            sibling = reservoir.split(rng=ensure_generator(5_000 + trial))
            merged = reservoir.merge([sibling], rng=ensure_generator(9_000 + trial))
            assert merged.rounds_processed == 30
            assert merged.sample_size == 4
            hits.update(merged.sample)
        expected = trials * 4 / 30
        for element in range(30):
            assert 0.3 * expected < hits[element] < 2.5 * expected, (
                element,
                hits[element],
                expected,
            )


class TestShardedResharding:
    def test_split_site_grows_the_topology(self):
        sharded = ShardedSampler(2, _reservoir_site, strategy="hash", seed=6)
        sharded.extend(_stream(80), updates=False)
        rounds_before = sharded.site_counts[0]
        new_site = sharded.split_site(0)
        assert new_site == 2
        assert sharded.num_sites == 3
        assert sharded.site_counts[0] + sharded.site_counts[2] == rounds_before
        assert sharded.rounds_processed == 80
        sharded.extend(_stream(40, seed=1), updates=False)
        assert sharded.rounds_processed == 120
        assert sum(sharded.site_counts) == 120
        assert sharded.site_counts[2] > 0, "routing reaches the new site"

    def test_merge_sites_shrinks_the_topology(self):
        sharded = ShardedSampler(3, _reservoir_site, strategy="hash", seed=6)
        sharded.extend(_stream(90), updates=False)
        counts = sharded.site_counts
        kept = sharded.merge_sites(2, 1)
        assert kept == 1
        assert sharded.num_sites == 2
        assert sharded.site_counts == (counts[0], counts[1] + counts[2])
        assert sharded.rounds_processed == 90

    def test_resharding_validation(self):
        sharded = ShardedSampler(2, _reservoir_site, strategy="hash", seed=6)
        sharded.extend(_stream(20), updates=False)
        with pytest.raises(ConfigurationError):
            sharded.split_site(5)
        with pytest.raises(ConfigurationError):
            sharded.merge_sites(0, 0)
        with pytest.raises(ConfigurationError):
            sharded.merge_sites(0, 7)
        sharded.merge_sites(0, 1)
        with pytest.raises(ConfigurationError):  # only one site remains
            sharded.merge_sites(0, 1)

    def test_strategy_rebind_on_split(self):
        sharded = ShardedSampler(
            2,
            _reservoir_site,
            strategy={"kind": "skewed", "hot_fraction": 0.9},
            seed=6,
        )
        sharded.extend(_stream(50), updates=False)
        sharded.split_site(0, strategy="round_robin")
        sharded.extend(_stream(30, seed=2), updates=False)
        assert min(sharded.site_counts) > 0, "rebound routing spreads the load"

    def test_split_site_ledger_and_determinism(self):
        def run():
            plan = FaultPlan(reshards=(Reshard(round=41, op="split", site=0),))
            sharded = ShardedSampler(
                2, _reservoir_site, strategy="hash", seed=8, fault_plan=plan
            )
            sharded.extend(_stream(80), updates=False)
            return sharded

        one, two = run(), run()
        assert tuple(one.sample) == tuple(two.sample)
        assert one.site_counts == two.site_counts
        assert one.ledger.events("reshard_split") == 1
        assert one.ledger.messages("reshard_split") == 1


# ----------------------------------------------------------------------
# Message-cost ledger
# ----------------------------------------------------------------------
class TestMessageCostLedger:
    def test_record_and_totals(self):
        ledger = MessageCostLedger()
        ledger.record("merge", messages=4, payload=32)
        ledger.record("merge", messages=4, payload=30)
        ledger.record("crash")
        assert ledger.events("merge") == 2
        assert ledger.messages("merge") == 8
        assert ledger.payload("merge") == 62
        assert ledger.events("crash") == 1
        assert ledger.total_messages == 8
        assert ledger.total_payload == 62
        assert ledger.to_dict() == {
            "crash": {"events": 1, "messages": 0, "payload": 0},
            "merge": {"events": 2, "messages": 8, "payload": 62},
        }
        ledger.reset()
        assert ledger.total_messages == 0

    def test_negative_values_are_rejected(self):
        with pytest.raises(ConfigurationError):
            MessageCostLedger().record("merge", messages=-1)

    def test_deployment_ledger_shapes(self):
        plan = FaultPlan(
            crashes=(SiteCrash(site=1, round=20, recovery_rounds=10, loss="replay"),)
        )
        sharded = ShardedSampler(
            2, _reservoir_site, strategy="round_robin", seed=3, fault_plan=plan
        )
        sharded.extend(_stream(40), updates=False)
        ledger = sharded.ledger
        assert ledger.events("crash") == 1
        assert ledger.messages("crash") == 0
        assert ledger.events("recovery") == 1
        assert ledger.messages("recovery") == 1
        assert ledger.payload("recovery") == 5  # rounds 20..28 even, buffered
        sharded.merged_sampler()
        assert ledger.messages("merge") == 2  # one per live site
        assert ledger.payload("merge") <= 2 * 8  # K * capacity


# ----------------------------------------------------------------------
# Scenario integration
# ----------------------------------------------------------------------
class TestScenarioIntegration:
    def _config(self, **overrides):
        from repro.scenarios import ScenarioConfig

        base = dict(
            name="faulted",
            stream_length=120,
            universe_size=32,
            trials=1,
            samplers={"reservoir-8": {"family": "reservoir", "capacity": 8}},
            adversary={
                "family": "greedy_density",
                "target": {"kind": "prefix", "bound_fraction": 0.5},
            },
            set_system={"kind": "prefix"},
            sharding={"sites": 3, "strategy": "hash"},
            faults={
                "crashes": [
                    {
                        "site": 1,
                        "round_fraction": 0.4,
                        "recovery_fraction": 0.2,
                        "loss": "replay",
                    }
                ]
            },
        )
        base.update(overrides)
        return ScenarioConfig(**base)

    def test_faults_require_a_sharding_block(self):
        with pytest.raises(ConfigurationError, match="requires a 'sharding'"):
            self._config(sharding=None)

    def test_crash_sites_are_bounds_checked(self):
        with pytest.raises(ConfigurationError):
            self._config(
                faults={"crashes": [{"site": 9, "round_fraction": 0.4}]}
            )

    def test_faulted_config_runs_bit_reproducibly(self):
        from repro.scenarios import run_config

        config = self._config()
        first = run_config(config)
        second = run_config(config)
        assert first.to_dict(include_timing=False) == second.to_dict(
            include_timing=False
        )

    def test_fraction_spec_survives_stream_rescaling(self):
        config = self._config()
        smaller = config.replace(stream_length=60)
        assert smaller.faults["crashes"][0]["round_fraction"] == 0.4
        compiled = compile_fault_spec(smaller.faults, smaller.stream_length)
        assert compiled.crashes[0].round == 24

    def test_registered_fault_scenarios_declare_faults(self):
        from repro.scenarios import SCENARIOS

        for name in (
            "recovery_window_strike",
            "hotspot_split_flood",
            "stale_coordinator_probe",
        ):
            config = SCENARIOS[name].base_config
            assert config.faults, f"{name} lost its faults block"
            assert config.sharding is not None
            compile_fault_spec(config.faults, config.stream_length)
