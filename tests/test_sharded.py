"""Tests for the sharded-sampler substrate: routing, ingestion, merged views,
and the scenario-level ``sharding`` block.
"""

from __future__ import annotations

from collections import Counter
from typing import ClassVar

import numpy as np
import pytest

from repro.adversary import UniformAdversary, run_adaptive_game, run_continuous_game
from repro.distributed import (
    HashSharding,
    RandomSharding,
    RoundRobinSharding,
    ShardedSampler,
    SkewedSharding,
    build_sharding_strategy,
)
from repro.exceptions import ConfigurationError
from repro.samplers import BernoulliSampler, ReservoirSampler, SlidingWindowSampler
from repro.scenarios import ScenarioConfig, run_config
from repro.setsystems import PrefixSystem


def reservoir_site(rng: np.random.Generator) -> ReservoirSampler:
    return ReservoirSampler(16, seed=rng)


def bernoulli_site(rng: np.random.Generator) -> BernoulliSampler:
    return BernoulliSampler(0.2, seed=rng)


def window_site(rng: np.random.Generator) -> SlidingWindowSampler:
    return SlidingWindowSampler(8, 64, seed=rng)


class TestStrategies:
    @pytest.mark.parametrize(
        "strategy",
        [RandomSharding(), HashSharding(), RoundRobinSharding(), SkewedSharding()],
    )
    def test_assignments_stay_in_range(self, strategy, rng):
        elements = list(range(200))
        batch = strategy.assign(elements, 1, 5, rng)
        assert len(batch) == 200
        assert all(0 <= int(site) < 5 for site in batch)
        one = strategy.assign_one(17, 201, 5, rng)
        assert 0 <= one < 5

    def test_round_robin_is_deterministic_in_the_round_index(self, rng):
        strategy = RoundRobinSharding()
        batch = strategy.assign(list(range(10)), 1, 3, rng)
        assert list(batch) == [0, 1, 2, 0, 1, 2, 0, 1, 2, 0]
        assert strategy.assign_one("anything", 4, 3, rng) == 0

    def test_hash_routing_is_sticky_and_batch_independent(self, rng):
        strategy = HashSharding()
        elements = [7, "key", 7, (1, 2), "key"]
        batch = list(strategy.assign(elements, 1, 4, rng))
        assert batch[0] == batch[2] and batch[1] == batch[4]
        singles = [
            strategy.assign_one(element, index + 1, 4, rng)
            for index, element in enumerate(elements)
        ]
        assert singles == batch

    def test_skewed_routing_concentrates_on_the_hot_site(self, rng):
        strategy = SkewedSharding(hot_fraction=0.9, hot_site=2)
        batch = strategy.assign(list(range(4_000)), 1, 4, rng)
        counts = Counter(int(site) for site in batch)
        assert counts[2] > 3_200
        assert set(counts) <= {0, 1, 2, 3}

    def test_skewed_parameters_are_validated(self):
        with pytest.raises(ConfigurationError):
            SkewedSharding(hot_fraction=1.5)
        with pytest.raises(ConfigurationError):
            SkewedSharding(hot_site=-1)

    def test_build_from_name_spec_and_instance(self):
        assert isinstance(build_sharding_strategy(None), RandomSharding)
        assert isinstance(build_sharding_strategy("hash"), HashSharding)
        skewed = build_sharding_strategy({"kind": "skewed", "hot_fraction": 0.7})
        assert isinstance(skewed, SkewedSharding) and skewed.hot_fraction == 0.7
        instance = RoundRobinSharding()
        assert build_sharding_strategy(instance) is instance

    def test_build_accepts_name_as_kind_alias(self):
        """Strategies advertise themselves via their ``name`` attribute, so a
        spec keyed by ``name`` must build too (regression)."""
        assert isinstance(build_sharding_strategy({"name": "hash"}), HashSharding)
        skewed = build_sharding_strategy({"name": "skewed", "hot_fraction": 0.7})
        assert isinstance(skewed, SkewedSharding) and skewed.hot_fraction == 0.7
        # Redundant but consistent naming is fine; a conflict is not.
        assert isinstance(
            build_sharding_strategy({"kind": "hash", "name": "hash"}), HashSharding
        )
        with pytest.raises(ConfigurationError, match="pick one"):
            build_sharding_strategy({"kind": "hash", "name": "skewed"})

    def test_name_alias_spec_reaches_parameter_validation(self):
        """{"name": "skewed", "hot_fraction": 1.5} must fail on the *fraction*,
        not on a confusing missing-'kind' complaint (regression)."""
        with pytest.raises(ConfigurationError, match="hot fraction"):
            build_sharding_strategy({"name": "skewed", "hot_fraction": 1.5})

    def test_build_rejects_unknowns(self):
        with pytest.raises(ConfigurationError, match="unknown sharding strategy"):
            build_sharding_strategy("mystery")
        # A spec naming no strategy must list what would be valid.
        with pytest.raises(ConfigurationError, match="random") as excinfo:
            build_sharding_strategy({"hot_fraction": 0.5})
        message = str(excinfo.value)
        for strategy in ("hash", "round_robin", "skewed"):
            assert strategy in message
        with pytest.raises(ConfigurationError, match="invalid parameters"):
            build_sharding_strategy({"kind": "skewed", "nonsense": 1})
        with pytest.raises(ConfigurationError):
            build_sharding_strategy(3.14)


class TestAssignEquivalence:
    """Property pins: vectorised ``assign`` vs per-element ``assign_one``.

    Deterministic strategies must match exactly.  ``RandomSharding``'s batch
    draw consumes the bit stream exactly like scalar draws, so it matches
    bit for bit under a shared seed; ``SkewedSharding`` interleaves two draw
    streams on the per-element path (a different, equally distributed
    realisation), so it is pinned distributionally plus exactly at the
    deterministic extremes.
    """

    ELEMENTS: ClassVar[list[int]] = [int(x) for x in np.random.default_rng(0).integers(1, 1000, size=3000)]

    @pytest.mark.parametrize("start_round", [1, 17, 1002])
    @pytest.mark.parametrize("num_sites", [1, 3, 8])
    def test_deterministic_strategies_match_exactly(self, start_round, num_sites, rng):
        for strategy in (HashSharding(), RoundRobinSharding()):
            batch = strategy.assign(self.ELEMENTS, start_round, num_sites, rng)
            singles = [
                strategy.assign_one(element, start_round + offset, num_sites, rng)
                for offset, element in enumerate(self.ELEMENTS)
            ]
            assert list(batch) == singles, strategy.name

    @pytest.mark.parametrize("num_sites", [2, 5])
    def test_random_strategy_matches_bit_for_bit_under_shared_seed(self, num_sites):
        strategy = RandomSharding()
        batch = strategy.assign(self.ELEMENTS, 1, num_sites, np.random.default_rng(9))
        per_element_rng = np.random.default_rng(9)
        singles = [
            strategy.assign_one(element, offset + 1, num_sites, per_element_rng)
            for offset, element in enumerate(self.ELEMENTS)
        ]
        assert list(batch) == singles

    def test_skewed_extremes_are_deterministic_on_both_paths(self):
        all_hot = SkewedSharding(hot_fraction=1.0, hot_site=1)
        batch = all_hot.assign(self.ELEMENTS, 1, 4, np.random.default_rng(1))
        assert set(batch) == {1}
        assert all(
            all_hot.assign_one(e, i + 1, 4, np.random.default_rng(i)) == 1
            for i, e in enumerate(self.ELEMENTS[:50])
        )
        never_hot = SkewedSharding(hot_fraction=0.0, hot_site=1)
        batch = never_hot.assign(self.ELEMENTS, 1, 4, np.random.default_rng(2))
        assert 1 not in set(int(s) for s in batch)
        singles = {
            never_hot.assign_one(e, i + 1, 4, np.random.default_rng(i))
            for i, e in enumerate(self.ELEMENTS[:200])
        }
        assert 1 not in singles and singles <= {0, 2, 3}

    @pytest.mark.parametrize("hot_fraction", [0.3, 0.8])
    def test_skewed_hot_fraction_distribution_matches_per_element(self, hot_fraction):
        """Both paths must realise the declared hot fraction (and spread the
        remainder uniformly) within Monte-Carlo tolerance."""
        strategy = SkewedSharding(hot_fraction=hot_fraction, hot_site=2)
        n, sites = len(self.ELEMENTS), 4
        batch = strategy.assign(self.ELEMENTS, 1, sites, np.random.default_rng(3))
        per_element_rng = np.random.default_rng(4)
        singles = [
            strategy.assign_one(element, offset + 1, sites, per_element_rng)
            for offset, element in enumerate(self.ELEMENTS)
        ]
        for counts in (Counter(int(s) for s in batch), Counter(singles)):
            assert abs(counts[2] / n - hot_fraction) < 0.04
            cold = (1.0 - hot_fraction) / (sites - 1)
            for site in (0, 1, 3):
                assert abs(counts[site] / n - cold) < 0.04

    def test_skewed_hot_site_clamped_on_both_paths(self):
        """hot_site >= num_sites clamps to the last site instead of routing
        out of range."""
        strategy = SkewedSharding(hot_fraction=1.0, hot_site=7)
        batch = strategy.assign(self.ELEMENTS[:100], 1, 3, np.random.default_rng(5))
        assert set(int(s) for s in batch) == {2}
        assert strategy.assign_one(42, 1, 3, np.random.default_rng(5)) == 2
        partial = SkewedSharding(hot_fraction=0.5, hot_site=7)
        batch = partial.assign(self.ELEMENTS, 1, 3, np.random.default_rng(6))
        assert set(int(s) for s in batch) <= {0, 1, 2}
        singles = {
            partial.assign_one(e, i + 1, 3, np.random.default_rng(i))
            for i, e in enumerate(self.ELEMENTS[:200])
        }
        assert singles <= {0, 1, 2}


class TestShardedSampler:
    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            ShardedSampler(0, reservoir_site, seed=0)
        with pytest.raises(ConfigurationError, match="Mergeable"):
            # Weighted reservoirs have no merge rule.
            from repro.samplers import WeightedReservoirSampler

            ShardedSampler(2, lambda rng: WeightedReservoirSampler(4, seed=rng), seed=0)
        with pytest.raises(ConfigurationError, match="not a StreamSampler"):
            ShardedSampler(2, lambda rng: object(), seed=0)

    def test_every_element_lands_on_exactly_one_site(self):
        sharded = ShardedSampler(4, reservoir_site, strategy="random", seed=1)
        sharded.extend(list(range(500)), updates=False)
        assert sum(sharded.site_counts) == 500
        assert sharded.rounds_processed == 500

    def test_merged_sample_has_reservoir_size(self):
        sharded = ShardedSampler(4, reservoir_site, strategy="random", seed=1)
        sharded.extend(list(range(5)), updates=False)
        assert len(sharded.sample) == 5  # below capacity: everything survives
        sharded.extend(list(range(5, 500)), updates=False)
        assert len(sharded.sample) == 16
        union = Counter()
        for site in range(4):
            union.update(sharded.site_sample(site))
        assert not Counter(sharded.sample) - union

    def test_empty_deployment_has_empty_sample(self):
        sharded = ShardedSampler(3, reservoir_site, seed=0)
        assert sharded.sample == ()
        assert sharded.load_imbalance() == 0.0

    def test_update_batch_reports_global_round_indices(self):
        sharded = ShardedSampler(3, bernoulli_site, strategy="round_robin", seed=2)
        for element in range(1, 11):
            update = sharded.process(element)
            assert update.round_index == element
        batch = sharded.extend(list(range(11, 61)), updates=True)
        assert list(batch.round_indices) == list(range(11, 61))
        assert len(batch) == 50

    def test_extend_accept_flags_match_per_element_for_deterministic_routing(self):
        """Hash routing + bit-identical site kernels => identical games."""
        data = [int(x) for x in np.random.default_rng(3).integers(1, 300, size=400)]
        chunked = ShardedSampler(3, bernoulli_site, strategy="hash", seed=4)
        sequential = ShardedSampler(3, bernoulli_site, strategy="hash", seed=4)
        batch = chunked.extend(data, updates=True)
        singles = [sequential.process(element) for element in data]
        assert [view.accepted for view in batch] == [u.accepted for u in singles]
        assert chunked.site_counts == sequential.site_counts
        assert list(chunked.sample) == list(sequential.sample)

    def test_reservoir_evictions_are_scattered_to_global_positions(self):
        sharded = ShardedSampler(2, reservoir_site, strategy="round_robin", seed=5)
        sharded.extend(list(range(200)), updates=False)
        batch = sharded.extend(list(range(200, 400)), updates=True)
        assert batch.eviction_count > 0
        for offset, evicted in batch.evictions.items():
            assert bool(batch.accepted[offset])
            assert evicted not in batch.elements[offset:]

    def test_memory_footprint_sums_sites(self):
        sharded = ShardedSampler(4, reservoir_site, seed=6)
        sharded.extend(list(range(300)), updates=False)
        assert sharded.memory_footprint() == sum(
            len(sharded.site_sample(site)) for site in range(4)
        )

    def test_reset_forgets_everything(self):
        sharded = ShardedSampler(4, reservoir_site, seed=7)
        sharded.extend(list(range(100)), updates=False)
        sharded.reset()
        assert sharded.rounds_processed == 0
        assert sharded.site_counts == (0, 0, 0, 0)
        assert sharded.sample == ()

    def test_same_seed_reproduces_the_deployment(self):
        def play():
            sharded = ShardedSampler(4, reservoir_site, strategy="random", seed=11)
            sharded.extend(list(range(400)), updates=False)
            return list(sharded.sample), sharded.site_counts

        assert play() == play()

    def test_sliding_window_shards_merge_by_priority(self):
        sharded = ShardedSampler(3, window_site, strategy="random", seed=8)
        sharded.extend(list(range(400)), updates=False)
        merged = sharded.merged_sampler()
        live_priorities = sorted(
            priority
            for site in sharded.sites
            for _arrival, priority, _element in site._candidates
        )
        merged_priorities = sorted(
            priority for _arrival, priority, _element in merged._current_sample_entries()
        )
        assert merged_priorities == live_priorities[:8]
        assert len(sharded.sample) == 8

    def test_site_sample_validates_index(self):
        sharded = ShardedSampler(2, reservoir_site, seed=0)
        with pytest.raises(ConfigurationError):
            sharded.site_sample(2)


class TestShardedGames:
    def test_adaptive_game_runs_and_reproduces(self):
        def play():
            return run_adaptive_game(
                ShardedSampler(4, reservoir_site, strategy="random", seed=1),
                UniformAdversary(128, seed=2),
                600,
                set_system=PrefixSystem(128),
                epsilon=0.5,
                keep_updates=False,
            )

        first, second = play(), play()
        assert first.error == second.error
        assert first.sample == second.sample
        assert first.sampler_name == "sharded-reservoir"

    def test_continuous_game_checkpoints(self):
        result = run_continuous_game(
            ShardedSampler(4, reservoir_site, strategy="skewed", seed=1),
            UniformAdversary(128, seed=2),
            600,
            set_system=PrefixSystem(128),
            checkpoints=range(100, 601, 100),
            keep_updates=False,
        )
        assert len(result.checkpoint_errors) == 6
        assert all(0.0 <= error <= 1.0 for error in result.checkpoint_errors)


class TestScenarioShardingBlock:
    def test_sharding_block_is_validated(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(name="x", sharding={"strategy": "random"})  # no sites
        with pytest.raises(ConfigurationError):
            ScenarioConfig(name="x", sharding={"sites": 0})
        with pytest.raises(ConfigurationError, match="unknown fields"):
            ScenarioConfig(name="x", sharding={"sites": 2, "bogus": 1})
        with pytest.raises(ConfigurationError):
            ScenarioConfig(name="x", sharding={"sites": 2, "strategy": 3})

    def test_sharding_block_round_trips_through_json(self):
        config = ScenarioConfig(
            name="x", sharding={"sites": 4, "strategy": {"kind": "skewed", "hot_fraction": 0.9}}
        )
        assert ScenarioConfig.from_json(config.to_json()) == config

    def test_non_mergeable_families_cannot_be_sharded(self):
        config = ScenarioConfig(
            name="bad",
            stream_length=64,
            universe_size=32,
            trials=1,
            samplers={"weighted": {"family": "weighted_reservoir", "capacity": 8}},
            sharding={"sites": 2},
        )
        with pytest.raises(ConfigurationError, match="not mergeable"):
            run_config(config)

    def test_ad_hoc_sharded_scenario_runs(self):
        config = ScenarioConfig(
            name="ad_hoc_sharded",
            stream_length=128,
            universe_size=32,
            trials=2,
            samplers={"reservoir-8": {"family": "reservoir", "capacity": 8}},
            adversary={
                "family": "greedy_density",
                "target": {"kind": "prefix", "bound_fraction": 0.5},
            },
            set_system={"kind": "prefix"},
            sharding={"sites": 3, "strategy": "round_robin"},
        )
        result = run_config(config)
        assert result.cells[0]["mean_sample_size"] == 8.0
        assert 0.0 <= result.peak_discrepancy <= 1.0

    def test_sharded_run_differs_from_unsharded_but_both_reproduce(self):
        base = dict(
            name="compare",
            stream_length=128,
            universe_size=32,
            trials=2,
            samplers={"reservoir-8": {"family": "reservoir", "capacity": 8}},
            adversary={
                "family": "greedy_density",
                "target": {"kind": "prefix", "bound_fraction": 0.5},
            },
            set_system={"kind": "prefix"},
        )
        unsharded = run_config(ScenarioConfig(**base))
        sharded = run_config(ScenarioConfig(**base, sharding={"sites": 3}))
        assert unsharded.to_dict(include_timing=False) != sharded.to_dict(
            include_timing=False
        )
        again = run_config(ScenarioConfig(**base, sharding={"sites": 3}))
        assert sharded.to_dict(include_timing=False) == again.to_dict(include_timing=False)
