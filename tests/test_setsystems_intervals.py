"""Tests for prefix, interval and continuous-prefix set systems."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, EmptySampleError
from repro.setsystems import (
    ContinuousPrefixSystem,
    Interval,
    IntervalSystem,
    Prefix,
    PrefixSystem,
)


class TestPrefixRange:
    def test_contains_below_and_at_bound(self):
        prefix = Prefix(5)
        assert 1 in prefix
        assert 5 in prefix

    def test_excludes_above_bound(self):
        assert 6 not in Prefix(5)


class TestIntervalRange:
    def test_contains_endpoints_and_interior(self):
        interval = Interval(2, 7)
        assert 2 in interval and 7 in interval and 4 in interval

    def test_excludes_outside(self):
        interval = Interval(2, 7)
        assert 1 not in interval and 8 not in interval

    def test_invalid_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            Interval(5, 2)


class TestPrefixSystemStructure:
    def test_cardinality_equals_universe_size(self):
        assert PrefixSystem(17).cardinality() == 17

    def test_vc_dimension_is_one(self):
        assert PrefixSystem(100).vc_dimension() == 1

    def test_range_enumeration(self):
        bounds = [prefix.bound for prefix in PrefixSystem(4).ranges()]
        assert bounds == [1, 2, 3, 4]

    def test_invalid_universe_rejected(self):
        with pytest.raises(ConfigurationError):
            PrefixSystem(0)

    def test_contains_element(self):
        system = PrefixSystem(10)
        assert system.contains_element(1)
        assert system.contains_element(10)
        assert not system.contains_element(11)
        assert not system.contains_element(0)


class TestPrefixDiscrepancy:
    def test_identical_sequences_have_zero_error(self):
        system = PrefixSystem(10)
        data = [1, 3, 3, 7, 9]
        assert system.max_discrepancy(data, data).error == pytest.approx(0.0)

    def test_sample_of_smallest_elements_has_large_error(self):
        system = PrefixSystem(100)
        stream = list(range(1, 101))
        sample = [1, 2, 3, 4, 5]
        result = system.max_discrepancy(stream, sample)
        # d(sample) = 1 at prefix [1,5]; d(stream) = 0.05.
        assert result.error == pytest.approx(0.95)
        assert result.witness.bound == 5

    def test_uniform_subsample_has_small_error(self):
        system = PrefixSystem(100)
        stream = list(range(1, 101))
        sample = list(range(5, 101, 10))
        assert system.max_discrepancy(stream, sample).error <= 0.06

    def test_empty_sample_rejected(self):
        with pytest.raises(EmptySampleError):
            PrefixSystem(10).max_discrepancy([1, 2], [])

    def test_matches_brute_force_enumeration(self):
        system = PrefixSystem(12)
        stream = [1, 2, 2, 5, 7, 7, 7, 11, 12]
        sample = [2, 7, 12]
        fast = system.max_discrepancy(stream, sample).error
        brute = max(
            abs(system.density(range_, stream) - system.density(range_, sample))
            for range_ in system.ranges()
        )
        assert fast == pytest.approx(brute)

    def test_huge_integer_elements_handled_exactly(self):
        # Values far above 2^53 must not be merged by float conversion.
        system = PrefixSystem(2**200)
        base = 2**150
        stream = [base + i for i in range(100)]
        sample = stream[:5]
        assert system.max_discrepancy(stream, sample).error == pytest.approx(0.95)

    def test_is_epsilon_approximation_thresholds(self):
        system = PrefixSystem(100)
        stream = list(range(1, 101))
        sample = list(range(2, 101, 4))
        error = system.max_discrepancy(stream, sample).error
        assert system.is_epsilon_approximation(stream, sample, error + 0.01)
        assert not system.is_epsilon_approximation(stream, sample, error - 0.01)


class TestIntervalSystemStructure:
    def test_cardinality_formula(self):
        assert IntervalSystem(5).cardinality() == 15

    def test_vc_dimension_is_two(self):
        assert IntervalSystem(10).vc_dimension() == 2

    def test_vc_dimension_degenerate_universe(self):
        assert IntervalSystem(1).vc_dimension() == 1

    def test_range_enumeration_count(self):
        assert sum(1 for _ in IntervalSystem(6).ranges()) == 21


class TestIntervalDiscrepancy:
    def test_identical_sequences_have_zero_error(self):
        system = IntervalSystem(10)
        data = [2, 4, 4, 9]
        assert system.max_discrepancy(data, data).error == pytest.approx(0.0)

    def test_matches_brute_force_enumeration(self):
        system = IntervalSystem(10)
        stream = [1, 1, 3, 4, 6, 6, 8, 10]
        sample = [1, 4, 6]
        fast = system.max_discrepancy(stream, sample).error
        brute = max(
            abs(system.density(range_, stream) - system.density(range_, sample))
            for range_ in system.ranges()
        )
        assert fast == pytest.approx(brute)

    def test_middle_gap_detected(self):
        # The sample misses the middle cluster entirely; the worst interval is
        # the middle cluster itself, which prefixes alone under-estimate.
        system = IntervalSystem(30)
        stream = [1] * 10 + [15] * 10 + [30] * 10
        sample = [1] * 5 + [30] * 5
        result = system.max_discrepancy(stream, sample)
        assert result.error == pytest.approx(1.0 / 3.0)

    def test_witness_is_a_valid_range(self):
        system = IntervalSystem(30)
        stream = [1] * 10 + [15] * 10 + [30] * 10
        sample = [1] * 5 + [30] * 5
        witness = system.max_discrepancy(stream, sample).witness
        assert 15 in witness
        assert 1 not in witness or 30 not in witness

    def test_interval_error_at_least_prefix_error(self):
        intervals = IntervalSystem(50)
        prefixes = PrefixSystem(50)
        stream = [1, 5, 10, 20, 20, 35, 40, 50, 50, 50]
        sample = [5, 20, 50]
        assert (
            intervals.max_discrepancy(stream, sample).error
            >= prefixes.max_discrepancy(stream, sample).error - 1e-12
        )


class TestContinuousPrefixSystem:
    def test_cardinality_is_undefined(self):
        with pytest.raises(ConfigurationError):
            ContinuousPrefixSystem().cardinality()

    def test_log_cardinality_is_infinite(self):
        assert ContinuousPrefixSystem().log_cardinality() == float("inf")

    def test_range_enumeration_is_refused(self):
        with pytest.raises(ConfigurationError):
            list(ContinuousPrefixSystem().ranges())

    def test_discrepancy_on_real_data(self):
        system = ContinuousPrefixSystem()
        stream = [i / 100 for i in range(100)]
        sample = [i / 100 for i in range(0, 100, 10)]
        assert system.max_discrepancy(stream, sample).error <= 0.1

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            ContinuousPrefixSystem(1.0, 0.0)

    def test_contains_element(self):
        system = ContinuousPrefixSystem(0.0, 1.0)
        assert system.contains_element(0.5)
        assert not system.contains_element(1.5)
