"""Tests for the ``repro-experiments`` command-line interface.

Covers exit codes, text/Markdown/JSON rendering, the ``run-all`` output
directory, the unknown-identifier error paths, and the ``scenario``
subcommands — all through :func:`repro.cli.main` with an in-process argv,
exactly as the console script drives it.
"""

from __future__ import annotations

import json
from typing import Any, ClassVar

import pytest

from repro.cli import main
from repro.experiments import EXPERIMENTS
from repro.scenarios import SCENARIOS

#: Keep every experiment invocation tiny: the CLI is under test, not the
#: experiments themselves.
TINY = ["--trials", "1", "--stream-length", "100", "--universe-size", "64"]
TINY_SCENARIO = ["--trials", "1", "--stream-length", "96", "--universe-size", "32"]


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert out == list(EXPERIMENTS)


class TestRun:
    def test_run_e3_text(self, capsys):
        assert main(["run", "E3", *TINY]) == 0
        out = capsys.readouterr().out
        assert "E3" in out
        assert "|" not in out.splitlines()[0]  # text table, not Markdown

    def test_run_markdown(self, capsys):
        assert main(["run", "E3", *TINY, "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("### E3")
        assert "| --- |" in out or "|---|" in out

    def test_run_is_case_insensitive(self, capsys):
        assert main(["run", "e3", *TINY]) == 0
        assert "E3" in capsys.readouterr().out

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["run", "E99", *TINY]) == 2
        captured = capsys.readouterr()
        assert "unknown experiment" in captured.err
        assert captured.out == ""

    def test_invalid_config_exits_2(self, capsys):
        assert main(["run", "E3", "--trials", "0"]) == 2
        assert "trials" in capsys.readouterr().err


class TestRunAll:
    def test_run_all_writes_output_dir(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert main(["run-all", *TINY, "--output-dir", str(out_dir)]) == 0
        written = sorted(p.name for p in out_dir.glob("*.md"))
        assert written == sorted(f"{identifier}.md" for identifier in EXPERIMENTS)
        # Files are Markdown (run-all renders Markdown whenever it writes).
        text = (out_dir / "E3.md").read_text(encoding="utf-8")
        assert text.startswith("### E3")
        # And the CLI reported each file it wrote.
        out = capsys.readouterr().out
        assert out.count("wrote ") == len(EXPERIMENTS)


class TestScenarioList:
    def test_lists_every_scenario(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert f"{name}:" in out

    def test_json_listing(self, capsys):
        assert main(["scenario", "list", "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert {entry["name"] for entry in listing} == set(SCENARIOS)
        for entry in listing:
            assert "budget_grid" in entry


class TestScenarioRun:
    def test_run_text_table(self, capsys):
        assert main(["scenario", "run", "prefix_flood", *TINY_SCENARIO]) == 0
        out = capsys.readouterr().out
        assert "scenario prefix_flood" in out
        assert "peak discrepancy" in out

    def test_run_markdown(self, capsys):
        assert main(["scenario", "run", "prefix_flood", *TINY_SCENARIO, "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("### scenario: prefix_flood")

    def test_run_json_round_trips(self, capsys):
        assert main(["scenario", "run", "prefix_flood", *TINY_SCENARIO, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["scenario"] == "prefix_flood"
        assert data["config"]["stream_length"] == 96
        assert data["cells"]

    def test_budget_flag_reaches_config(self, capsys):
        assert main(
            ["scenario", "run", "prefix_flood", *TINY_SCENARIO, "--budget", "0.5", "--json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["config"]["attack_budget"] == 0.5

    def test_run_sharded_scenario(self, capsys):
        """The acceptance path: a sharded distributed scenario end to end."""
        assert main(["scenario", "run", "shard_hotspot", *TINY_SCENARIO]) == 0
        out = capsys.readouterr().out
        assert "scenario shard_hotspot" in out
        assert "sharded-reservoir" in out

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["scenario", "run", "not_a_scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_invalid_budget_exits_2(self, capsys):
        assert main(
            ["scenario", "run", "prefix_flood", *TINY_SCENARIO, "--budget", "2.0"]
        ) == 2
        assert "attack budget" in capsys.readouterr().err


class TestScenarioSweep:
    def test_sweep_table(self, capsys):
        assert main(
            [
                "scenario", "sweep", "reservoir_eviction", *TINY_SCENARIO,
                "--budgets", "0.5,1.0", "--seeds", "1,2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "sweep: reservoir_eviction" in out
        # 2 budgets x 2 seeds x 1 sampler = 4 data rows (after title+header+rule).
        assert len([line for line in out.splitlines() if line.strip()]) == 3 + 4

    def test_sweep_json(self, capsys):
        assert main(
            [
                "scenario", "sweep", "reservoir_eviction", *TINY_SCENARIO,
                "--budgets", "0.5,1.0", "--json",
            ]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert [entry["config"]["attack_budget"] for entry in data] == [0.5, 1.0]

    def test_sweep_default_budgets_use_registry_grid(self, capsys):
        assert main(
            ["scenario", "sweep", "static_baseline", *TINY_SCENARIO, "--json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        budgets = [entry["config"]["attack_budget"] for entry in data]
        assert budgets == list(SCENARIOS["static_baseline"].budget_grid)


class TestScenarioConfigFile:
    """``scenario run/sweep --config FILE``: the file-driven path and every
    error mode — malformed JSON, unknown fields/families, conflicting
    sources — must exit 2 with a message, never a traceback."""

    GOOD: ClassVar[dict[str, Any]] = {
        "name": "custom",
        "stream_length": 96,
        "universe_size": 32,
        "trials": 1,
        "campaign": {
            "mode": "interleaved",
            "stride": 4,
            "members": [
                {"adversary": {"family": "uniform"}},
                {"adversary": {"family": "zipf"}},
            ],
        },
    }

    def _write(self, tmp_path, payload) -> str:
        path = tmp_path / "scenario.json"
        path.write_text(
            payload if isinstance(payload, str) else json.dumps(payload),
            encoding="utf-8",
        )
        return str(path)

    def test_run_config_file(self, tmp_path, capsys):
        assert main(["scenario", "run", "--config", self._write(tmp_path, self.GOOD), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["scenario"] == "custom"
        assert data["cells"][0]["adversary"] == "campaign:uniform+zipf"

    def test_run_config_file_applies_overrides(self, tmp_path, capsys):
        path = self._write(tmp_path, self.GOOD)
        assert main(["scenario", "run", "--config", path, "--budget", "0.5",
                     "--stream-length", "64", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["config"]["attack_budget"] == 0.5
        assert data["config"]["stream_length"] == 64

    def test_sweep_config_file(self, tmp_path, capsys):
        path = self._write(tmp_path, self.GOOD)
        assert main(["scenario", "sweep", "--config", path, "--budgets", "0.5,1.0", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert [entry["config"]["attack_budget"] for entry in data] == [0.5, 1.0]

    @pytest.mark.parametrize("verb", ["run", "sweep"])
    def test_malformed_json_exits_2(self, verb, tmp_path, capsys):
        path = self._write(tmp_path, "{not json!")
        assert main(["scenario", verb, "--config", path]) == 2
        captured = capsys.readouterr()
        assert "invalid scenario JSON" in captured.err
        assert "Traceback" not in captured.err

    @pytest.mark.parametrize("verb", ["run", "sweep"])
    def test_missing_file_exits_2(self, verb, tmp_path, capsys):
        assert main(["scenario", verb, "--config", str(tmp_path / "nope.json")]) == 2
        captured = capsys.readouterr()
        assert "cannot read scenario config" in captured.err
        assert "Traceback" not in captured.err

    def test_unknown_adversary_family_exits_2(self, tmp_path, capsys):
        payload = {"name": "bad", "stream_length": 64, "universe_size": 32,
                   "trials": 1, "adversary": {"family": "does_not_exist"}}
        assert main(["scenario", "run", "--config", self._write(tmp_path, payload)]) == 2
        captured = capsys.readouterr()
        assert "unknown adversary family" in captured.err
        assert "Traceback" not in captured.err

    def test_unknown_config_field_exits_2(self, tmp_path, capsys):
        payload = dict(self.GOOD, surprise=1)
        assert main(["scenario", "run", "--config", self._write(tmp_path, payload)]) == 2
        assert "unknown scenario config fields" in capsys.readouterr().err

    def test_non_object_json_exits_2(self, tmp_path, capsys):
        path = self._write(tmp_path, "[1, 2, 3]")
        assert main(["scenario", "run", "--config", path]) == 2
        assert "must encode an object" in capsys.readouterr().err

    @pytest.mark.parametrize("verb", ["run", "sweep"])
    def test_name_and_config_conflict_exits_2(self, verb, tmp_path, capsys):
        path = self._write(tmp_path, self.GOOD)
        assert main(["scenario", verb, "prefix_flood", "--config", path]) == 2
        captured = capsys.readouterr()
        assert "not both" in captured.err
        assert captured.out == ""

    @pytest.mark.parametrize("verb", ["run", "sweep"])
    def test_neither_name_nor_config_exits_2(self, verb, capsys):
        assert main(["scenario", verb]) == 2
        assert "scenario list" in capsys.readouterr().err

    def test_campaign_validation_error_names_the_member(self, tmp_path, capsys):
        payload = {
            "name": "bad_campaign", "stream_length": 96, "universe_size": 32,
            "trials": 1,
            "campaign": {
                "mode": "phased",
                "members": [
                    {"label": "noise",
                     "adversary": {"family": "uniform", "decision_period": 4}},
                    {"start": 0.5, "adversary": {"family": "zipf"}},
                ],
            },
        }
        assert main(["scenario", "run", "--config", self._write(tmp_path, payload)]) == 2
        err = capsys.readouterr().err
        assert "campaign member #0 (noise)" in err
        assert "Traceback" not in err


class TestScenarioFuzz:
    def test_fuzz_summary(self, capsys):
        assert main(["scenario", "fuzz", "--count", "3", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "fuzzed 3 configs (3 distinct)" in out
        assert "all invariants held" in out
        assert "bit_reproducibility" in out

    def test_fuzz_json(self, capsys):
        assert main(["scenario", "fuzz", "--count", "2", "--seed", "9", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert data["examples"] == 2
        assert set(data["invariants"]) == {
            "bit_reproducibility", "budget_monotonicity",
            "chunking_independence", "sharded_agreement",
        }

    def test_fuzz_zero_count_exits_2(self, capsys):
        assert main(["scenario", "fuzz", "--count", "0"]) == 2
        assert "--count" in capsys.readouterr().err

    def test_fuzz_failure_exits_1(self, capsys, monkeypatch):
        from repro.scenarios import fuzz as fuzz_module

        def broken(config):
            return [
                fuzz_module.InvariantResult("bit_reproducibility", "failed", "boom")
            ]

        monkeypatch.setattr(fuzz_module, "check_invariants", broken)
        assert main(["scenario", "fuzz", "--count", "1"]) == 1
        out = capsys.readouterr().out
        assert "FAILED bit_reproducibility" in out


class TestParserErrors:
    def test_no_command_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2

    def test_scenario_without_subcommand_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["scenario"])
        assert excinfo.value.code == 2


class TestBench:
    """The bench subcommand's plumbing, with the suite itself stubbed out
    (the real smoke suite runs in CI; unit tests only verify wiring)."""

    @pytest.fixture
    def stub_suite(self, monkeypatch):
        import repro.bench as bench

        report = {
            "version": "0.0-test",
            "mode": "smoke",
            "python": "3",
            "numpy": "2",
            "results": [
                {"op": "extend/bernoulli/batched", "n": 10, "seconds": 0.001,
                 "throughput": 10_000.0, "speedup": 5.0},
                {"op": "extend/bernoulli/sequential", "n": 10, "seconds": 0.005,
                 "throughput": 2_000.0, "speedup": None},
            ],
        }
        monkeypatch.setattr(bench, "run_suite", lambda mode: dict(report, mode=mode))
        return report

    def test_bench_writes_report(self, stub_suite, tmp_path, capsys):
        output = tmp_path / "BENCH_PR3.json"
        assert main(["bench", "--mode", "smoke", "--output", str(output)]) == 0
        data = json.loads(output.read_text())
        assert data["mode"] == "smoke"
        assert {record["op"] for record in data["results"]} == {
            "extend/bernoulli/batched", "extend/bernoulli/sequential"
        }
        assert all(
            set(record) == {"op", "n", "seconds", "throughput", "speedup"}
            for record in data["results"]
        )
        assert str(output) in capsys.readouterr().out

    def test_bench_markdown_table(self, stub_suite, tmp_path, capsys):
        output = tmp_path / "bench.json"
        assert main(["bench", "--output", str(output), "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "| op | n | seconds |" in out
        assert "5.0x" in out

    def test_bench_check_accepts_a_matching_baseline(self, stub_suite, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(stub_suite))
        output = tmp_path / "fresh.json"
        assert main(
            ["bench", "--mode", "smoke", "--output", str(output),
             "--check", "--baseline", str(baseline)]
        ) == 0
        assert "bench check: ok" in capsys.readouterr().out

    def test_bench_check_fails_on_missing_operation(self, stub_suite, tmp_path, capsys):
        baseline = dict(stub_suite)
        baseline["results"] = baseline["results"] + [
            {"op": "extend/vanished/batched", "n": 10, "seconds": 0.001,
             "throughput": 10_000.0, "speedup": 2.0},
        ]
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(baseline))
        output = tmp_path / "fresh.json"
        assert main(
            ["bench", "--mode", "smoke", "--output", str(output),
             "--check", "--baseline", str(baseline_path)]
        ) == 1
        err = capsys.readouterr().err
        assert "extend/vanished/batched" in err
        # The fresh report is still written before the check verdict.
        assert output.exists()

    def test_bench_check_without_output_never_clobbers_the_baseline(
        self, stub_suite, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        from repro.bench import BENCH_FILENAME

        baseline = tmp_path / BENCH_FILENAME
        baseline.write_text(json.dumps(stub_suite))
        before = baseline.read_text()
        assert main(["bench", "--mode", "smoke", "--check"]) == 0
        assert baseline.read_text() == before, "committed baseline was overwritten"
        fresh = tmp_path / baseline.name.replace(".json", ".fresh.json")
        assert fresh.exists()
        assert json.loads(fresh.read_text())["mode"] == "smoke"

    def test_bench_check_missing_baseline_exits_2(self, stub_suite, tmp_path, capsys):
        assert main(
            ["bench", "--mode", "smoke", "--output", str(tmp_path / "fresh.json"),
             "--check", "--baseline", str(tmp_path / "nope.json")]
        ) == 2
        assert "not found" in capsys.readouterr().err

    def test_bench_check_rejects_schema_drift(self, stub_suite):
        """check_report itself: record-level schema drift is named."""
        from repro.bench import check_report

        drifted = dict(stub_suite)
        drifted["results"] = [
            {"op": "extend/bernoulli/batched", "n": 10, "seconds": 0.001,
             "throughput": 10_000.0},  # speedup missing
            {"op": "extend/bernoulli/sequential", "n": 10, "seconds": 0.005,
             "throughput": 2_000.0, "speedup": None, "surprise": 1},
        ]
        problems = check_report(drifted, stub_suite)
        assert any("missing ['speedup']" in problem for problem in problems)
        assert any("surprise" in problem for problem in problems)
        assert check_report(stub_suite, stub_suite) == []

    def test_real_suite_shape(self, monkeypatch, tmp_path):
        """One genuinely executed (tiny) benchmark proves the record schema."""
        import repro.bench as bench

        monkeypatch.setitem(bench._MODES, "smoke", (2_000, 500))
        report = bench.run_suite("smoke")
        operations = [record["op"] for record in report["results"]]
        assert "game/adaptive/chunked" in operations
        assert "game/continuous/per-element" in operations
        assert "sharded/ingest/chunked" in operations
        assert "sharded/ingest/per-element" in operations
        assert "service/ingest/no-readers" in operations
        assert "service/ingest/4-readers" in operations
        assert "service/query/p50" in operations
        assert "service/query/p99" in operations
        # Every sampler appears with a sequential baseline and a batched run.
        for name in ("bernoulli", "reservoir", "weighted-reservoir", "priority",
                     "sliding-window", "misra-gries", "kll", "greenwald-khanna",
                     "merge-reduce"):
            assert f"extend/{name}/sequential" in operations
            assert f"extend/{name}/batched" in operations
        for record in report["results"]:
            assert record["seconds"] > 0
            assert record["throughput"] > 0
        path = bench.write_report(report, tmp_path / "r.json")
        assert json.loads(path.read_text())["results"]


class TestBenchHelpers:
    """The extracted read-baseline-then-write helpers behind bench --check."""

    def test_load_baseline_missing_raises_configuration_error(self, tmp_path):
        from repro.bench import load_baseline
        from repro.exceptions import ConfigurationError

        missing = tmp_path / "nope.json"
        with pytest.raises(ConfigurationError, match="not found"):
            load_baseline(missing)

    def test_load_baseline_rejects_invalid_json(self, tmp_path):
        from repro.bench import load_baseline
        from repro.exceptions import ConfigurationError

        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_baseline(corrupt)

    def test_load_baseline_rejects_non_object_json(self, tmp_path):
        from repro.bench import load_baseline
        from repro.exceptions import ConfigurationError

        listy = tmp_path / "list.json"
        listy.write_text("[1, 2, 3]")
        with pytest.raises(ConfigurationError, match="not a JSON object"):
            load_baseline(listy)

    def test_load_baseline_defaults_to_the_canonical_name(self, tmp_path, monkeypatch):
        from repro.bench import BENCH_FILENAME, load_baseline

        monkeypatch.chdir(tmp_path)
        (tmp_path / BENCH_FILENAME).write_text(json.dumps({"results": []}))
        path, baseline = load_baseline()
        assert path.name == BENCH_FILENAME
        assert baseline == {"results": []}

    def test_resolve_output_contract(self):
        from pathlib import Path

        from repro.bench import BENCH_FILENAME, resolve_output

        explicit = Path("somewhere/else.json")
        assert resolve_output(explicit, checking=True) == explicit
        assert resolve_output(explicit, checking=False) == explicit
        assert resolve_output(None, checking=False) == Path(BENCH_FILENAME)
        fresh = resolve_output(None, checking=True)
        assert fresh.name.endswith(".fresh.json")
        assert fresh.name != BENCH_FILENAME, "--check must never clobber the baseline"


class TestServiceCLI:
    """The serve/query verbs over the canonical sharded deployment."""

    def test_query_quantile_text(self, capsys):
        assert main(["query", "--n", "2000", "--capacity", "64"]) == 0
        out = capsys.readouterr().out
        assert "quantile" in out and "2000 rounds" in out

    def test_query_json_is_deterministic(self, capsys):
        argv = ["query", "--n", "2000", "--capacity", "64", "--kind",
                "heavy-hitters", "--json", "--seed", "5"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        payload = json.loads(first)
        assert payload["kind"] == "heavy_hitters"
        assert payload["rounds"] == 2000
        assert payload["sample_size"] > 0

    def test_query_discrepancy_uses_exact_counts(self, capsys):
        assert main(["query", "--n", "2000", "--capacity", "64", "--kind",
                     "discrepancy", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert 0.0 <= payload["result"] <= 1.0

    def test_serve_without_clients_reports_zero_queries(self, capsys):
        assert main(["serve", "--n", "2000", "--capacity", "64", "--clients",
                     "0", "--adversarial-clients", "0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rounds"] == 2000
        assert payload["queries"] == 0

    def test_serve_with_clients_emits_latency_quantiles(self, capsys):
        assert main(["serve", "--n", "4000", "--capacity", "64", "--clients",
                     "2", "--adversarial-clients", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rounds"] == 4000
        assert payload["queries"] > 0
        assert payload["query_p50"] is not None
        assert payload["query_p99"] >= payload["query_p50"]

    @pytest.mark.parametrize(
        "argv",
        [
            ["serve", "--n", "0"],
            ["serve", "--n", "100", "--chunk-size", "0"],
            ["serve", "--n", "100", "--clients", "-1"],
            ["query", "--n", "100", "--staleness", "-1"],
            ["query", "--n", "100", "--sites", "0"],
        ],
    )
    def test_invalid_service_knobs_exit_2(self, argv, capsys):
        assert main(argv) == 2
        assert "error:" in capsys.readouterr().err
