"""Unit tests for the always-on query service layer (single-threaded parts).

The snapshot store's staleness bound, its cache-bypass contract for
exposure-tracked deployments and fault-plan stale windows, the deterministic
ServedSampler wrapper, the pure query kernels, and the ScenarioConfig
``service`` block.  The threaded QueryService is covered separately in
``test_service_concurrency.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.defenses import SketchSwitchingSampler
from repro.distributed import FaultPlan, ShardedSampler, StaleWindow
from repro.exceptions import ConfigurationError, EmptySampleError
from repro.samplers import BernoulliSampler, ReservoirSampler
from repro.scenarios import SamplerFromSpec, ScenarioConfig
from repro.service import (
    ServedSampler,
    Snapshot,
    SnapshotStore,
    heavy_hitters,
    prefix_discrepancy,
    quantile,
)


def _reservoir_site(rng):
    return ReservoirSampler(16, seed=rng)


class TestSnapshot:
    def test_snapshot_is_immutable_and_sized(self):
        snapshot = Snapshot(version=3, round_index=10, sample=(1, 2, 3))
        assert snapshot.size == 3
        with pytest.raises(AttributeError):
            snapshot.version = 4


class TestSnapshotStore:
    def test_negative_staleness_rejected(self):
        with pytest.raises(ConfigurationError, match="staleness_rounds"):
            SnapshotStore(BernoulliSampler(1.0, seed=0), staleness_rounds=-1)

    def test_zero_staleness_always_reflects_every_round(self):
        sampler = BernoulliSampler(1.0, seed=0)
        store = SnapshotStore(sampler, staleness_rounds=0)
        sampler.extend([1, 2, 3], updates=False)
        assert store.read().round_index == 3
        sampler.process(4)
        snapshot = store.read()
        assert snapshot.round_index == 4
        assert snapshot.sample == (1, 2, 3, 4)

    def test_staleness_bound_serves_held_snapshot(self):
        sampler = BernoulliSampler(1.0, seed=0)
        store = SnapshotStore(sampler, staleness_rounds=5)
        sampler.extend([1, 2, 3], updates=False)
        first = store.read()
        sampler.extend([4, 5], updates=False)  # 2 rounds behind: within bound
        assert store.read() is first
        sampler.extend([6, 7, 8, 9], updates=False)  # 6 behind: beyond bound
        second = store.read()
        assert second.round_index == 9
        stats = store.stats()
        assert stats["refreshes"] == 2
        assert stats["reads"] == 3
        assert stats["max_staleness_served"] == 2

    def test_fresh_read_bypasses_the_bound(self):
        sampler = BernoulliSampler(1.0, seed=0)
        store = SnapshotStore(sampler, staleness_rounds=100)
        sampler.extend([1, 2], updates=False)
        store.read()
        sampler.process(3)
        assert store.read().round_index == 2  # held, within bound
        assert store.read(fresh=True).round_index == 3

    def test_invalidate_forces_refresh(self):
        sampler = BernoulliSampler(1.0, seed=0)
        store = SnapshotStore(sampler, staleness_rounds=100)
        sampler.extend([1, 2], updates=False)
        first = store.read()
        store.invalidate()
        assert store.held is None
        assert store.read() is not first

    def test_snapshot_version_tracks_sharded_version_counter(self):
        sharded = ShardedSampler(2, _reservoir_site, strategy="hash", seed=1)
        store = SnapshotStore(sharded)
        sharded.extend([1, 2, 3, 4], updates=False)
        assert store.read().version == sharded.version

    def test_exposure_tracked_sampler_is_never_cached(self):
        """Every read of a switching defense must fire observe_exposure —
        a cached snapshot would silently absorb the query-flood attack."""
        defended = SketchSwitchingSampler(
            lambda rng: BernoulliSampler(0.5, seed=rng), copies=2, seed=3
        )
        store = SnapshotStore(defended, staleness_rounds=1_000_000)
        defended.extend(range(1, 20), updates=False)
        assert store.must_bypass()
        store.read()
        exposed_after_one = defended._exposed_round
        assert exposed_after_one is not None
        before = store.stats()["refreshes"]
        store.read()
        assert store.stats()["refreshes"] == before + 1, (
            "exposure-tracked reads must reach the sampler, not the cache"
        )

    def test_sharded_site_exposure_also_bypasses(self):
        def defended_site(rng):
            return SketchSwitchingSampler(
                lambda r: BernoulliSampler(0.5, seed=r), copies=2, seed=rng
            )

        sharded = ShardedSampler(2, defended_site, strategy="hash", seed=1)
        store = SnapshotStore(sharded, staleness_rounds=1_000_000)
        sharded.extend(range(1, 10), updates=False)
        assert store.must_bypass()

    def test_stale_window_delegates_to_the_fault_plan(self):
        """During a coordinator stale window the *fault plan* decides what a
        read observes (the pre-window memoised view), not the service knob."""
        plan = FaultPlan(stale_windows=(StaleWindow(round=5, duration=100),))
        sharded = ShardedSampler(
            2, _reservoir_site, strategy="hash", seed=1, fault_plan=plan
        )
        store = SnapshotStore(sharded, staleness_rounds=0)
        sharded.extend([1, 2, 3, 4], updates=False)
        in_cache = tuple(sharded.sample)
        store.read()
        sharded.extend([5, 6, 7, 8], updates=False)  # now inside the window
        assert store.must_bypass()
        snapshot = store.read()
        # The fault layer serves its cached pre-window merge even though the
        # store refreshed: the service must not change what a read observes.
        assert snapshot.sample == in_cache
        assert tuple(sharded.sample) == in_cache

    def test_reset_clears_state_but_not_the_sampler(self):
        sampler = BernoulliSampler(1.0, seed=0)
        store = SnapshotStore(sampler, staleness_rounds=3)
        sampler.extend([1, 2], updates=False)
        store.read()
        store.reset()
        assert store.held is None
        assert store.stats() == {
            "reads": 0, "refreshes": 0, "max_staleness_served": 0,
        }
        assert sampler.rounds_processed == 2


class TestServedSampler:
    def test_knob_validation(self):
        inner = BernoulliSampler(1.0, seed=0)
        with pytest.raises(ConfigurationError, match="clients"):
            ServedSampler(inner, clients=-1)
        with pytest.raises(ConfigurationError, match="query_period"):
            ServedSampler(inner, query_period=0)
        with pytest.raises(ConfigurationError, match="staleness_rounds"):
            ServedSampler(inner, staleness_rounds=-1)

    def test_name_and_delegation(self):
        served = ServedSampler(BernoulliSampler(1.0, seed=0), clients=1)
        assert served.name == "served-bernoulli"
        served.extend([1, 2, 3], updates=False)
        assert served.rounds_processed == 3
        assert served.inner.rounds_processed == 3
        assert "service" in served.degradation_report()
        assert served.memory_footprint() >= served.inner.memory_footprint()

    def test_background_ticks_fire_every_period(self):
        served = ServedSampler(
            BernoulliSampler(1.0, seed=0), clients=3, query_period=8
        )
        served.extend(range(1, 33), updates=False)  # 32 rounds -> 4 ticks
        report = served.service_report()
        assert report["ticks"] == 4
        assert report["reads"] == 4 * 3

    def test_served_sample_lags_within_the_bound(self):
        served = ServedSampler(
            BernoulliSampler(1.0, seed=0), staleness_rounds=10, clients=0
        )
        served.extend([1, 2, 3], updates=False)
        assert served.sample == (1, 2, 3)
        served.extend([4, 5], updates=False)
        # Within the bound: the served view legitimately lags ingestion.
        assert served.sample == (1, 2, 3)
        assert tuple(served.inner.sample) == (1, 2, 3, 4, 5)

    def test_updates_path_matches_process_loop(self):
        stream = list(range(1, 65))
        one = ServedSampler(BernoulliSampler(0.4, seed=9), clients=2, query_period=16)
        batch = one.extend(stream, updates=True)
        two = ServedSampler(BernoulliSampler(0.4, seed=9), clients=2, query_period=16)
        for element in stream:
            two.process(element)
        assert tuple(one.inner.sample) == tuple(two.inner.sample)
        assert one.service_report() == two.service_report()
        assert batch is not None and len(batch.round_indices) == len(stream)

    def test_chunked_equals_per_element_for_chunk_identical_family(self):
        """The wrapper segments extend() at tick rounds, so chunking must not
        change the sample path even though background reads fire mid-batch."""
        rng = np.random.default_rng(2)
        stream = [int(v) for v in rng.integers(1, 100, size=200)]

        def final_state(chunk_size):
            served = ServedSampler(
                BernoulliSampler(0.3, seed=11),
                staleness_rounds=16,
                clients=2,
                query_period=32,
            )
            if chunk_size is None:
                for element in stream:
                    served.process(element)
            else:
                for start in range(0, len(stream), chunk_size):
                    served.extend(stream[start : start + chunk_size], updates=False)
            return tuple(served.inner.sample), served.service_report()

        per_element = final_state(None)
        assert final_state(37) == per_element
        assert final_state(200) == per_element

    def test_query_flood_drains_a_switching_defense_identically(self):
        """Exposure hooks fire at byte-identical rounds on both ingestion
        paths: the served defense switches copies at the same rounds."""
        rng = np.random.default_rng(5)
        stream = [int(v) for v in rng.integers(1, 50, size=128)]

        def final_state(chunked):
            served = ServedSampler(
                SketchSwitchingSampler(
                    lambda r: BernoulliSampler(0.4, seed=r), copies=4, seed=21
                ),
                clients=1,
                query_period=16,
            )
            if chunked:
                served.extend(stream, updates=False)
            else:
                for element in stream:
                    served.process(element)
            inner = served.inner
            return inner._active, tuple(inner.sample), served.service_report()

        assert final_state(True) == final_state(False)

    def test_reset_restores_round_zero(self):
        served = ServedSampler(BernoulliSampler(1.0, seed=0), clients=2)
        served.extend(range(1, 40), updates=False)
        served.reset()
        assert served.rounds_processed == 0
        assert served.service_report()["ticks"] == 0
        assert served.store.held is None


class TestQueryKernels:
    def test_quantile_basics(self):
        sample = (5, 1, 9, 3, 7)
        assert quantile(sample, 0.0) == 1
        assert quantile(sample, 0.5) == 5  # rank floor(0.5*5)=2 of (1,3,5,7,9)
        assert quantile(sample, 1.0) == 9

    def test_quantile_validation(self):
        with pytest.raises(ConfigurationError):
            quantile((1, 2), 1.5)
        with pytest.raises(EmptySampleError):
            quantile((), 0.5)

    def test_heavy_hitters_breaks_ties_by_element(self):
        sample = (3, 1, 3, 2, 1, 4)
        assert heavy_hitters(sample, k=3) == [(1, 2), (3, 2), (2, 1)]
        with pytest.raises(ConfigurationError):
            heavy_hitters(sample, k=0)

    def test_prefix_discrepancy_exact_small_case(self):
        # Stream: 1,1,2,4 (counts); sample holds only element 4.
        counts = np.array([0, 2, 1, 0, 1])
        # densities: stream cum = (0, .5, .75, .75, 1); sample cum = (0,0,0,0,1)
        assert prefix_discrepancy((4,), counts) == pytest.approx(0.75)
        # A perfectly proportional sample has discrepancy 0.
        assert prefix_discrepancy((1, 1, 2, 4), counts) == pytest.approx(0.0)

    def test_prefix_discrepancy_validation(self):
        with pytest.raises(EmptySampleError):
            prefix_discrepancy((), np.array([0, 1]))
        with pytest.raises(EmptySampleError):
            prefix_discrepancy((1,), np.array([0, 0]))


_BERNOULLI_GRID = {"bernoulli-0.5": {"family": "bernoulli", "probability": 0.5}}


class TestServiceConfigBlock:
    def test_defaults_are_filled_in(self):
        config = ScenarioConfig(
            name="svc", samplers=_BERNOULLI_GRID, service={"clients": 2},
        )
        assert config.service == {
            "staleness_rounds": 0, "clients": 2, "query_period": 32,
        }

    def test_unknown_service_field_rejected(self):
        with pytest.raises(ConfigurationError, match="service"):
            ScenarioConfig(
                name="svc", samplers=_BERNOULLI_GRID, service={"cadence": 3},
            )

    @pytest.mark.parametrize(
        "block",
        [
            {"staleness_rounds": -1},
            {"clients": -2},
            {"query_period": 0},
        ],
    )
    def test_invalid_service_values_rejected(self, block):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(name="svc", samplers=_BERNOULLI_GRID, service=block)

    def test_service_block_round_trips_through_json(self):
        config = ScenarioConfig(
            name="svc", samplers=_BERNOULLI_GRID,
            service={"staleness_rounds": 8, "clients": 3, "query_period": 16},
        )
        assert ScenarioConfig.from_json(config.to_json()) == config

    def test_builder_wraps_the_sampler_outermost(self):
        config = ScenarioConfig(
            name="svc", samplers=_BERNOULLI_GRID,
            defense={"kind": "sketch_switching", "copies": 2},
            service={"clients": 1, "query_period": 8},
        )
        factory = SamplerFromSpec(
            config.samplers["bernoulli-0.5"],
            defense=config.defense,
            service=config.service,
        )
        sampler = factory(np.random.default_rng(0))
        assert isinstance(sampler, ServedSampler)
        assert isinstance(sampler.inner, SketchSwitchingSampler)
        assert sampler.service_report()["query_period"] == 8

    def test_no_service_block_builds_the_bare_sampler(self):
        factory = SamplerFromSpec(_BERNOULLI_GRID["bernoulli-0.5"])
        assert not isinstance(factory(np.random.default_rng(0)), ServedSampler)
