"""Tests for multi-adversary campaigns (CampaignAdversary and the config layer).

The pins, in the order the scenario engine relies on them:

* **schedule arithmetic** — phase fractions resolve to 1-based rounds with
  loud errors when a stream is too short for the requested cuts;
* **segmentation** — a served segment never straddles an ownership boundary
  (phase starts, interleaved slot edges), so chunked runners stay correct;
* **local round indices** — every member sees its own contiguous stream
  ``1, 2, 3, ...`` in both element requests and forwarded update records
  (columnar batches included);
* **composition is conservative** — a single-member campaign plays exactly
  like the bare member, end to end through ``run_config``;
* **config validation** — the ``campaign`` block is checked at construction
  time (mutual exclusion with ``adversary``, per-mode member fields), and a
  spec-level ``decision_period`` on an oblivious member names the offending
  member and the valid cadenced families.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary import CampaignAdversary, phase_start_rounds
from repro.adversary.base import Adversary, CadencedAdversary
from repro.exceptions import ConfigurationError
from repro.samplers.base import SampleUpdate, UpdateBatch
from repro.scenarios import ScenarioConfig, run_config
from repro.scenarios.builders import CADENCED_ADVERSARY_FAMILIES


class RecordingMember(Adversary):
    """Scripted member: echoes its tag, records every request and update."""

    uses_observed_sample = False

    def __init__(self, tag: str) -> None:
        self.name = tag
        self.tag = tag
        #: (local_round, count) per next_elements call.
        self.requests: list[tuple[int, int]] = []
        #: Local round indices of every forwarded update record.
        self.update_rounds: list[int] = []
        #: Lengths of forwarded columnar batches.
        self.batch_sizes: list[int] = []

    def next_element(self, round_index, observed_sample):
        self.requests.append((round_index, 1))
        return self.tag

    def next_elements(self, round_index, count, observed_sample):
        self.requests.append((round_index, count))
        return [self.tag] * count

    def observe_update(self, update: SampleUpdate) -> None:
        self.update_rounds.append(update.round_index)

    def observe_update_batch(self, updates) -> None:
        if isinstance(updates, UpdateBatch):
            self.batch_sizes.append(len(updates))
            self.update_rounds.extend(int(r) for r in updates.round_indices)
        else:
            for update in updates:
                self.observe_update(update)

    def reset(self) -> None:
        self.requests.clear()
        self.update_rounds.clear()
        self.batch_sizes.clear()


def _drain(campaign: CampaignAdversary, stream_length: int, ask: int) -> list:
    """Play the whole stream requesting segments of up to ``ask`` rounds."""
    elements = []
    round_index = 1
    while round_index <= stream_length:
        want = min(ask, stream_length - round_index + 1)
        segment = campaign.next_elements(round_index, want, None)
        assert segment, "a segment must contain at least one element"
        elements.extend(segment)
        round_index += len(segment)
    return elements


def _batch(first_round: int, elements: list) -> UpdateBatch:
    rounds = np.arange(first_round, first_round + len(elements), dtype=np.int64)
    return UpdateBatch(rounds, list(elements), np.ones(len(elements), dtype=bool), {})


class TestPhaseStartRounds:
    def test_fractions_resolve_to_one_based_rounds(self):
        assert phase_start_rounds([0.0, 0.5], 100) == (1, 51)
        assert phase_start_rounds([0.0, 0.25, 0.75], 200) == (1, 51, 151)

    def test_first_phase_must_start_at_zero(self):
        with pytest.raises(ConfigurationError, match="fraction 0.0"):
            phase_start_rounds([0.1, 0.5], 100)

    def test_collapsing_starts_name_the_stream_length(self):
        with pytest.raises(ConfigurationError, match="collapse at stream length 10"):
            phase_start_rounds([0.0, 0.51, 0.52], 10)

    def test_start_beyond_the_stream_is_rejected(self):
        with pytest.raises(ConfigurationError, match="beyond the stream"):
            phase_start_rounds([0.0, 1.0], 100)


class TestPhasedSchedule:
    def test_segments_stop_at_phase_boundaries(self):
        first, second = RecordingMember("a"), RecordingMember("b")
        campaign = CampaignAdversary([first, second], phase_starts=[1, 11])
        stream = _drain(campaign, 25, ask=7)
        assert stream == ["a"] * 10 + ["b"] * 15
        # Requests 7+3 in phase one (capped at the boundary), then 7+7+1.
        assert first.requests == [(1, 7), (8, 3)]
        assert second.requests == [(1, 7), (8, 7), (15, 1)]

    def test_update_batches_are_split_and_translated(self):
        first, second = RecordingMember("a"), RecordingMember("b")
        campaign = CampaignAdversary([first, second], phase_starts=[1, 11])
        # One columnar batch spanning the boundary: global rounds 8..14.
        campaign.observe_update_batch(_batch(8, list("xxxxxxx")))
        assert first.update_rounds == [8, 9, 10]
        assert second.update_rounds == [1, 2, 3, 4]
        assert first.batch_sizes == [3] and second.batch_sizes == [4]

    def test_scalar_updates_are_translated(self):
        first, second = RecordingMember("a"), RecordingMember("b")
        campaign = CampaignAdversary([first, second], phase_starts=[1, 11])
        campaign.observe_update(
            SampleUpdate(round_index=12, element="x", accepted=True)
        )
        assert second.update_rounds == [2]
        assert first.update_rounds == []

    def test_observes_updates_ors_the_owning_members(self):
        class Deaf(RecordingMember):
            def observes_updates(self, first_round, last_round):
                return False

        deaf, listening = Deaf("deaf"), RecordingMember("ears")
        campaign = CampaignAdversary([deaf, listening], phase_starts=[1, 11])
        assert campaign.observes_updates(1, 5) is False
        assert campaign.observes_updates(1, 20) is True
        assert campaign.observes_updates(12, 20) is True


class TestInterleavedSchedule:
    def test_slots_round_robin_between_members(self):
        first, second = RecordingMember("a"), RecordingMember("b")
        campaign = CampaignAdversary(
            [first, second], mode="interleaved", stride=4
        )
        stream = _drain(campaign, 16, ask=16)
        assert stream == ["a"] * 4 + ["b"] * 4 + ["a"] * 4 + ["b"] * 4

    def test_members_see_contiguous_local_rounds(self):
        first, second = RecordingMember("a"), RecordingMember("b")
        campaign = CampaignAdversary(
            [first, second], mode="interleaved", stride=3
        )
        _drain(campaign, 18, ask=18)
        # Each member owns 3-round slots and sees local rounds 1..9.
        assert first.requests == [(1, 3), (4, 3), (7, 3)]
        assert second.requests == [(1, 3), (4, 3), (7, 3)]
        campaign.observe_update_batch(_batch(1, list("uvwxyz")))
        assert first.update_rounds == [1, 2, 3]
        assert second.update_rounds == [1, 2, 3]

    def test_stride_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="stride"):
            CampaignAdversary(
                [RecordingMember("a")], mode="interleaved", stride=0
            )

    def test_phase_starts_are_rejected_in_interleaved_mode(self):
        with pytest.raises(ConfigurationError, match="stride, not phase starts"):
            CampaignAdversary(
                [RecordingMember("a")], mode="interleaved", phase_starts=[1]
            )


class TestConstruction:
    def test_needs_members(self):
        with pytest.raises(ConfigurationError, match="at least one member"):
            CampaignAdversary([], phase_starts=[])

    def test_unknown_mode(self):
        with pytest.raises(ConfigurationError, match="unknown campaign mode"):
            CampaignAdversary([RecordingMember("a")], mode="overlapped")

    def test_phased_needs_one_start_per_member(self):
        with pytest.raises(ConfigurationError, match="one phase start per member"):
            CampaignAdversary(
                [RecordingMember("a"), RecordingMember("b")], phase_starts=[1]
            )

    def test_member_overshoot_is_rejected(self):
        class Greedy(RecordingMember):
            def next_elements(self, round_index, count, observed_sample):
                return [self.tag] * (count + 1)

        campaign = CampaignAdversary([Greedy("g")], phase_starts=[1])
        with pytest.raises(ConfigurationError, match="returned 4 elements"):
            campaign.next_elements(1, 3, None)

    def test_reset_replays_identically(self):
        first, second = RecordingMember("a"), RecordingMember("b")
        campaign = CampaignAdversary([first, second], phase_starts=[1, 6])
        before = _drain(campaign, 12, ask=5)
        campaign.reset()
        assert first.requests == [] and second.update_rounds == []
        assert _drain(campaign, 12, ask=5) == before

    def test_decision_period_forwards_to_cadenced_members(self):
        class Cadenced(CadencedAdversary):
            decision_needs = "none"

            def plan_block(self, round_index, block_length, observed_sample):
                return [0] * block_length

            def observe_block(self, updates):
                return None

        cadenced = Cadenced(decision_period=2)
        oblivious = RecordingMember("noise")
        campaign = CampaignAdversary(
            [oblivious, cadenced], mode="interleaved", stride=4
        )
        assert campaign.set_decision_period(8) is True
        assert cadenced.decision_period == 8
        only_oblivious = CampaignAdversary([RecordingMember("n")], phase_starts=[1])
        assert only_oblivious.set_decision_period(8) is False


#: A tiny campaign config the validation tests mutate.
def _config(**overrides):
    base = dict(
        name="campaign_test",
        stream_length=96,
        universe_size=32,
        trials=1,
        campaign={
            "mode": "phased",
            "members": [
                {"label": "spam", "adversary": {"family": "zipf"}},
                {
                    "label": "poison",
                    "start": 0.5,
                    "adversary": {
                        "family": "greedy_density",
                        "target": {"kind": "prefix", "bound_fraction": 0.5},
                    },
                },
            ],
        },
    )
    base.update(overrides)
    return ScenarioConfig(**base)


class TestConfigValidation:
    def test_valid_campaign_builds_and_labels(self):
        config = _config()
        assert config.adversary_label == "campaign:zipf+greedy_density"

    def test_campaign_excludes_an_explicit_adversary(self):
        with pytest.raises(ConfigurationError, match="cannot set both"):
            _config(adversary={"family": "zipf"})

    def test_campaign_allows_the_default_adversary_spec(self):
        # The config default ({"family": "uniform"}) is not an "explicit"
        # adversary; a campaign config leaves it untouched and unused.
        config = _config(adversary={"family": "uniform"})
        assert config.campaign is not None

    def test_later_phased_members_need_an_explicit_start(self):
        campaign = {
            "mode": "phased",
            "members": [
                {"adversary": {"family": "zipf"}},
                {"adversary": {"family": "uniform"}},
            ],
        }
        with pytest.raises(ConfigurationError, match="member #1 needs a 'start'"):
            _config(campaign=campaign)

    def test_interleaved_members_must_not_carry_starts(self):
        campaign = {
            "mode": "interleaved",
            "members": [
                {"adversary": {"family": "zipf"}, "start": 0.5},
                {"adversary": {"family": "uniform"}},
            ],
        }
        with pytest.raises(ConfigurationError, match="start"):
            _config(campaign=campaign)

    def test_collapsing_starts_fail_at_config_time(self):
        with pytest.raises(ConfigurationError, match="collapse"):
            _config(
                stream_length=10,
                campaign={
                    "mode": "phased",
                    "members": [
                        {"adversary": {"family": "zipf"}},
                        {"start": 0.51, "adversary": {"family": "uniform"}},
                        {"start": 0.52, "adversary": {"family": "uniform"}},
                    ],
                },
            )

    def test_oblivious_member_with_spec_cadence_names_the_member(self):
        config = _config(
            campaign={
                "mode": "phased",
                "members": [
                    {
                        "label": "noise",
                        "adversary": {"family": "uniform", "decision_period": 4},
                    },
                    {"start": 0.5, "adversary": {"family": "zipf"}},
                ],
            }
        )
        with pytest.raises(ConfigurationError) as excinfo:
            run_config(config)
        message = str(excinfo.value)
        assert "campaign member #0 (noise)" in message
        assert "'uniform'" in message
        for family in CADENCED_ADVERSARY_FAMILIES:
            assert family in message

    def test_solo_oblivious_spec_cadence_still_errors_without_context(self):
        config = ScenarioConfig(
            name="solo",
            stream_length=64,
            universe_size=32,
            trials=1,
            adversary={"family": "zipf", "decision_period": 4},
        )
        with pytest.raises(ConfigurationError) as excinfo:
            run_config(config)
        message = str(excinfo.value)
        assert "campaign member" not in message
        assert "'zipf'" in message


class TestEndToEnd:
    def test_single_member_campaign_matches_the_bare_adversary(self):
        """Bit-level game equivalence: a one-member campaign is transparent
        (local indices equal global, no boundary ever caps a segment)."""
        from repro.adversary import run_adaptive_game
        from repro.rng import ensure_generator
        from repro.samplers import BernoulliSampler
        from repro.scenarios.builders import build_adversary, build_campaign_adversary

        spec = {
            "family": "greedy_density",
            "target": {"kind": "prefix", "bound_fraction": 0.5},
        }
        bare = build_adversary(dict(spec), ensure_generator(5), 200, 64)
        wrapped = build_campaign_adversary(
            {"mode": "phased", "members": [{"adversary": dict(spec)}]},
            ensure_generator(5),
            200,
            64,
        )
        one = run_adaptive_game(BernoulliSampler(0.2, seed=7), bare, 200)
        two = run_adaptive_game(BernoulliSampler(0.2, seed=7), wrapped, 200)
        assert one.stream == two.stream
        assert one.sample == two.sample

    def test_campaign_scenario_runs_and_labels_cells(self):
        shared = dict(
            name="equiv", stream_length=128, universe_size=32, trials=2, seed=9
        )
        wrapped = run_config(
            ScenarioConfig(
                campaign={
                    "mode": "phased",
                    "members": [
                        {"adversary": {"family": "zipf", "exponent": 1.4}}
                    ],
                },
                **shared,
            )
        )
        (cell,) = wrapped.cells
        assert cell["adversary"] == "campaign:zipf"
        assert wrapped.peak_discrepancy is not None

    def test_registered_campaign_scenarios_expose_roster_labels(self):
        from repro.scenarios import SCENARIOS

        assert SCENARIOS["spam_then_poison"].base_config.adversary_label == (
            "campaign:zipf+greedy_density"
        )
        assert SCENARIOS["colluding_split_budget"].base_config.campaign["mode"] == (
            "interleaved"
        )
