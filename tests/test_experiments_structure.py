"""Structural smoke tests: every registered experiment runs and reports sane rows.

These run each experiment at a deliberately tiny scale (1 trial, short
streams), so they validate wiring — parameters reach the right components,
rows carry the expected columns, errors stay in [0, 1] — rather than the
statistical shapes, which the integration tests and benchmarks cover at
larger scale.
"""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, ExperimentConfig

#: Tiny configuration: every experiment must complete quickly under it.
TINY = ExperimentConfig(
    trials=1,
    stream_length=300,
    universe_size=128,
    epsilon=0.3,
    delta=0.2,
    extras={
        "multipliers": (0.5, 1.0),
        "reservoir_sizes": (2, 50),
        "bernoulli_rates": (0.01, 0.4),
        "probabilities": (0.2,),
        "reservoir_sizes_bisection": (5,),
        "adversaries": ("figure3", "shift"),
        "grid_side": 16,
        "sample_sizes": (40, 120),
        "server_counts": (4,),
        "hh_universe_size": 2000,
        "quantile_universe_size": 2**16,
        "gap_universe_size": 2**30,
    },
)

EXPECTED_COLUMNS = {
    "E1": {"mechanism", "adversary", "failure_rate"},
    "E1a": {"knowledge", "mean_error"},
    "E2": {"mechanism", "adversary", "failure_rate"},
    "E2a": {"eviction_policy", "workload", "mean_error"},
    "E3": {"mechanism", "below_threshold", "attack_success_rate"},
    "E4": {"sampler", "sample_equals_smallest_rate"},
    "E5": {"sizing", "adversary", "violation_rate"},
    "E6": {"universe", "sizing", "adversary", "robust"},
    "E7": {"mechanism", "adversary", "failure_rate"},
    "E8": {"detector", "workload", "promise_violation_rate"},
    "E9": {"workload", "mean_worst_query_error"},
    "E10": {"sizing", "transfer_success_rate"},
    "E11": {"stream_order", "mean_cost_ratio"},
    "E12": {"num_servers", "workload", "violation_rate"},
    "E13": {"mechanism", "claim", "difference_bound_violations"},
    "E14": {"workload", "method", "mean_memory"},
}

ERROR_COLUMNS = (
    "mean_error",
    "max_error",
    "mean_max_error",
    "mean_worst_quantile_error",
    "mean_worst_query_error",
    "mean_worst_server_error",
)

RATE_COLUMNS = (
    "failure_rate",
    "attack_success_rate",
    "violation_rate",
    "promise_violation_rate",
    "transfer_success_rate",
    "sample_equals_smallest_rate",
)


@pytest.mark.parametrize("identifier", sorted(EXPERIMENTS))
def test_experiment_runs_and_produces_well_formed_rows(identifier):
    result = EXPERIMENTS[identifier](TINY)
    assert result.experiment_id == identifier
    assert result.rows, f"{identifier} produced no rows"
    assert result.parameters, f"{identifier} reported no parameters"

    columns = set()
    for row in result.rows:
        columns.update(row.keys())
    missing = EXPECTED_COLUMNS[identifier] - columns
    assert not missing, f"{identifier} rows are missing columns {missing}"

    for row in result.rows:
        for column in ERROR_COLUMNS:
            if column in row and row[column] == row[column]:  # skip NaN
                assert -1e-9 <= row[column] <= 1.0 + 1e-9, (
                    f"{identifier}: {column}={row[column]} outside [0, 1]"
                )
        for column in RATE_COLUMNS:
            if column in row and row[column] == row[column]:
                assert -1e-9 <= row[column] <= 1.0 + 1e-9, (
                    f"{identifier}: {column}={row[column]} outside [0, 1]"
                )


@pytest.mark.parametrize("identifier", sorted(EXPERIMENTS))
def test_experiment_tables_render(identifier):
    result = EXPERIMENTS[identifier](TINY)
    text = result.to_text()
    assert identifier in text
    markdown = result.table().to_markdown()
    assert markdown.count("|") > 4
    csv = result.table().to_csv()
    assert len(csv.splitlines()) == len(result.rows) + 1


def test_experiments_are_reproducible_given_the_same_config():
    first = EXPERIMENTS["E13"](TINY)
    second = EXPERIMENTS["E13"](TINY)
    assert first.rows == second.rows
