"""Tests for the distributed substrates: random routing and distributed reservoirs."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.distributed import DistributedReservoir, RandomRouter
from repro.exceptions import ConfigurationError, EmptySampleError
from repro.setsystems import PrefixSystem
from repro.streams import uniform_stream


class TestRandomRouter:
    def test_requires_at_least_two_servers(self):
        with pytest.raises(ConfigurationError):
            RandomRouter(1)

    def test_every_query_lands_somewhere(self, rng):
        router = RandomRouter(4, seed=rng)
        router.route_all(range(100))
        assert sum(router.loads()) == 100
        assert len(router.stream) == 100

    def test_route_returns_valid_server_index(self, rng):
        router = RandomRouter(5, seed=rng)
        indices = router.route_all(range(200))
        assert all(0 <= index < 5 for index in indices)

    def test_loads_roughly_balanced(self, rng):
        router = RandomRouter(4, seed=rng)
        router.route_all(range(8000))
        assert router.load_imbalance() < 0.05

    def test_server_substreams_partition_the_stream(self, rng):
        router = RandomRouter(3, seed=rng)
        stream = uniform_stream(500, 100, seed=rng)
        router.route_all(stream)
        combined = Counter()
        for server in router.servers:
            combined.update(server.received)
        assert combined == Counter(stream)

    def test_worst_server_discrepancy_small_for_uniform_workload(self, rng):
        router = RandomRouter(4, seed=rng)
        router.route_all(uniform_stream(6000, 128, seed=rng))
        assert router.worst_server_discrepancy(PrefixSystem(128)) < 0.15

    def test_empty_router_scores_zero(self):
        router = RandomRouter(2, seed=0)
        assert router.load_imbalance() == 0.0
        assert router.worst_server_discrepancy(PrefixSystem(8)) == 0.0


class TestDistributedReservoir:
    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            DistributedReservoir(0, 5)
        with pytest.raises(ConfigurationError):
            DistributedReservoir(3, 0)

    def test_site_validation(self):
        reservoir = DistributedReservoir(2, 5, seed=0)
        with pytest.raises(ConfigurationError):
            reservoir.process(5, "x")

    def test_counts_tracked_per_site(self, rng):
        reservoir = DistributedReservoir(3, 10, seed=rng)
        reservoir.process_batch(0, range(20))
        reservoir.process_batch(2, range(5))
        assert reservoir.site_counts == (20, 0, 5)
        assert reservoir.total_count == 25

    def test_merged_sample_size(self, rng):
        reservoir = DistributedReservoir(3, 16, seed=rng)
        for site in range(3):
            reservoir.process_batch(site, range(site * 100, site * 100 + 100))
        merged = reservoir.merged_sample()
        assert len(merged) == 16

    def test_merged_sample_respects_requested_size(self, rng):
        reservoir = DistributedReservoir(2, 10, seed=rng)
        reservoir.process_batch(0, range(50))
        reservoir.process_batch(1, range(50, 100))
        assert len(reservoir.merged_sample(5)) == 5

    def test_merged_sample_smaller_than_total_when_data_scarce(self, rng):
        reservoir = DistributedReservoir(2, 10, seed=rng)
        reservoir.process_batch(0, [1, 2, 3])
        assert sorted(reservoir.merged_sample()) == [1, 2, 3]

    def test_merge_requires_data(self, rng):
        reservoir = DistributedReservoir(2, 4, seed=rng)
        with pytest.raises(EmptySampleError):
            reservoir.merged_sample()

    def test_oversized_merge_rejected(self, rng):
        reservoir = DistributedReservoir(2, 4, seed=rng)
        reservoir.process(0, 1)
        with pytest.raises(ConfigurationError):
            reservoir.merged_sample(10)

    def test_merged_sample_proportional_to_site_sizes(self, rng):
        # Site 0 contributes 90% of the data; merged samples should reflect it.
        runs, k = 200, 10
        from_site0 = 0
        for seed in range(runs):
            reservoir = DistributedReservoir(2, k, seed=seed)
            reservoir.process_batch(0, range(900))
            reservoir.process_batch(1, range(1000, 1100))
            merged = reservoir.merged_sample()
            from_site0 += sum(1 for value in merged if value < 900)
        fraction = from_site0 / (runs * k)
        assert fraction == pytest.approx(0.9, abs=0.05)

    def test_merged_sample_is_representative(self, rng):
        reservoir = DistributedReservoir(4, 400, seed=rng)
        stream = uniform_stream(8000, 256, seed=rng)
        for index, value in enumerate(stream):
            reservoir.process(index % 4, value)
        merged = reservoir.merged_sample()
        error = PrefixSystem(256).max_discrepancy(stream, merged).error
        assert error < 0.15


class TestDistributedAdapterExtend:
    """Pins for the vectorised ``extend`` kernel on the sampler adapter.

    Regression for the PRO001 fix: the adapter gained a batch path whose
    routing comes from one sized ``integers`` draw.  That draw must consume
    the adapter's bit stream exactly like per-element scalar draws, so any
    chunking is bit-identical to sequential ``process`` — the property the
    distributed scenario reproducibility pins rely on.
    """

    def _adapter(self, seed=7):
        from repro.distributed.adapter import DistributedReservoirSampler

        return DistributedReservoirSampler(num_sites=4, capacity=32, seed=seed)

    def test_extend_bit_identical_to_sequential(self):
        data = uniform_stream(2000, 128, seed=3)
        sequential = self._adapter()
        batched = self._adapter()
        loop_updates = [sequential.process(element) for element in data]
        fast_updates = batched.extend(data)
        assert fast_updates == loop_updates
        assert sequential.rounds_processed == batched.rounds_processed
        assert sequential.memory_footprint() == batched.memory_footprint()
        # Both generators sit at the same stream position, so the next merge
        # (a fresh hypergeometric draw) is also bit-identical.
        assert list(sequential.sample) == list(batched.sample)

    @pytest.mark.parametrize("plan", [[1] * 10 + [490, 700, 800], [2000], [137] * 15])
    def test_any_chunking_is_bit_identical(self, plan):
        data = uniform_stream(2000, 128, seed=5)
        reference = self._adapter(seed=11)
        chunked = self._adapter(seed=11)
        for element in data:
            reference.process(element)
        cursor = 0
        for size in plan:
            chunked.extend(data[cursor : cursor + size], updates=False)
            cursor += size
        chunked.extend(data[cursor:], updates=False)
        assert reference.rounds_processed == chunked.rounds_processed
        assert list(reference.sample) == list(chunked.sample)

    def test_updates_false_and_empty_batch(self):
        sampler = self._adapter()
        assert sampler.extend([], updates=True) == []
        assert sampler.extend([], updates=False) is None
        assert sampler.extend(range(100), updates=False) is None
        assert sampler.rounds_processed == 100
