"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bounds import epsilon_for_reservoir, reservoir_adaptive_size
from repro.core.concentration import freedman_tail
from repro.samplers import (
    BernoulliSampler,
    GreenwaldKhannaSketch,
    MergeReduceSummary,
    MisraGriesSummary,
    ReservoirSampler,
    WeightedReservoirSampler,
)
from repro.setsystems import (
    ExplicitSetSystem,
    IntervalSystem,
    PrefixSystem,
    SingletonSystem,
)

#: Shared settings: the suite must stay fast, so examples are capped.
FAST = settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])

elements = st.integers(min_value=1, max_value=12)
streams = st.lists(elements, min_size=1, max_size=60)


class TestDiscrepancyProperties:
    @FAST
    @given(stream=streams, sample_mask=st.lists(st.booleans(), min_size=60, max_size=60))
    def test_prefix_fast_path_matches_brute_force(self, stream, sample_mask):
        sample = [value for value, keep in zip(stream, sample_mask) if keep] or [stream[0]]
        fast_system = PrefixSystem(12)
        explicit = ExplicitSetSystem.prefixes(12)
        fast = fast_system.max_discrepancy(stream, sample).error
        brute = explicit.max_discrepancy(stream, sample).error
        assert fast == pytest.approx(brute, abs=1e-9)

    @FAST
    @given(stream=streams, sample_mask=st.lists(st.booleans(), min_size=60, max_size=60))
    def test_interval_fast_path_matches_brute_force(self, stream, sample_mask):
        sample = [value for value, keep in zip(stream, sample_mask) if keep] or [stream[0]]
        fast = IntervalSystem(12).max_discrepancy(stream, sample).error
        brute = ExplicitSetSystem.intervals(12).max_discrepancy(stream, sample).error
        assert fast == pytest.approx(brute, abs=1e-9)

    @FAST
    @given(stream=streams, sample_mask=st.lists(st.booleans(), min_size=60, max_size=60))
    def test_singleton_fast_path_matches_brute_force(self, stream, sample_mask):
        sample = [value for value, keep in zip(stream, sample_mask) if keep] or [stream[0]]
        fast = SingletonSystem(12).max_discrepancy(stream, sample).error
        brute = ExplicitSetSystem.singletons(12).max_discrepancy(stream, sample).error
        assert fast == pytest.approx(brute, abs=1e-9)

    @FAST
    @given(stream=streams)
    def test_identical_sample_has_zero_error_everywhere(self, stream):
        for system in (PrefixSystem(12), IntervalSystem(12), SingletonSystem(12)):
            assert system.max_discrepancy(stream, stream).error == pytest.approx(0.0)

    @FAST
    @given(stream=streams, sample_mask=st.lists(st.booleans(), min_size=60, max_size=60))
    def test_errors_bounded_by_one_and_witness_valid(self, stream, sample_mask):
        sample = [value for value, keep in zip(stream, sample_mask) if keep] or [stream[0]]
        system = PrefixSystem(12)
        result = system.max_discrepancy(stream, sample)
        assert 0.0 <= result.error <= 1.0
        # The witness must achieve the reported error.
        achieved = abs(system.density(result.witness, stream) - system.density(result.witness, sample))
        assert achieved == pytest.approx(result.error, abs=1e-9)

    @FAST
    @given(stream=streams)
    def test_interval_error_dominates_prefix_error(self, stream):
        sample = stream[::3] or [stream[0]]
        prefix_error = PrefixSystem(12).max_discrepancy(stream, sample).error
        interval_error = IntervalSystem(12).max_discrepancy(stream, sample).error
        assert interval_error >= prefix_error - 1e-9


class TestSamplerProperties:
    @FAST
    @given(stream=st.lists(st.integers(0, 1000), min_size=1, max_size=200), seed=st.integers(0, 2**16))
    def test_reservoir_sample_is_multiset_subset_of_stream(self, stream, seed):
        sampler = ReservoirSampler(7, seed=seed)
        sampler.extend(stream)
        from collections import Counter

        stream_counts = Counter(stream)
        sample_counts = Counter(sampler.sample)
        assert all(sample_counts[v] <= stream_counts[v] for v in sample_counts)
        assert sampler.sample_size == min(7, len(stream))

    @FAST
    @given(stream=st.lists(st.integers(0, 1000), min_size=1, max_size=200),
           seed=st.integers(0, 2**16),
           probability=st.floats(0.05, 1.0))
    def test_bernoulli_sample_preserves_stream_order(self, stream, seed, probability):
        sampler = BernoulliSampler(probability, seed=seed)
        sampler.extend(stream)
        iterator = iter(stream)
        for sampled in sampler.sample:
            assert any(sampled == value for value in iterator)

    @FAST
    @given(stream=st.lists(st.integers(0, 100), min_size=1, max_size=150), seed=st.integers(0, 2**16))
    def test_weighted_reservoir_never_exceeds_capacity(self, stream, seed):
        sampler = WeightedReservoirSampler(5, seed=seed)
        sampler.extend(stream)
        assert sampler.sample_size == min(5, len(stream))

    @FAST
    @given(stream=st.lists(st.integers(0, 30), min_size=1, max_size=300))
    def test_misra_gries_estimate_error_bound(self, stream):
        capacity = 6
        summary = MisraGriesSummary(capacity)
        summary.extend(stream)
        slack = len(stream) / (capacity + 1)
        from collections import Counter

        truth = Counter(stream)
        for value, count in truth.items():
            estimate = summary.estimate(value)
            assert estimate <= count
            assert count - estimate <= slack + 1e-9

    @FAST
    @given(values=st.lists(st.integers(0, 10_000), min_size=5, max_size=400))
    def test_greenwald_khanna_rank_error_bound(self, values):
        epsilon = 0.1
        sketch = GreenwaldKhannaSketch(epsilon)
        sketch.extend(values)
        ordered = sorted(values)
        probe = ordered[len(ordered) // 2]
        true_rank = sum(1 for v in values if v <= probe)
        assert abs(sketch.rank_query(probe) - true_rank) <= 2 * epsilon * len(values) + 1

    @FAST
    @given(values=st.lists(st.integers(0, 10_000), min_size=2, max_size=500))
    def test_merge_reduce_total_weight_is_count(self, values):
        summary = MergeReduceSummary(0.2)
        summary.extend(values)
        total = sum(point.weight for point in summary.weighted_points())
        assert total == pytest.approx(len(values))


class TestBoundProperties:
    @FAST
    @given(log_r=st.floats(0.0, 100.0), epsilon=st.floats(0.01, 0.9), delta=st.floats(0.01, 0.9))
    def test_reservoir_bound_positive_and_monotone_in_cardinality(self, log_r, epsilon, delta):
        bound = reservoir_adaptive_size(log_r, epsilon, delta)
        larger = reservoir_adaptive_size(log_r + 1.0, epsilon, delta)
        assert bound.size >= 1
        assert larger.value >= bound.value

    @FAST
    @given(log_r=st.floats(0.0, 50.0), delta=st.floats(0.01, 0.5), size=st.integers(1, 10_000))
    def test_epsilon_inverse_consistent_with_forward_bound(self, log_r, delta, size):
        epsilon = epsilon_for_reservoir(log_r, delta, size)
        if epsilon < 1.0:
            forward = reservoir_adaptive_size(log_r, epsilon, delta)
            assert forward.value <= size * 1.01

    @FAST
    @given(deviation=st.floats(0.0, 10.0), variance=st.floats(0.0, 10.0), step=st.floats(0.0, 2.0))
    def test_freedman_tail_is_a_probability_and_monotone(self, deviation, variance, step):
        value = freedman_tail(deviation, variance, step)
        assert 0.0 <= value <= 1.0
        assert freedman_tail(deviation + 1.0, variance, step) <= value + 1e-12
