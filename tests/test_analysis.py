"""Tests for the project-invariant lint engine (`repro.analysis`).

Every rule gets a fixture pair: a known-bad snippet that must trigger it
and a known-good sibling that must pass.  On top of that the live tree is
pinned clean under the default rule set — the self-hosted check CI runs —
and the PR 9 shared-generator merge bug is reintroduced verbatim as a
regression fixture for the RNG-discipline family.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path
from typing import ClassVar

import pytest

from repro.analysis import DEFAULT_RULES, AnalysisEngine, parse_directives
from repro.cli import main


def run_engine(
    tmp_path: Path,
    files: dict[str, str],
    tests: dict[str, str] | None = None,
    **kwargs,
):
    """Materialise ``files`` under a package root and run the default rules."""
    package_root = tmp_path / "pkg"
    for relpath, source in files.items():
        path = package_root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    tests_root = None
    if tests is not None:
        tests_root = tmp_path / "tests"
        for relpath, source in tests.items():
            path = tests_root / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
    engine = AnalysisEngine(package_root, DEFAULT_RULES, tests_root=tests_root)
    return engine.run(**kwargs)


def rules_fired(findings):
    return {finding.rule for finding in findings}


# ----------------------------------------------------------------------
# RNG discipline
# ----------------------------------------------------------------------
class TestRandomModuleRule:
    def test_bad_import_random(self, tmp_path):
        findings = run_engine(tmp_path, {"mod.py": "import random\n"})
        assert rules_fired(findings) == {"RNG001"}

    def test_bad_from_random(self, tmp_path):
        findings = run_engine(tmp_path, {"mod.py": "from random import choice\n"})
        assert rules_fired(findings) == {"RNG001"}

    def test_good_numpy_generator(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {"mod.py": "import numpy as np\nrng = np.random.default_rng(7)\n"},
        )
        assert findings == []


class TestGlobalNumpyRngRule:
    def test_bad_legacy_call(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {"mod.py": "import numpy as np\nnp.random.seed(0)\nx = np.random.random()\n"},
        )
        assert [f.rule for f in findings] == ["RNG002", "RNG002"]

    def test_good_constructors(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "g = np.random.Generator(np.random.PCG64(3))\n"
                    "s = np.random.SeedSequence(5)\n"
                )
            },
        )
        assert findings == []

    def test_good_generator_method_named_random(self, tmp_path):
        # rng.random() is a Generator method, not the global namespace.
        findings = run_engine(
            tmp_path,
            {"mod.py": "def draw(rng):\n    return rng.random()\n"},
        )
        assert findings == []


class TestSeedlessGeneratorRule:
    def test_bad_seedless_default_rng(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {"mod.py": "import numpy as np\nrng = np.random.default_rng()\n"},
        )
        assert rules_fired(findings) == {"RNG003"}

    def test_bad_seedless_bit_generator(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {"mod.py": "import numpy as np\nbits = np.random.PCG64()\n"},
        )
        assert rules_fired(findings) == {"RNG003"}

    def test_good_seeded(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {"mod.py": "import numpy as np\nrng = np.random.default_rng(11)\n"},
        )
        assert findings == []

    def test_rng_module_is_exempt(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {"rng.py": "import numpy as np\nrng = np.random.default_rng()\n"},
        )
        assert findings == []


PR9_SHARED_GENERATOR_MERGE = """
    class ReplicatedSampler:
        def merge(self, others, *, rng=None):
            merged = type(self)()
            # The PR 9 bug, verbatim shape: every merged copy receives the
            # caller's generator object, so all copies share one stream.
            merged._rng = rng
            return merged
"""

PR9_FIXED_MERGE = """
    from repro.rng import spawn_generators

    class ReplicatedSampler:
        def merge(self, others, *, rng=None):
            merged = type(self)()
            merged._rng = spawn_generators(rng, 1)[0]
            return merged
"""


class TestSharedGeneratorRule:
    def test_pr9_regression_pattern_is_caught(self, tmp_path):
        """Reintroducing the PR 9 shared-generator merge is caught by RNG004."""
        findings = run_engine(tmp_path, {"mod.py": PR9_SHARED_GENERATOR_MERGE})
        assert rules_fired(findings) == {"RNG004"}
        (finding,) = findings
        assert "merge" in finding.message

    def test_pr9_fixed_shape_passes(self, tmp_path):
        findings = run_engine(tmp_path, {"mod.py": PR9_FIXED_MERGE})
        assert findings == []

    def test_bad_attribute_sharing_in_split(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {
                "mod.py": """
                class S:
                    def split(self):
                        sibling = type(self)()
                        sibling._rng = self._rng
                        return sibling
                """
            },
        )
        assert rules_fired(findings) == {"RNG004"}

    def test_bad_sharing_via_conditional(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {
                "mod.py": """
                class S:
                    def copy(self, rng=None):
                        dup = type(self)()
                        dup._generator = self._rng if rng is None else rng
                        return dup
                """
            },
        )
        assert rules_fired(findings) == {"RNG004"}

    def test_good_local_alias_not_flagged(self, tmp_path):
        # Selecting which generator drives the merge *draws* is fine; only
        # storing a live reference on the produced copy is the bug.
        findings = run_engine(
            tmp_path,
            {
                "mod.py": """
                class S:
                    def merge(self, others, *, rng=None):
                        merge_rng = self._rng if rng is None else rng
                        return merge_rng.random()
                """
            },
        )
        assert findings == []

    def test_good_outside_copying_methods(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {
                "mod.py": """
                class S:
                    def rebind(self, rng):
                        self._rng = rng
                """
            },
        )
        assert findings == []


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
class TestWallClockRule:
    def test_bad_perf_counter_in_samplers(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {"samplers/fast.py": "import time\nstart = time.perf_counter()\n"},
        )
        assert rules_fired(findings) == {"DET001"}

    def test_bad_datetime_now(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {"mod.py": "from datetime import datetime\nstamp = datetime.now()\n"},
        )
        assert rules_fired(findings) == {"DET001"}

    def test_good_in_bench_and_service(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {
                "bench.py": "import time\nstart = time.perf_counter()\n",
                "service/live.py": "import time\nstart = time.monotonic()\n",
            },
        )
        assert findings == []


class TestSetIterationRule:
    def test_bad_for_over_set(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {
                "samplers/mod.py": """
                def drain(values):
                    out = []
                    for value in set(values):
                        out.append(value)
                    return out
                """
            },
        )
        assert rules_fired(findings) == {"DET002"}

    def test_bad_list_of_set(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {"distributed/mod.py": "def f(xs):\n    return list({x for x in xs})\n"},
        )
        assert rules_fired(findings) == {"DET002"}

    def test_good_sorted_set(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {"samplers/mod.py": "def f(xs):\n    return sorted(set(xs))\n"},
        )
        assert findings == []

    def test_good_outside_state_layers(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {"experiments/mod.py": "def f(xs):\n    return list(set(xs))\n"},
        )
        assert findings == []


class TestOrderDependentPopRule:
    def test_bad_popitem(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {"samplers/mod.py": "def f(d):\n    return d.popitem()\n"},
        )
        assert rules_fired(findings) == {"DET003"}

    def test_bad_next_iter(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {"service/mod.py": "def f(s):\n    return next(iter(s))\n"},
        )
        assert rules_fired(findings) == {"DET003"}

    def test_good_explicit_choice(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {"samplers/mod.py": "def f(d):\n    key = min(d)\n    return d.pop(key)\n"},
        )
        assert findings == []


# ----------------------------------------------------------------------
# Lock discipline
# ----------------------------------------------------------------------
LOCKED_CLASS_BAD = """
    import threading

    class Service:
        def __init__(self):
            self._lock = threading.Lock()
            self._state = None  # guarded-by: _lock

        def update(self, value):
            self._state = value
"""

LOCKED_CLASS_GOOD = """
    import threading

    class Service:
        def __init__(self):
            self._lock = threading.Lock()
            self._state = None  # guarded-by: _lock

        def update(self, value):
            with self._lock:
                self._state = value

        def _swap_locked(self, value):
            self._state = value
"""


class TestLockDisciplineRule:
    def test_bad_unguarded_write(self, tmp_path):
        findings = run_engine(tmp_path, {"mod.py": LOCKED_CLASS_BAD})
        assert rules_fired(findings) == {"LCK001"}
        (finding,) = findings
        assert "Service.update" in finding.message
        assert "_state" in finding.message

    def test_good_guarded_write_and_locked_helper(self, tmp_path):
        findings = run_engine(tmp_path, {"mod.py": LOCKED_CLASS_GOOD})
        assert findings == []

    def test_bad_lock_without_registry(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {
                "mod.py": """
                import threading

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._state = None
                """
            },
        )
        assert rules_fired(findings) == {"LCK002"}

    def test_bad_augmented_write_outside_lock(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {
                "mod.py": """
                import threading

                class Counter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0  # guarded-by: _lock

                    def bump(self):
                        self._count += 1
                """
            },
        )
        assert rules_fired(findings) == {"LCK001"}

    def test_nested_function_does_not_inherit_lock(self, tmp_path):
        # A closure defined under `with self._lock` runs later on an unknown
        # thread; its guarded writes must be flagged.
        findings = run_engine(
            tmp_path,
            {
                "mod.py": """
                import threading

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._state = None  # guarded-by: _lock

                    def sneaky(self):
                        with self._lock:
                            def later():
                                self._state = 1
                            return later
                """
            },
        )
        assert rules_fired(findings) == {"LCK001"}

    def test_unregistered_attributes_unchecked(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {
                "mod.py": """
                import threading

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._state = None  # guarded-by: _lock
                        self._metric = 0

                    def observe(self):
                        self._metric += 1
                """
            },
        )
        assert findings == []


# ----------------------------------------------------------------------
# Protocol contracts
# ----------------------------------------------------------------------
SAMPLER_TREE = """
    from abc import ABC, abstractmethod

    class StreamSampler(ABC):
        @abstractmethod
        def _process(self, element):
            ...

        @property
        @abstractmethod
        def sample(self):
            ...

        @abstractmethod
        def reset(self):
            ...

        def extend(self, elements, updates=True):
            ...
"""


class TestSamplerExtendRule:
    def test_bad_concrete_subclass_without_extend(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {
                "samplers/base.py": SAMPLER_TREE,
                "samplers/slow.py": """
                from .base import StreamSampler

                class SlowSampler(StreamSampler):
                    def _process(self, element):
                        ...

                    @property
                    def sample(self):
                        return ()

                    def reset(self):
                        ...
                """,
            },
        )
        assert rules_fired(findings) == {"PRO001"}
        (finding,) = findings
        assert "SlowSampler" in finding.message

    def test_good_with_extend(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {
                "samplers/base.py": SAMPLER_TREE,
                "samplers/fast.py": """
                from .base import StreamSampler

                class FastSampler(StreamSampler):
                    def _process(self, element):
                        ...

                    @property
                    def sample(self):
                        return ()

                    def reset(self):
                        ...

                    def extend(self, elements, updates=True):
                        ...
                """,
            },
        )
        assert findings == []

    def test_good_abstract_intermediate_exempt(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {
                "samplers/base.py": SAMPLER_TREE
                + """
    class FixedSizeSampler(StreamSampler):
        def __init__(self, capacity):
            self.capacity = capacity
""",
            },
        )
        assert findings == []

    def test_good_extend_inherited_from_project_base(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {
                "samplers/base.py": SAMPLER_TREE,
                "samplers/mid.py": """
                from .base import StreamSampler

                class Replicated(StreamSampler):
                    def _process(self, element):
                        ...

                    @property
                    def sample(self):
                        return ()

                    def reset(self):
                        ...

                    def extend(self, elements, updates=True):
                        ...

                class Derived(Replicated):
                    pass
                """,
            },
        )
        assert findings == []


class TestCadenceContractRule:
    def test_bad_half_implemented_cadence(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {
                "adversary/mod.py": """
                class Adversary:
                    pass

                class HalfAdversary(Adversary):
                    def __init__(self, decision_period=1):
                        self.decision_period = decision_period

                    def plan_block(self, round_index, count, observed_sample):
                        ...
                """
            },
        )
        assert rules_fired(findings) == {"PRO002"}
        (finding,) = findings
        assert "observe_block" in finding.message

    def test_good_full_protocol(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {
                "adversary/mod.py": """
                class Adversary:
                    pass

                class FullAdversary(Adversary):
                    def __init__(self, decision_period=1):
                        self.decision_period = decision_period

                    def plan_block(self, round_index, count, observed_sample):
                        ...

                    def observe_block(self, updates):
                        ...
                """
            },
        )
        assert findings == []

    def test_good_inherited_protocol(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {
                "adversary/mod.py": """
                class Adversary:
                    pass

                class CadencedAdversary(Adversary):
                    def __init__(self, decision_period=1):
                        self.decision_period = decision_period

                    def plan_block(self, round_index, count, observed_sample):
                        ...

                    def observe_block(self, updates):
                        ...

                class Attack(CadencedAdversary):
                    def __init__(self, decision_period=1):
                        super().__init__(decision_period)
                """
            },
        )
        assert findings == []

    def test_good_non_adversary_carrier_exempt(self, tmp_path):
        # Runners and configs carry the knob without being adversaries.
        findings = run_engine(
            tmp_path,
            {
                "adversary/batch.py": """
                class BatchGameRunner:
                    def __init__(self, decision_period=1):
                        self.decision_period = decision_period
                """
            },
        )
        assert findings == []


class TestScenarioCoverageRule:
    REGISTRY = """
        class Scenario:
            def __init__(self, name, description=""):
                self.name = name

        def register_scenario(scenario):
            return scenario

        register_scenario(Scenario(name="covered_attack"))
        register_scenario(Scenario(name="orphan_attack"))
    """

    def test_bad_unreferenced_scenario(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {"scenarios/library.py": self.REGISTRY},
            tests={"test_x.py": "NAME = 'covered_attack'\n"},
        )
        assert rules_fired(findings) == {"PRO003"}
        (finding,) = findings
        assert "orphan_attack" in finding.message

    def test_good_helper_reference_counts(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {"scenarios/library.py": self.REGISTRY},
            tests={
                "test_x.py": (
                    "NAME = 'covered_attack'\n"
                    "from pkg.scenarios import run_orphan_attack\n"
                )
            },
        )
        assert findings == []

    def test_skipped_without_tests_root(self, tmp_path):
        findings = run_engine(tmp_path, {"scenarios/library.py": self.REGISTRY})
        assert findings == []


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_valid_noqa_suppresses(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {
                "mod.py": (
                    "import random"
                    "  # repro: noqa[RNG001]: fixture exercising the suppression path\n"
                )
            },
        )
        assert findings == []

    def test_noqa_without_reason_is_a_finding(self, tmp_path):
        findings = run_engine(
            tmp_path, {"mod.py": "import random  # repro: noqa[RNG001]\n"}
        )
        assert rules_fired(findings) == {"RNG001", "NOQ001"}

    def test_blanket_noqa_is_a_finding_and_suppresses_nothing(self, tmp_path):
        findings = run_engine(
            tmp_path, {"mod.py": "import random  # repro: noqa\n"}
        )
        assert rules_fired(findings) == {"RNG001", "NOQ001"}

    def test_noqa_for_other_rule_does_not_suppress(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {"mod.py": "import random  # repro: noqa[DET001]: wrong rule on purpose\n"},
        )
        assert rules_fired(findings) == {"RNG001"}

    def test_directive_in_docstring_is_ignored(self, tmp_path):
        findings = run_engine(
            tmp_path,
            {"mod.py": '"""Docs mention # repro: noqa[RULE] syntax."""\n'},
        )
        assert findings == []

    def test_parse_directives_shapes(self):
        directives = parse_directives(
            "x = 1  # repro: noqa[RNG001, DET002]: two rules, one reason\n"
        )
        (directive,) = directives.values()
        assert directive.rules == {"RNG001", "DET002"}
        assert directive.valid
        assert directive.suppresses("RNG001")
        assert directive.suppresses("DET002")
        assert not directive.suppresses("RNG002")


# ----------------------------------------------------------------------
# Engine mechanics: select/ignore, ordering
# ----------------------------------------------------------------------
class TestSelection:
    FILES: ClassVar[dict[str, str]] = {
        "samplers/mod.py": (
            "import random\nimport time\nstart = time.perf_counter()\n"
        )
    }

    def test_select_family(self, tmp_path):
        findings = run_engine(tmp_path, dict(self.FILES), select=["RNG"])
        assert rules_fired(findings) == {"RNG001"}

    def test_ignore_rule(self, tmp_path):
        findings = run_engine(tmp_path, dict(self.FILES), ignore=["DET001"])
        assert rules_fired(findings) == {"RNG001"}

    def test_findings_sorted(self, tmp_path):
        findings = run_engine(tmp_path, dict(self.FILES))
        assert findings == sorted(
            findings, key=lambda f: (f.file, f.line, f.rule)
        )


# ----------------------------------------------------------------------
# The live tree and the CLI verb
# ----------------------------------------------------------------------
REPO_ROOT = Path(__file__).resolve().parent.parent
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"


class TestLiveTree:
    def test_live_tree_is_clean_under_default_rules(self):
        """The self-hosted invariant: the shipped tree has zero findings."""
        engine = AnalysisEngine(
            PACKAGE_ROOT, DEFAULT_RULES, tests_root=REPO_ROOT / "tests"
        )
        findings = engine.run()
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_cli_analyze_exits_zero_on_live_tree(self, capsys):
        code = main(
            ["analyze", "--root", str(PACKAGE_ROOT), "--tests", str(REPO_ROOT / "tests")]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0 findings" in out

    def test_cli_analyze_json_on_bad_tree(self, tmp_path, capsys):
        bad = tmp_path / "pkg"
        bad.mkdir()
        (bad / "mod.py").write_text("import random\n", encoding="utf-8")
        code = main(["analyze", "--root", str(bad), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["checked_files"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "RNG001"
        assert finding["file"] == "pkg/mod.py"
        assert finding["line"] == 1

    def test_cli_select_and_ignore(self, tmp_path, capsys):
        bad = tmp_path / "pkg"
        bad.mkdir()
        (bad / "mod.py").write_text("import random\n", encoding="utf-8")
        assert main(["analyze", "--root", str(bad), "--select", "DET"]) == 0
        capsys.readouterr()
        assert main(["analyze", "--root", str(bad), "--ignore", "RNG001"]) == 0
        capsys.readouterr()
        assert main(["analyze", "--root", str(bad), "--select", "RNG"]) == 1

    def test_cli_list_rules(self, capsys):
        assert main(["analyze", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in DEFAULT_RULES:
            assert rule.rule_id in out

    def test_cli_rejects_bad_root(self, capsys):
        assert main(["analyze", "--root", "/definitely/not/a/dir"]) == 2
