"""Shared fixtures and Hypothesis profiles for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.adversary import reset_fallback_warnings
from repro.setsystems import ExplicitSetSystem, IntervalSystem, PrefixSystem, SingletonSystem

# Two property-testing budgets, both fully deterministic (derandomize pins
# the example sequence so CI failures reproduce locally without a seed
# artifact): the smoke profile bounds every CI run, the nightly profile
# spends real time on the scenario fuzzer.  Select with REPRO_FUZZ_PROFILE.
settings.register_profile("fuzz-smoke", max_examples=12, deadline=None, derandomize=True)
settings.register_profile("fuzz-nightly", max_examples=75, deadline=None, derandomize=True)
settings.load_profile(os.environ.get("REPRO_FUZZ_PROFILE", "fuzz-smoke"))


@pytest.fixture(autouse=True)
def _fresh_fallback_warning_latch():
    """Reset the once-per-process fallback-warning latch around every test.

    The latch makes the per-element fallback RuntimeWarning fire once per
    adversary identity per process, so without the reset the warning's
    visibility would depend on test execution order — the test that asserts
    on it with ``pytest.warns`` would pass alone and fail after any earlier
    test that happened to trigger the same adversary class.
    """
    reset_fallback_warnings()
    yield
    reset_fallback_warnings()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def prefix_system() -> PrefixSystem:
    """Prefix system over a small ordered universe."""
    return PrefixSystem(32)


@pytest.fixture
def interval_system() -> IntervalSystem:
    """Interval system over a small ordered universe."""
    return IntervalSystem(16)


@pytest.fixture
def singleton_system() -> SingletonSystem:
    """Singleton system over a small universe."""
    return SingletonSystem(20)


@pytest.fixture
def explicit_prefixes() -> ExplicitSetSystem:
    """Explicitly enumerated prefix system, for cross-checking fast algorithms."""
    return ExplicitSetSystem.prefixes(12)
