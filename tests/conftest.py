"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.setsystems import ExplicitSetSystem, IntervalSystem, PrefixSystem, SingletonSystem


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def prefix_system() -> PrefixSystem:
    """Prefix system over a small ordered universe."""
    return PrefixSystem(32)


@pytest.fixture
def interval_system() -> IntervalSystem:
    """Interval system over a small ordered universe."""
    return IntervalSystem(16)


@pytest.fixture
def singleton_system() -> SingletonSystem:
    """Singleton system over a small universe."""
    return SingletonSystem(20)


@pytest.fixture
def explicit_prefixes() -> ExplicitSetSystem:
    """Explicitly enumerated prefix system, for cross-checking fast algorithms."""
    return ExplicitSetSystem.prefixes(12)
