"""Tests for the experiment harness: config, metrics, tables, runner, registry, CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.exceptions import ConfigurationError
from repro.experiments import (
    EXPERIMENTS,
    ExperimentConfig,
    ExperimentResult,
    Table,
    exceedance_rate,
    failure_rate,
    get_experiment,
    monte_carlo,
    run_experiment,
    summarize,
    sweep,
    wilson_interval,
)


class TestExperimentConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig()
        assert config.trials >= 1

    def test_replace_creates_modified_copy(self):
        config = ExperimentConfig()
        other = config.replace(trials=3, epsilon=0.5)
        assert other.trials == 3 and other.epsilon == 0.5
        assert config.trials != 3 or config.epsilon != 0.5

    def test_extras_accessible(self):
        config = ExperimentConfig(extras={"alpha": 0.4})
        assert config.extra("alpha") == 0.4
        assert config.extra("missing", 7) == 7

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(trials=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(epsilon=2.0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(stream_length=1)

    def test_describe_serialisable(self):
        description = ExperimentConfig().describe()
        assert "epsilon" in description and "trials" in description


class TestMetrics:
    def test_summarize_basic_stats(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0 and summary.maximum == 4.0

    def test_summarize_odd_median(self):
        assert summarize([3.0, 1.0, 2.0]).median == 2.0

    def test_summarize_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])

    def test_summary_as_dict_prefix(self):
        payload = summarize([1.0, 2.0]).as_dict(prefix="error_")
        assert payload["error_mean"] == pytest.approx(1.5)

    def test_failure_rate(self):
        assert failure_rate([True, False, False, True]) == 0.5
        with pytest.raises(ConfigurationError):
            failure_rate([])

    def test_exceedance_rate(self):
        assert exceedance_rate([0.1, 0.3, 0.5], 0.2) == pytest.approx(2 / 3)

    def test_wilson_interval_contains_proportion(self):
        low, high = wilson_interval(5, 20)
        assert low <= 0.25 <= high
        assert 0.0 <= low <= high <= 1.0

    def test_wilson_interval_extremes(self):
        low, high = wilson_interval(0, 30)
        assert low == 0.0 and high < 0.2
        with pytest.raises(ConfigurationError):
            wilson_interval(5, 0)


class TestTable:
    def test_add_row_from_mapping_and_sequence(self):
        table = Table(columns=["a", "b"])
        table.add_row({"a": 1, "b": 2})
        table.add_row([3, 4])
        assert len(table) == 2
        assert table.column("a") == [1, 3]

    def test_row_length_mismatch_rejected(self):
        table = Table(columns=["a", "b"])
        with pytest.raises(ConfigurationError):
            table.add_row([1])

    def test_text_rendering_contains_values(self):
        table = Table(columns=["name", "value"], title="demo")
        table.add_row(["x", 0.123456])
        text = table.to_text()
        assert "demo" in text and "0.1235" in text

    def test_markdown_rendering(self):
        table = Table(columns=["name"])
        table.add_row(["hello"])
        markdown = table.to_markdown()
        assert "| name |" in markdown and "| hello |" in markdown

    def test_csv_rendering_quotes_commas(self):
        table = Table(columns=["text"])
        table.add_row(["a,b"])
        assert '"a,b"' in table.to_csv()

    def test_unknown_column_rejected(self):
        table = Table(columns=["a"])
        with pytest.raises(ConfigurationError):
            table.column("zzz")


class TestExperimentResult:
    def test_rows_and_notes_render(self):
        result = ExperimentResult("EX", "demo experiment", {"n": 5})
        result.add_row(metric=1.0, label="row1")
        result.note("observation")
        text = result.to_text()
        assert "EX" in text and "observation" in text and "row1" in text

    def test_table_column_order_follows_first_row(self):
        result = ExperimentResult("EX", "demo", {})
        result.add_row(b=1, a=2)
        result.add_row(a=3, b=4, c=5)
        table = result.table()
        assert table.columns == ["b", "a", "c"]


class TestRunner:
    def test_monte_carlo_reproducible(self):
        first = monte_carlo(lambda rng, i: float(rng.random()), 5, seed=1)
        second = monte_carlo(lambda rng, i: float(rng.random()), 5, seed=1)
        assert first == second

    def test_monte_carlo_passes_indices(self):
        indices = monte_carlo(lambda rng, i: i, 4, seed=0)
        assert indices == [0, 1, 2, 3]

    def test_monte_carlo_validation(self):
        with pytest.raises(ConfigurationError):
            monte_carlo(lambda rng, i: i, 0, seed=0)

    def test_sweep(self):
        assert sweep([1, 2, 3], lambda v: v * 2) == [2, 4, 6]
        with pytest.raises(ConfigurationError):
            sweep([], lambda v: v)


class TestRegistry:
    def test_all_design_experiments_registered(self):
        for identifier in ("E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
                           "E10", "E11", "E12", "E13", "E14"):
            assert identifier in EXPERIMENTS

    def test_lookup_case_insensitive(self):
        assert get_experiment("e3") is EXPERIMENTS["E3"]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            get_experiment("E99")

    def test_run_experiment_smoke(self):
        config = ExperimentConfig(trials=1, stream_length=200, universe_size=64)
        result = run_experiment("E13", config)
        assert result.experiment_id == "E13"
        assert len(result.rows) == 2


class TestCLI:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["run", "E3", "--trials", "2"])
        assert args.experiment == "E3" and args.trials == 2

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "E3" in output and "E14" in output

    def test_run_command_prints_table(self, capsys):
        code = main([
            "run", "E13", "--trials", "1", "--stream-length", "200",
            "--universe-size", "64",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "E13" in output and "bernoulli" in output

    def test_run_command_markdown(self, capsys):
        code = main([
            "run", "E13", "--trials", "1", "--stream-length", "200",
            "--universe-size", "64", "--markdown",
        ])
        assert code == 0
        assert "|" in capsys.readouterr().out
