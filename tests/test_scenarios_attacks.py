"""Attack-scenario suite: every registered scenario runs, reproduces, and
is budget-monotone.

Three properties are pinned for the whole registry (in the style of the
attack-scenario suites this layer is modelled on):

* **runs at small scale** — every scenario executes end to end with reduced
  stream/universe/trials and produces sane, bounded statistics;
* **bit-reproducible** — the same config yields the identical result
  (excluding wall time), and a 2-worker pool reproduces the serial run;
* **budget-monotone** — a larger attack budget never yields a smaller
  *attacked* peak discrepancy.  This is structural, not statistical: the
  budget wrapper never leaks the budget into the attack prefix, per-trial
  substreams are derived from budget-independent labels, and checkpoint
  schedules depend only on the stream length, so a low-budget run observes a
  prefix subset of a high-budget run's attacked checkpoints.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.scenarios import (
    SCENARIOS,
    ScenarioConfig,
    get_scenario,
    list_scenarios,
    run_config,
    run_prefix_flood,
    run_scenario,
    sweep_scenario,
)

#: Reduced scale shared by the whole suite: big enough for the attacks to
#: show signal, small enough that the full registry runs in a few seconds.
SMALL = dict(stream_length=192, universe_size=64, trials=2)

ALL_SCENARIOS = list(SCENARIOS)


class TestRegistry:
    def test_at_least_eight_scenarios_registered(self):
        assert len(SCENARIOS) >= 8

    def test_expected_names_present(self):
        expected = {
            "prefix_flood",
            "bisection_probe",
            "reservoir_eviction",
            "heavy_hitter_spoof",
            "quantile_shift",
            "sliding_window_burst",
            "distributed_skew",
            "static_baseline",
        }
        assert expected <= set(SCENARIOS)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            get_scenario("definitely_not_registered")

    def test_listing_is_serialisable_and_complete(self):
        listing = list_scenarios()
        assert [entry["name"] for entry in listing] == ALL_SCENARIOS
        for entry in listing:
            assert entry["description"]
            assert entry["budget_grid"]

    def test_config_json_round_trip(self):
        for scenario in SCENARIOS.values():
            config = scenario.base_config
            assert ScenarioConfig.from_json(config.to_json()) == config


@pytest.mark.parametrize("name", ALL_SCENARIOS)
class TestEveryScenario:
    def test_runs_at_small_scale(self, name):
        result = run_scenario(name, **SMALL)
        assert result.scenario == name
        assert result.cells, "scenario produced no grid cells"
        assert len(result.cells) == len(SCENARIOS[name].base_config.samplers)
        assert result.wall_time_seconds > 0.0
        assert result.peak_discrepancy is not None
        assert 0.0 <= result.peak_discrepancy <= 1.0
        for cell in result.cells:
            assert cell["trials"] == SMALL["trials"]
            assert 0.0 <= cell["mean_error"] <= 1.0
            assert cell["mean_sample_size"] > 0.0
            if cell["violation_rate"] is not None:
                assert 0.0 <= cell["violation_rate"] <= 1.0

    def test_bit_reproducible_under_fixed_seed(self, name):
        first = run_scenario(name, **SMALL)
        second = run_scenario(name, **SMALL)
        assert first.to_dict(include_timing=False) == second.to_dict(include_timing=False)

    def test_budget_monotonicity(self, name):
        """Larger attack budget => no smaller observed (attacked) error."""
        scenario = SCENARIOS[name]
        peaks = [
            run_scenario(name, attack_budget=budget, **SMALL).attacked_peak_discrepancy
            for budget in scenario.budget_grid
        ]
        for lower, higher in zip(peaks, peaks[1:]):
            if lower is None:
                continue  # no checkpoint inside the smaller attack window
            assert higher is not None
            assert lower <= higher + 1e-12, (
                f"{name}: attacked peak shrank when the budget grew: {peaks}"
            )


class TestScenarioSemantics:
    def test_worker_pool_reproduces_serial_run(self):
        serial = run_scenario("prefix_flood", workers=1, **SMALL)
        pooled = run_scenario("prefix_flood", workers=2, **SMALL)
        assert serial.cells == pooled.cells
        assert serial.peak_discrepancy == pooled.peak_discrepancy

    def test_attack_beats_no_attack(self):
        """The bisection probe visibly hurts the Bernoulli sampler.

        The comparison is on the Bernoulli cell's endpoint error: the
        introduction's attack separates stored from unstored elements of a
        *fixed-retention* sampler, so that is where the signal is (the
        reservoir cell recovers via evictions — also visible here).
        """

        def bernoulli_error(result):
            (cell,) = [c for c in result.cells if c["sampler"].startswith("bernoulli")]
            return cell["mean_error"]

        attacked = run_scenario("bisection_probe", attack_budget=1.0, **SMALL)
        benign = run_scenario("bisection_probe", attack_budget=0.0, **SMALL)
        assert bernoulli_error(attacked) > bernoulli_error(benign) + 0.05

    def test_oversampling_defends_against_prefix_flood(self):
        """Theorem 1.2 in scenario form: the ln|R|-sized reservoir survives
        the same greedy flood that breaks the small samplers."""
        defended = run_scenario("oversample_defense", **SMALL)
        assert defended.max_violation_rate == 0.0
        attacked = run_scenario("prefix_flood", **SMALL)
        assert defended.peak_discrepancy <= attacked.peak_discrepancy

    def test_static_baseline_budget_invariant(self):
        """The oblivious baseline's stream is budget-independent by design.

        Everything except the attacked-window bookkeeping (which by
        definition depends on the budget) must be bit-identical.
        """
        low = run_scenario("static_baseline", attack_budget=0.0, **SMALL)
        high = run_scenario("static_baseline", attack_budget=1.0, **SMALL)

        def observable(cells):
            return [
                {k: v for k, v in cell.items() if k != "attacked_peak_discrepancy"}
                for cell in cells
            ]

        assert observable(low.cells) == observable(high.cells)

    def test_different_seeds_differ(self):
        one = run_scenario("prefix_flood", seed=1, **SMALL)
        two = run_scenario("prefix_flood", seed=2, **SMALL)
        assert one.cells != two.cells

    def test_run_name_helpers_match_registry(self):
        via_helper = run_prefix_flood(**SMALL)
        via_registry = run_scenario("prefix_flood", **SMALL)
        assert via_helper.to_dict(include_timing=False) == via_registry.to_dict(
            include_timing=False
        )

    def test_run_config_accepts_ad_hoc_scenarios(self):
        """Unregistered configs run through the same engine."""
        config = ScenarioConfig(
            name="ad_hoc",
            stream_length=128,
            universe_size=32,
            trials=2,
            samplers={"reservoir-8": {"family": "reservoir", "capacity": 8}},
            adversary={
                "family": "greedy_density",
                "target": {"kind": "prefix", "bound_fraction": 0.5},
            },
            set_system={"kind": "prefix"},
        )
        result = run_config(config)
        assert result.scenario == "ad_hoc"
        assert result.cells[0]["sampler"] == "reservoir-8"

    def test_sweep_grid_shape_and_determinism(self):
        results = sweep_scenario(
            "reservoir_eviction", budgets=(0.5, 1.0), seeds=(1, 2), **SMALL
        )
        assert len(results) == 4
        grid = {
            (r.config["attack_budget"], r.config["seed"]): r.peak_discrepancy
            for r in results
        }
        assert set(grid) == {(0.5, 1), (0.5, 2), (1.0, 1), (1.0, 2)}
        # A sweep point must equal the equivalent standalone run.
        standalone = run_scenario("reservoir_eviction", attack_budget=0.5, seed=2, **SMALL)
        assert grid[(0.5, 2)] == standalone.peak_discrepancy

    def test_overrides_are_validated(self):
        with pytest.raises(ConfigurationError):
            run_scenario("prefix_flood", attack_budget=1.5)
        with pytest.raises(ConfigurationError):
            run_scenario("prefix_flood", nonsense_field=3)

    def test_result_serialises_to_json(self):
        result = run_scenario("heavy_hitter_spoof", **SMALL)
        import json

        data = json.loads(result.to_json())
        assert data["scenario"] == "heavy_hitter_spoof"
        assert data["config"]["knowledge"] == "updates"
        assert len(data["cells"]) == 2
