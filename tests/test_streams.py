"""Tests for universes and workload generators."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.exceptions import ConfigurationError, UniverseError
from repro.streams import (
    GridUniverse,
    OrderedUniverse,
    clustered_points,
    planted_heavy_hitter_stream,
    query_workload,
    sorted_stream,
    two_phase_stream,
    uniform_stream,
    zipf_stream,
)


class TestOrderedUniverse:
    def test_membership(self):
        universe = OrderedUniverse(10)
        assert 1 in universe and 10 in universe
        assert 0 not in universe and 11 not in universe
        assert "a" not in universe

    def test_len_and_iteration(self):
        universe = OrderedUniverse(5)
        assert len(universe) == 5
        assert list(universe) == [1, 2, 3, 4, 5]

    def test_validate(self):
        universe = OrderedUniverse(5)
        assert universe.validate(3) == 3
        with pytest.raises(UniverseError):
            universe.validate(6)

    def test_associated_set_systems(self):
        universe = OrderedUniverse(8)
        assert universe.prefix_system().cardinality() == 8
        assert universe.interval_system().cardinality() == 36
        assert universe.singleton_system().cardinality() == 8

    def test_log_size(self):
        import math

        assert OrderedUniverse(100).log_size == pytest.approx(math.log(100))

    def test_invalid_size_rejected(self):
        with pytest.raises(ConfigurationError):
            OrderedUniverse(0)


class TestGridUniverse:
    def test_membership(self):
        grid = GridUniverse(4, 2)
        assert (1, 4) in grid
        assert (5, 1) not in grid
        assert (1, 1, 1) not in grid

    def test_len(self):
        assert len(GridUniverse(4, 3)) == 64

    def test_validate(self):
        grid = GridUniverse(4, 2)
        assert grid.validate((2, 3)) == (2, 3)
        with pytest.raises(UniverseError):
            grid.validate((0, 1))

    def test_rectangle_system_and_log_cardinality(self):
        grid = GridUniverse(4, 2)
        system = grid.rectangle_system()
        assert system.cardinality() == 100
        assert grid.log_rectangle_cardinality == pytest.approx(system.log_cardinality())


class TestGenerators:
    def test_uniform_stream_in_range(self, rng):
        stream = uniform_stream(500, 50, seed=rng)
        assert len(stream) == 500
        assert all(1 <= value <= 50 for value in stream)

    def test_sorted_stream(self):
        assert sorted_stream(5) == [1, 2, 3, 4, 5]

    def test_zipf_stream_skewed(self, rng):
        stream = zipf_stream(2000, 1000, exponent=1.5, seed=rng)
        assert len(stream) == 2000
        counts = Counter(stream)
        assert counts[1] > counts.get(500, 0)

    def test_zipf_invalid_exponent(self):
        with pytest.raises(ConfigurationError):
            zipf_stream(10, 10, exponent=0.9)

    def test_planted_heavy_hitters_have_expected_mass(self, rng):
        stream = planted_heavy_hitter_stream(5000, 1000, [7, 13], 0.2, seed=rng)
        counts = Counter(stream)
        assert counts[7] / 5000 == pytest.approx(0.2, abs=0.05)
        assert counts[13] / 5000 == pytest.approx(0.2, abs=0.05)

    def test_planted_heavy_hitters_validation(self):
        with pytest.raises(ConfigurationError):
            planted_heavy_hitter_stream(100, 10, [], 0.2)
        with pytest.raises(ConfigurationError):
            planted_heavy_hitter_stream(100, 10, [1, 2, 3], 0.4)

    def test_clustered_points_in_grid(self, rng):
        points = clustered_points(300, 32, 2, clusters=3, seed=rng)
        assert len(points) == 300
        assert all(1 <= x <= 32 and 1 <= y <= 32 for x, y in points)

    def test_clustered_points_actually_cluster(self, rng):
        points = clustered_points(500, 100, 2, clusters=1, spread=0.01, seed=rng)
        xs = [x for x, _ in points]
        assert max(xs) - min(xs) < 40

    def test_two_phase_stream_shifts_distribution(self, rng):
        stream = two_phase_stream(1000, 100, change_point_fraction=0.5, seed=rng)
        first_half = stream[:500]
        second_half = stream[500:]
        assert max(first_half) <= 50
        assert min(second_half) >= 51

    def test_query_workload_is_hot_skewed(self, rng):
        stream = query_workload(2000, 1000, hot_fraction=0.1, hot_probability=0.8, seed=rng)
        hot = sum(1 for value in stream if value <= 100)
        assert hot / len(stream) == pytest.approx(0.8, abs=0.05)

    def test_generators_reject_empty_streams(self):
        with pytest.raises(ConfigurationError):
            uniform_stream(0, 10)
        with pytest.raises(ConfigurationError):
            sorted_stream(0)
        with pytest.raises(ConfigurationError):
            two_phase_stream(0, 10)

    def test_seeded_generators_reproducible(self):
        assert uniform_stream(50, 20, seed=3) == uniform_stream(50, 20, seed=3)
        assert zipf_stream(50, 20, seed=3) == zipf_stream(50, 20, seed=3)
