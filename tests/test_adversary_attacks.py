"""Tests for the adaptive attacks: bisection, Figure-3, greedy, heavy-hitter, eviction-chaser."""

from __future__ import annotations

import pytest

from repro.adversary import (
    BisectionAdversary,
    EvictionChaserAdversary,
    GreedyDensityAdversary,
    MedianAttackAdversary,
    SwitchingSingletonAdversary,
    ThresholdAttackAdversary,
    recommended_universe_size,
    run_adaptive_game,
    sufficient_universe_size,
)
from repro.exceptions import ConfigurationError
from repro.samplers import BernoulliSampler, ReservoirSampler
from repro.setsystems import ContinuousPrefixSystem, Prefix, PrefixSystem


class TestBisectionAdversary:
    def test_invalid_range_rejected(self):
        with pytest.raises(ConfigurationError):
            BisectionAdversary(1.0, 0.0)

    def test_sample_is_exactly_smallest_elements(self, rng):
        sampler = BernoulliSampler(0.3, seed=rng)
        adversary = BisectionAdversary()
        result = run_adaptive_game(sampler, adversary, 200)
        stream_sorted = sorted(result.stream)
        sample_sorted = sorted(result.sample)
        assert sample_sorted == stream_sorted[: len(sample_sorted)]

    def test_final_error_is_one_minus_sample_fraction(self, rng):
        # Keep the stream short enough that float precision has not run out
        # (the paper's point is precisely that this attack needs precision
        # exponential in the stream length).
        system = ContinuousPrefixSystem()
        sampler = BernoulliSampler(0.2, seed=rng)
        adversary = BisectionAdversary()
        result = run_adaptive_game(sampler, adversary, 40, set_system=system)
        expected = 1.0 - len(result.sample) / len(result.stream)
        assert result.error == pytest.approx(expected, abs=0.03)

    def test_precision_exhaustion_recorded_on_long_streams(self, rng):
        sampler = BernoulliSampler(0.5, seed=rng)
        adversary = BisectionAdversary()
        run_adaptive_game(sampler, adversary, 300)
        assert adversary.precision_exhausted_at is not None
        assert adversary.precision_exhausted_at < 200

    def test_working_range_shrinks_monotonically(self, rng):
        sampler = BernoulliSampler(0.5, seed=rng)
        adversary = BisectionAdversary()
        widths = []
        for round_index in range(1, 40):
            element = adversary.next_element(round_index, sampler.sample)
            update = sampler.process(element)
            adversary.observe_update(update)
            low, high = adversary.working_range
            widths.append(high - low)
        assert all(b <= a for a, b in zip(widths, widths[1:]))

    def test_reset(self):
        adversary = BisectionAdversary()
        adversary.next_element(1, None)
        adversary.reset()
        assert adversary.working_range == (0.0, 1.0)
        assert adversary.precision_exhausted_at is None


class TestThresholdAttack:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ThresholdAttackAdversary(2, 10, 0.5)
        with pytest.raises(ConfigurationError):
            ThresholdAttackAdversary(100, 10, 0.0)
        with pytest.raises(ConfigurationError):
            ThresholdAttackAdversary(100, 0, 0.5)

    def test_recommended_universe_size_in_theorem_window(self):
        n = 500
        size = recommended_universe_size(n)
        assert size > n
        # ln N should be ~ 6 (ln n)^2 when un-clamped.
        import math

        assert math.log(size) == pytest.approx(6 * math.log(n) ** 2, rel=0.05)

    def test_sufficient_universe_size_monotone_in_accepts(self):
        assert sufficient_universe_size(100, 1000, 0.1) > sufficient_universe_size(
            10, 1000, 0.1
        )

    def test_elements_stay_inside_universe(self, rng):
        n = 300
        adversary = ThresholdAttackAdversary.for_bernoulli(0.05, n)
        sampler = BernoulliSampler(0.05, seed=rng)
        result = run_adaptive_game(sampler, adversary, n)
        assert all(1 <= element <= adversary.universe_size for element in result.stream)

    def test_invariant_sampled_below_unsampled(self, rng):
        n = 400
        adversary = ThresholdAttackAdversary.for_bernoulli(0.05, n)
        sampler = BernoulliSampler(0.05, seed=rng)
        result = run_adaptive_game(sampler, adversary, n)
        accepted = [u.element for u in result.updates if u.accepted]
        rejected = [u.element for u in result.updates if not u.accepted]
        if accepted and rejected:
            assert max(accepted) < min(rejected)

    def test_attack_defeats_undersized_bernoulli(self, rng):
        n = 500
        system = PrefixSystem(recommended_universe_size(n))
        probability = 0.02
        sampler = BernoulliSampler(probability, seed=rng)
        adversary = ThresholdAttackAdversary.for_bernoulli(
            probability, n, universe_size=system.universe_size
        )
        result = run_adaptive_game(sampler, adversary, n, set_system=system)
        assert result.error > 0.8

    def test_attack_defeats_undersized_reservoir(self, rng):
        n = 600
        reservoir_size = 5
        adversary = ThresholdAttackAdversary.for_reservoir(reservoir_size, n)
        system = PrefixSystem(adversary.universe_size)
        sampler = ReservoirSampler(reservoir_size, seed=rng)
        result = run_adaptive_game(sampler, adversary, n, set_system=system)
        assert result.error > 0.8
        assert not adversary.attack_failed

    def test_attack_fails_against_large_sample(self, rng):
        # When the sample is a constant fraction of the stream the attack
        # cannot make it unrepresentative (Theorem 1.2 regime).
        n = 500
        sampler = BernoulliSampler(0.8, seed=rng)
        adversary = ThresholdAttackAdversary.for_bernoulli(0.8, n)
        system = PrefixSystem(adversary.universe_size)
        result = run_adaptive_game(sampler, adversary, n, set_system=system)
        assert result.error < 0.3

    def test_reset_restores_range(self):
        adversary = ThresholdAttackAdversary(10**6, 100, 0.1)
        adversary.next_element(1, None)
        adversary.reset()
        assert adversary.working_range == (1, 10**6)
        assert not adversary.attack_failed

    def test_range_exhaustion_detected_on_tiny_universe(self, rng):
        adversary = ThresholdAttackAdversary(universe_size=8, stream_length=200, step_fraction=0.3)
        sampler = BernoulliSampler(0.3, seed=rng)
        run_adaptive_game(sampler, adversary, 200)
        assert adversary.attack_failed


class TestMedianAttack:
    def test_defaults_build_large_universe(self):
        adversary = MedianAttackAdversary(100)
        assert adversary.universe_size >= 2**100
        assert adversary.step_fraction == pytest.approx(0.5)

    def test_drives_sample_to_bottom_of_stream(self, rng):
        n = 300
        adversary = MedianAttackAdversary(n)
        sampler = BernoulliSampler(0.2, seed=rng)
        result = run_adaptive_game(sampler, adversary, n)
        stream_sorted = sorted(result.stream)
        assert sorted(result.sample) == stream_sorted[: len(result.sample)]

    def test_invalid_length_rejected(self):
        with pytest.raises(ConfigurationError):
            MedianAttackAdversary(0)


class TestGreedyDensityAdversary:
    def test_element_supplier_validation(self):
        with pytest.raises(ConfigurationError):
            GreedyDensityAdversary(Prefix(10), in_range_element=50, out_range_element=100)

    def test_reacts_to_observed_gap(self):
        adversary = GreedyDensityAdversary(Prefix(10), in_range_element=1, out_range_element=100)
        # The sample over-represents the range relative to the (still empty)
        # stream, so the widening strategy pushes out-of-range mass.
        assert adversary.next_element(1, [1, 1, 1]) == 100
        # Now the stream under-represents the range relative to an all-out
        # sample view, so it pushes in-range mass.
        assert adversary.next_element(2, [100, 100]) == 1

    def test_oblivious_view_degrades_to_in_range(self):
        adversary = GreedyDensityAdversary(Prefix(10), in_range_element=2, out_range_element=99)
        assert adversary.next_element(1, None) == 2

    def test_cannot_defeat_theorem_sized_reservoir(self, rng):
        from repro.core.bounds import reservoir_adaptive_size

        system = PrefixSystem(256)
        epsilon, delta, n = 0.3, 0.2, 1500
        size = reservoir_adaptive_size(system.log_cardinality(), epsilon, delta).size
        sampler = ReservoirSampler(size, seed=rng)
        adversary = GreedyDensityAdversary(
            Prefix(128), in_range_element=1, out_range_element=256
        )
        result = run_adaptive_game(sampler, adversary, n, set_system=system, epsilon=epsilon)
        assert result.succeeded

    def test_reset(self):
        adversary = GreedyDensityAdversary(Prefix(10), in_range_element=1, out_range_element=99)
        adversary.next_element(1, [])
        adversary.reset()
        assert adversary._stream_length == 0


class TestSwitchingSingletonAdversary:
    def test_invalid_universe_rejected(self):
        with pytest.raises(ConfigurationError):
            SwitchingSingletonAdversary(1)

    def test_switches_target_after_acceptance(self, rng):
        adversary = SwitchingSingletonAdversary(100)
        sampler = BernoulliSampler(1.0, seed=rng)
        first = adversary.next_element(1, sampler.sample)
        adversary.observe_update(sampler.process(first))
        second = adversary.next_element(2, sampler.sample)
        assert first == 1 and second == 2
        assert adversary.burnt_targets == [1]

    def test_keeps_target_while_uncaught(self, rng):
        adversary = SwitchingSingletonAdversary(100)
        sampler = BernoulliSampler(1e-9, seed=rng)
        elements = []
        for i in range(1, 21):
            element = adversary.next_element(i, sampler.sample)
            adversary.observe_update(sampler.process(element))
            elements.append(element)
        assert set(elements) == {1}

    def test_revisit_evicted_returns_to_flushed_targets(self, rng):
        adversary = SwitchingSingletonAdversary(100, revisit_evicted=True)
        # Simulate: target 1 accepted, then later the sample no longer holds 1.
        adversary.observe_update(
            type("U", (), {"element": 1, "accepted": True, "evicted": None})()
        )
        assert adversary.next_element(5, observed_sample=[2, 3]) == 1

    def test_reset(self):
        adversary = SwitchingSingletonAdversary(10)
        adversary.observe_update(
            type("U", (), {"element": 1, "accepted": True, "evicted": None})()
        )
        adversary.reset()
        assert adversary.current_target == 1
        assert adversary.burnt_targets == []


class TestEvictionChaser:
    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            EvictionChaserAdversary(Prefix(10), 1, 99, reservoir_size=0)
        with pytest.raises(ConfigurationError):
            EvictionChaserAdversary(Prefix(10), 1, 99, reservoir_size=5, switch_threshold=0.0)

    def test_early_rounds_send_out_of_range(self):
        adversary = EvictionChaserAdversary(Prefix(10), 1, 99, reservoir_size=50)
        assert adversary.next_element(1, None) == 99

    def test_late_rounds_send_in_range(self):
        adversary = EvictionChaserAdversary(Prefix(10), 1, 99, reservoir_size=5)
        assert adversary.next_element(1000, None) == 1

    def test_backs_off_after_in_range_acceptance(self, rng):
        adversary = EvictionChaserAdversary(Prefix(10), 1, 99, reservoir_size=5)
        adversary.observe_update(
            type("U", (), {"element": 1, "accepted": True, "evicted": None})()
        )
        assert adversary.next_element(1000, None) == 99
        # The back-off lasts one round.
        assert adversary.next_element(1001, None) == 1

    def test_cannot_defeat_theorem_sized_reservoir(self, rng):
        from repro.core.bounds import reservoir_adaptive_size

        system = PrefixSystem(256)
        epsilon, delta, n = 0.3, 0.2, 1500
        size = reservoir_adaptive_size(system.log_cardinality(), epsilon, delta).size
        sampler = ReservoirSampler(size, seed=rng)
        adversary = EvictionChaserAdversary(
            Prefix(128), 1, 256, reservoir_size=size
        )
        result = run_adaptive_game(sampler, adversary, n, set_system=system, epsilon=epsilon)
        assert result.succeeded
