"""Property-based fuzzing of the scenario configuration space.

``repro.scenarios.fuzz`` samples random valid configs spanning samplers ×
adversaries × campaigns × sharding × knowledge × cadence and checks the four
registry-wide invariants (bit-reproducibility, budget monotonicity, chunking
independence, sharded/unsharded agreement).  This module drives it two ways:

* Hypothesis draws :class:`FuzzChoices` through :func:`choices_strategy` and
  asserts no invariant fails on any drawn config — the example budget comes
  from the ``fuzz-smoke`` / ``fuzz-nightly`` profiles in ``conftest.py``;
* the numpy-based :func:`random_choices` / :func:`fuzz` front door (what
  ``repro-experiments scenario fuzz`` runs) is pinned for distinctness,
  report shape and failure surfacing.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given

from repro.scenarios import fuzz as fuzz_module
from repro.scenarios.builders import MERGEABLE_SAMPLER_FAMILIES
from repro.scenarios.fuzz import (
    ADVERSARY_POOL,
    CAMPAIGN_POOL,
    INVARIANTS,
    SAMPLER_POOL,
    FuzzChoices,
    InvariantResult,
    build_fuzz_config,
    check_invariants,
    choices_strategy,
    fuzz,
    random_choices,
)


class TestChoices:
    def test_adversary_and_campaign_are_mutually_exclusive(self):
        kwargs = dict(
            stream_length=64,
            universe_size=16,
            knowledge="full",
            set_system="prefix",
            sampler="bernoulli",
            sites=None,
            strategy=None,
            decision_period=None,
            seed=0,
        )
        with pytest.raises(ValueError, match="exactly one"):
            FuzzChoices(adversary="uniform", campaign="interleaved_pair", **kwargs)
        with pytest.raises(ValueError, match="exactly one"):
            FuzzChoices(adversary=None, campaign=None, **kwargs)

    def test_unmergeable_samplers_cannot_be_sharded(self):
        with pytest.raises(ValueError, match="cannot be sharded"):
            FuzzChoices(
                stream_length=64,
                universe_size=16,
                knowledge="full",
                set_system="prefix",
                sampler="weighted_reservoir",
                sites=2,
                strategy="hash",
                adversary="uniform",
                campaign=None,
                decision_period=None,
                seed=0,
            )

    def test_random_choices_are_always_valid(self):
        rng = np.random.default_rng(11)
        saw_campaign = saw_sharded = False
        for index in range(60):
            choices = random_choices(rng, seed=index)
            config = build_fuzz_config(choices)  # validates via ScenarioConfig
            assert config.trials == 1
            assert config.seed == index
            saw_campaign = saw_campaign or choices.campaign is not None
            saw_sharded = saw_sharded or choices.sites is not None
        assert saw_campaign and saw_sharded, "pools are not being explored"


class TestHypothesisStrategy:
    @given(choices=choices_strategy())
    def test_drawn_choices_build_valid_configs(self, choices):
        config = build_fuzz_config(choices)
        assert config.samplers and config.trials == 1
        if choices.sites is not None:
            family = SAMPLER_POOL[choices.sampler]["family"]
            assert family in MERGEABLE_SAMPLER_FAMILIES
            assert config.sharding == {
                "sites": choices.sites,
                "strategy": choices.strategy,
            }
        if choices.campaign is not None:
            assert config.campaign is not None
            assert config.adversary_label.startswith("campaign:")
        else:
            assert config.campaign is None

    @given(choices=choices_strategy())
    def test_invariants_hold_on_every_drawn_config(self, choices):
        """The tentpole property: all four registry-wide invariants, on a
        random point of the full scenario knob space."""
        config = build_fuzz_config(choices)
        outcomes = check_invariants(config)
        assert [outcome.name for outcome in outcomes] == list(INVARIANTS)
        failures = [outcome for outcome in outcomes if outcome.status == "failed"]
        assert not failures, [(f.name, f.detail) for f in failures]


class TestFuzzBatch:
    def test_report_shape_and_distinctness(self):
        report = fuzz(6, seed=424242)
        assert report.ok
        assert report.examples == 6
        # Per-config seeds are base + index, so configs are pairwise distinct.
        assert report.distinct_configs == 6
        assert set(report.invariants) == set(INVARIANTS)
        for counts in report.invariants.values():
            assert counts["failed"] == 0
            assert counts["passed"] + counts["skipped"] == 6
        assert "all invariants held" in report.summary()
        data = report.to_dict()
        assert data["ok"] is True and data["failures"] == []

    def test_nightly_budget_yields_200_distinct_configs(self):
        """The acceptance floor: 200 draws, 200 distinct valid configs.

        Build-only (no engine runs), so this is cheap enough for every CI
        run; the nightly workflow executes the invariants on the same draws
        via ``scenario fuzz --count 200``.
        """
        rng = np.random.default_rng(0)
        seen = set()
        for index in range(200):
            config = build_fuzz_config(random_choices(rng, seed=index))
            seen.add(config.to_json(indent=None))
        assert len(seen) == 200

    def test_failures_are_surfaced(self, monkeypatch):
        def broken(config):
            return [
                InvariantResult("bit_reproducibility", "failed", "synthetic break"),
                InvariantResult("budget_monotonicity", "passed"),
                InvariantResult("chunking_independence", "skipped", "gated"),
                InvariantResult("sharded_agreement", "skipped", "unsharded"),
            ]

        monkeypatch.setattr(fuzz_module, "check_invariants", broken)
        report = fuzz_module.fuzz(2, seed=1)
        assert not report.ok
        assert len(report.failures) == 2
        assert report.invariants["bit_reproducibility"]["failed"] == 2
        assert "synthetic break" in report.summary()
        assert report.failures[0]["choices"]["seed"] == 1

    def test_pools_cover_the_documented_space(self):
        """The pool contracts the docs advertise: every campaign mode, both
        solo oblivious and cadenced adversaries, all mergeable families."""
        modes = {spec["mode"] for spec in CAMPAIGN_POOL.values()}
        assert modes == {"phased", "interleaved"}
        families = {spec["family"] for spec in ADVERSARY_POOL.values()}
        assert "uniform" in families and "greedy_density" in families
        sampler_families = {spec["family"] for spec in SAMPLER_POOL.values()}
        assert set(MERGEABLE_SAMPLER_FAMILIES) <= sampler_families
