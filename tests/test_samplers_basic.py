"""Tests for Bernoulli, reservoir, weighted-reservoir, priority and sliding-window samplers."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.samplers import (
    BernoulliSampler,
    PrioritySampler,
    ReservoirSampler,
    SlidingWindowSampler,
    WeightedReservoirSampler,
)


class TestBernoulliSampler:
    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            BernoulliSampler(0.0)
        with pytest.raises(ConfigurationError):
            BernoulliSampler(1.5)

    def test_probability_one_keeps_everything(self):
        sampler = BernoulliSampler(1.0, seed=0)
        sampler.extend(range(50))
        assert list(sampler.sample) == list(range(50))

    def test_sample_is_subsequence_of_stream(self, rng):
        sampler = BernoulliSampler(0.3, seed=rng)
        stream = list(rng.integers(0, 100, size=200))
        sampler.extend(stream)
        iterator = iter(stream)
        assert all(any(x == s for x in iterator) for s in sampler.sample)

    def test_sample_size_concentrates(self):
        sizes = []
        for seed in range(30):
            sampler = BernoulliSampler(0.2, seed=seed)
            sampler.extend(range(1000))
            sizes.append(sampler.sample_size)
        assert 150 < np.mean(sizes) < 250

    def test_updates_report_acceptance(self):
        sampler = BernoulliSampler(1.0, seed=0)
        update = sampler.process("x")
        assert update.accepted and update.element == "x" and update.round_index == 1

    def test_reset_clears_state(self):
        sampler = BernoulliSampler(0.5, seed=1)
        sampler.extend(range(20))
        sampler.reset()
        assert sampler.sample_size == 0
        assert sampler.rounds_processed == 0

    def test_expected_sample_size_helpers(self):
        sampler = BernoulliSampler(0.25)
        assert sampler.expected_sample_size(1000) == pytest.approx(250)
        assert sampler.expected_sample_size_per_element == 0.25
        with pytest.raises(ConfigurationError):
            sampler.expected_sample_size(-1)

    def test_seeded_runs_are_reproducible(self):
        first = BernoulliSampler(0.5, seed=7)
        second = BernoulliSampler(0.5, seed=7)
        first.extend(range(100))
        second.extend(range(100))
        assert list(first.sample) == list(second.sample)


class TestReservoirSampler:
    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ReservoirSampler(0)

    def test_invalid_eviction_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            ReservoirSampler(5, eviction="random-ish")

    def test_fills_up_to_capacity_then_stays_fixed(self):
        sampler = ReservoirSampler(10, seed=0)
        sampler.extend(range(5))
        assert sampler.sample_size == 5
        sampler.extend(range(5, 100))
        assert sampler.sample_size == 10

    def test_sample_subset_of_stream(self, rng):
        sampler = ReservoirSampler(8, seed=rng)
        stream = list(rng.integers(0, 1000, size=300))
        sampler.extend(stream)
        counts = Counter(stream)
        assert all(counts[value] > 0 for value in sampler.sample)

    def test_acceptance_probability_schedule(self):
        sampler = ReservoirSampler(10)
        assert sampler.acceptance_probability(5) == 1.0
        assert sampler.acceptance_probability(20) == pytest.approx(0.5)
        with pytest.raises(ConfigurationError):
            sampler.acceptance_probability(0)

    def test_uniformity_each_element_equally_likely(self):
        # Each of the n elements should appear in the final reservoir with
        # probability k/n; check the empirical inclusion frequency of the
        # first and the last element across many runs.
        n, k, runs = 60, 6, 800
        first_in, last_in = 0, 0
        for seed in range(runs):
            sampler = ReservoirSampler(k, seed=seed)
            sampler.extend(range(n))
            sample = set(sampler.sample)
            first_in += 0 in sample
            last_in += (n - 1) in sample
        expected = k / n
        assert first_in / runs == pytest.approx(expected, abs=0.05)
        assert last_in / runs == pytest.approx(expected, abs=0.05)

    def test_total_accepted_scales_like_k_log_n(self):
        n, k = 5000, 20
        accepted = []
        for seed in range(5):
            sampler = ReservoirSampler(k, seed=seed)
            sampler.extend(range(n))
            accepted.append(sampler.total_accepted)
        expected = k * (1 + np.log(n / k))
        assert expected * 0.5 < np.mean(accepted) < expected * 2.0

    def test_eviction_reported_in_update(self):
        sampler = ReservoirSampler(1, seed=0)
        sampler.process("a")
        accepted_updates = [sampler.process(chr(98 + i)) for i in range(50)]
        evictions = [u.evicted for u in accepted_updates if u.accepted]
        assert all(evicted is not None for evicted in evictions)

    def test_fifo_eviction_removes_oldest(self):
        sampler = ReservoirSampler(2, seed=0, eviction="fifo")
        sampler.extend([1, 2])
        # Force acceptance by processing many elements and checking that once
        # something is evicted it is the oldest surviving entry.
        for value in range(3, 300):
            before = list(sampler._insertion_order)
            update = sampler.process(value)
            if update.accepted:
                assert update.evicted is not None
                break

    def test_min_value_eviction_removes_smallest(self):
        sampler = ReservoirSampler(3, seed=0, eviction="min-value")
        sampler.extend([10, 20, 30])
        for value in range(31, 500):
            update = sampler.process(value)
            if update.accepted:
                assert update.evicted == min([10, 20, 30] + list(range(31, value)))
                break

    def test_reset(self):
        sampler = ReservoirSampler(4, seed=0)
        sampler.extend(range(20))
        sampler.reset()
        assert sampler.sample_size == 0
        assert sampler.total_accepted == 0


class TestWeightedReservoirSampler:
    def test_unit_weights_fixed_size(self, rng):
        sampler = WeightedReservoirSampler(10, seed=rng)
        sampler.extend(range(100))
        assert sampler.sample_size == 10

    def test_nonpositive_weight_rejected(self):
        sampler = WeightedReservoirSampler(3, weight=lambda x: 0.0)
        with pytest.raises(ConfigurationError):
            sampler.process(1)

    def test_heavily_weighted_element_almost_always_kept(self):
        kept = 0
        for seed in range(50):
            sampler = WeightedReservoirSampler(
                5, weight=lambda x: 1000.0 if x == "vip" else 1.0, seed=seed
            )
            sampler.extend(["vip"] + list(range(100)))
            kept += "vip" in sampler.sample
        assert kept >= 45

    def test_smallest_key_tracks_heap_root(self, rng):
        sampler = WeightedReservoirSampler(3, seed=rng)
        assert sampler.smallest_key is None
        sampler.extend(range(10))
        assert 0.0 < sampler.smallest_key <= 1.0

    def test_reset(self, rng):
        sampler = WeightedReservoirSampler(3, seed=rng)
        sampler.extend(range(10))
        sampler.reset()
        assert sampler.sample_size == 0


class TestPrioritySampler:
    def test_fixed_size(self, rng):
        sampler = PrioritySampler(7, seed=rng)
        sampler.extend(range(100))
        assert sampler.sample_size == 7

    def test_uniform_inclusion_under_unit_weights(self):
        n, k, runs = 40, 4, 600
        include_first = 0
        for seed in range(runs):
            sampler = PrioritySampler(k, seed=seed)
            sampler.extend(range(n))
            include_first += 0 in sampler.sample
        assert include_first / runs == pytest.approx(k / n, abs=0.06)

    def test_invalid_weight_rejected(self):
        sampler = PrioritySampler(2, weight=lambda x: -1.0)
        with pytest.raises(ConfigurationError):
            sampler.process(1)

    def test_reset(self, rng):
        sampler = PrioritySampler(2, seed=rng)
        sampler.extend(range(5))
        sampler.reset()
        assert sampler.sample_size == 0


class TestSlidingWindowSampler:
    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowSampler(0, 10)
        with pytest.raises(ConfigurationError):
            SlidingWindowSampler(10, 5)

    def test_sample_size_bounded_by_capacity(self, rng):
        sampler = SlidingWindowSampler(5, 50, seed=rng)
        sampler.extend(range(200))
        assert sampler.sample_size <= 5

    def test_sample_only_contains_live_window_elements(self, rng):
        window = 30
        sampler = SlidingWindowSampler(5, window, seed=rng)
        stream = list(range(500))
        sampler.extend(stream)
        live = set(stream[-window:])
        assert set(sampler.sample) <= live

    def test_memory_footprint_stays_modest(self, rng):
        sampler = SlidingWindowSampler(4, 100, seed=rng)
        sampler.extend(range(2000))
        # O(k log w) with small constants; far below the window size.
        assert sampler.memory_footprint() <= 60

    def test_reset(self, rng):
        sampler = SlidingWindowSampler(3, 10, seed=rng)
        sampler.extend(range(20))
        sampler.reset()
        assert sampler.sample_size == 0
