"""Tests for the vectorised ``extend()`` fast paths of the paper's samplers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.samplers import BernoulliSampler, ReservoirSampler


class TestBernoulliExtend:
    def test_bit_identical_to_sequential_processing(self):
        """Batch coin flips consume the generator exactly like scalar flips."""
        sequential = BernoulliSampler(0.3, seed=42)
        batched = BernoulliSampler(0.3, seed=42)
        data = list(range(1, 2001))
        loop_updates = [sequential.process(element) for element in data]
        fast_updates = batched.extend(data)
        assert list(sequential.sample) == list(batched.sample)
        assert loop_updates == fast_updates
        assert sequential.rounds_processed == batched.rounds_processed

    def test_chunked_extend_equals_one_big_extend(self):
        one = BernoulliSampler(0.2, seed=9)
        many = BernoulliSampler(0.2, seed=9)
        data = list(range(500))
        one.extend(data)
        for start in range(0, 500, 77):
            many.extend(data[start : start + 77])
        assert list(one.sample) == list(many.sample)

    def test_updates_suppressed(self):
        sampler = BernoulliSampler(0.5, seed=1)
        assert sampler.extend(range(100), updates=False) is None
        assert sampler.rounds_processed == 100

    def test_empty_batch(self):
        sampler = BernoulliSampler(0.5, seed=1)
        assert sampler.extend([]) == []
        assert sampler.extend([], updates=False) is None
        assert sampler.rounds_processed == 0


class TestReservoirExtend:
    def test_per_element_update_semantics(self):
        sampler = ReservoirSampler(50, seed=7)
        data = list(range(1, 3001))
        updates = sampler.extend(data)
        assert len(updates) == len(data)
        assert [u.round_index for u in updates] == list(range(1, 3001))
        assert [u.element for u in updates] == data
        # The first k rounds fill the reservoir without evictions.
        assert all(u.accepted and u.evicted is None for u in updates[:50])
        # After the fill, every acceptance evicts exactly one element.
        for update in updates[50:]:
            assert update.accepted == (update.evicted is not None)
        assert sampler.total_accepted == sum(u.accepted for u in updates)
        assert sampler.sample_size == 50
        assert sampler.rounds_processed == 3000

    def test_sample_is_subset_of_stream_and_replays_reproducibly(self):
        data = list(range(1, 1001))
        first = ReservoirSampler(20, seed=3)
        second = ReservoirSampler(20, seed=3)
        first.extend(data, updates=False)
        second.extend(data, updates=False)
        assert list(first.sample) == list(second.sample)
        assert set(first.sample) <= set(data)

    def test_updates_false_builds_same_sample(self):
        with_updates = ReservoirSampler(15, seed=8)
        without_updates = ReservoirSampler(15, seed=8)
        data = list(range(400))
        with_updates.extend(data)
        without_updates.extend(data, updates=False)
        assert list(with_updates.sample) == list(without_updates.sample)
        assert with_updates.total_accepted == without_updates.total_accepted

    def test_extend_then_process_continues_the_round_count(self):
        sampler = ReservoirSampler(5, seed=0)
        sampler.extend(range(100), updates=False)
        update = sampler.process(999)
        assert update.round_index == 101

    def test_inclusion_probability_is_uniform(self):
        """Each stream position lands in the final reservoir w.p. ~ k/n."""
        n, k, trials = 120, 12, 400
        counts = np.zeros(n)
        for seed in range(trials):
            sampler = ReservoirSampler(k, seed=seed)
            sampler.extend(range(n), updates=False)
            for value in sampler.sample:
                counts[value] += 1
        rates = counts / trials
        expected = k / n
        # Binomial(400, 0.1) per position: 5 sigma ~ 0.075.
        assert np.all(np.abs(rates - expected) < 0.075)
        assert abs(rates.mean() - expected) < 0.01

    def test_non_uniform_eviction_policies_fall_back(self):
        fifo = ReservoirSampler(10, seed=1, eviction="fifo")
        updates = fifo.extend(range(1, 101))
        assert len(updates) == 100
        assert fifo.sample_size == 10
        # FIFO keeps evicting the oldest survivor; the sequential fallback's
        # behaviour must match processing one element at a time.
        replay = ReservoirSampler(10, seed=1, eviction="fifo")
        for element in range(1, 101):
            replay.process(element)
        assert list(replay.sample) == list(fifo.sample)

    def test_fill_phase_spanning_chunks(self):
        sampler = ReservoirSampler(30, seed=2)
        sampler.extend(range(10), updates=False)
        assert sampler.sample_size == 10
        sampler.extend(range(10, 200), updates=False)
        assert sampler.sample_size == 30
        assert sampler.rounds_processed == 200
