"""Property tests pinning ``extend()`` to sequential ``process()`` for every
sampler, plus chunked-vs-per-element equivalence for both game runners.

Two equivalence strengths appear below, matching each kernel's contract:

* **bit-identical** — same seed, same chunking-independent state:
  Bernoulli, weighted reservoir, priority, sliding window, Misra–Gries,
  KLL, merge-reduce.  (The plain reservoir consumes the bit stream in batch
  order, so its ``extend`` is distribution-equivalent rather than
  bit-identical — documented since PR 1.)
* **property-equivalent** — the Greenwald–Khanna bulk merge keeps the
  ``epsilon * n`` rank guarantee but not tuple-for-tuple equality.
"""

from __future__ import annotations

import bisect

import numpy as np
import pytest

from repro.adversary import (
    StaticAdversary,
    UniformAdversary,
    run_adaptive_game,
    run_continuous_game,
)
from repro.samplers import (
    BernoulliSampler,
    GreenwaldKhannaSketch,
    KLLSketch,
    MergeReduceSummary,
    MisraGriesSummary,
    PrioritySampler,
    ReservoirSampler,
    SampleUpdate,
    SlidingWindowSampler,
    UpdateBatch,
    WeightedReservoirSampler,
)
from repro.setsystems import PrefixSystem

CHUNK_PLANS = [[1] * 20 + [97, 503, 380], [1500], [250] * 6, [1, 999, 1, 499]]


def _stream(seed: int, n: int = 1500, universe: int = 300) -> list[int]:
    rng = np.random.default_rng(seed)
    return [int(value) for value in rng.integers(1, universe + 1, size=n)]


def _feed_chunks(sampler, data, plan, updates=False):
    cursor = 0
    for size in plan:
        if cursor >= len(data):
            break
        sampler.extend(data[cursor : cursor + size], updates=updates)
        cursor += size
    if cursor < len(data):
        sampler.extend(data[cursor:], updates=updates)


def _feed_chunks_sketch(sketch, data, plan):
    """Like :func:`_feed_chunks` for sketches, whose extend has no updates flag."""
    cursor = 0
    for size in plan:
        if cursor >= len(data):
            break
        sketch.extend(data[cursor : cursor + size])
        cursor += size
    if cursor < len(data):
        sketch.extend(data[cursor:])


class TestUpdateBatch:
    def test_lazy_views_and_equality(self):
        records = [
            SampleUpdate(1, "a", True),
            SampleUpdate(2, "b", False),
            SampleUpdate(3, "c", True, evicted="a"),
        ]
        batch = UpdateBatch.from_updates(records)
        assert len(batch) == 3
        assert list(batch) == records
        assert batch == records
        assert batch[2].evicted == "a"
        assert batch[-1] == records[-1]
        assert batch.accepted_count == 2
        assert batch.eviction_count == 1
        assert batch.accepted_elements() == ["a", "c"]

    def test_slicing_preserves_evictions(self):
        records = [SampleUpdate(i, i, True, evicted=i - 1 if i > 3 else None) for i in range(1, 8)]
        batch = UpdateBatch.from_updates(records)
        assert batch[2:6] == records[2:6]

    def test_concat(self):
        first = UpdateBatch.from_updates([SampleUpdate(1, "x", True)])
        second = UpdateBatch.from_updates(
            [SampleUpdate(2, "y", True, evicted="x"), SampleUpdate(3, "z", False)]
        )
        merged = UpdateBatch.concat([first, second])
        assert len(merged) == 3
        assert merged.evictions == {1: "x"}
        assert UpdateBatch.concat([]) == []

    def test_out_of_range_index(self):
        batch = UpdateBatch.from_updates([SampleUpdate(1, "x", True)])
        with pytest.raises(IndexError):
            batch[3]

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            UpdateBatch(np.arange(3), ["a"], np.ones(3, dtype=bool))


class TestBernoulliExtend:
    def test_bit_identical_to_sequential_processing(self):
        sequential = BernoulliSampler(0.3, seed=42)
        batched = BernoulliSampler(0.3, seed=42)
        data = list(range(1, 2001))
        loop_updates = [sequential.process(element) for element in data]
        fast_updates = batched.extend(data)
        assert list(sequential.sample) == list(batched.sample)
        assert fast_updates == loop_updates
        assert sequential.rounds_processed == batched.rounds_processed

    @pytest.mark.parametrize("plan", CHUNK_PLANS)
    def test_any_chunking_is_bit_identical(self, plan):
        data = _stream(1)
        reference = BernoulliSampler(0.2, seed=9)
        chunked = BernoulliSampler(0.2, seed=9)
        for element in data:
            reference.process(element)
        _feed_chunks(chunked, data, plan)
        assert list(reference.sample) == list(chunked.sample)

    def test_updates_suppressed_and_empty_batch(self):
        sampler = BernoulliSampler(0.5, seed=1)
        assert sampler.extend(range(100), updates=False) is None
        assert sampler.rounds_processed == 100
        assert sampler.extend([]) == []
        assert sampler.extend([], updates=False) is None


class TestReservoirExtend:
    def test_per_element_update_semantics(self):
        sampler = ReservoirSampler(50, seed=7)
        data = list(range(1, 3001))
        updates = sampler.extend(data)
        assert len(updates) == len(data)
        assert [u.round_index for u in updates] == list(range(1, 3001))
        assert [u.element for u in updates] == data
        # The first k rounds fill the reservoir without evictions.
        assert all(u.accepted and u.evicted is None for u in updates[:50])
        # After the fill, every acceptance evicts exactly one element.
        for update in updates[50:]:
            assert update.accepted == (update.evicted is not None)
        assert sampler.total_accepted == updates.accepted_count
        assert sampler.sample_size == 50
        assert sampler.rounds_processed == 3000

    def test_updates_false_builds_same_sample(self):
        with_updates = ReservoirSampler(15, seed=8)
        without_updates = ReservoirSampler(15, seed=8)
        data = list(range(400))
        with_updates.extend(data)
        without_updates.extend(data, updates=False)
        assert list(with_updates.sample) == list(without_updates.sample)
        assert with_updates.total_accepted == without_updates.total_accepted

    def test_extend_then_process_continues_the_round_count(self):
        sampler = ReservoirSampler(5, seed=0)
        sampler.extend(range(100), updates=False)
        update = sampler.process(999)
        assert update.round_index == 101

    def test_inclusion_probability_is_uniform(self):
        """Each stream position lands in the final reservoir w.p. ~ k/n."""
        n, k, trials = 120, 12, 400
        counts = np.zeros(n)
        for seed in range(trials):
            sampler = ReservoirSampler(k, seed=seed)
            sampler.extend(range(n), updates=False)
            for value in sampler.sample:
                counts[value] += 1
        rates = counts / trials
        expected = k / n
        # Binomial(400, 0.1) per position: 5 sigma ~ 0.075.
        assert np.all(np.abs(rates - expected) < 0.075)
        assert abs(rates.mean() - expected) < 0.01

    def test_non_uniform_eviction_policies_fall_back(self):
        fifo = ReservoirSampler(10, seed=1, eviction="fifo")
        updates = fifo.extend(range(1, 101))
        assert len(updates) == 100
        assert fifo.sample_size == 10
        replay = ReservoirSampler(10, seed=1, eviction="fifo")
        for element in range(1, 101):
            replay.process(element)
        assert list(replay.sample) == list(fifo.sample)

    def test_fill_phase_spanning_chunks(self):
        sampler = ReservoirSampler(30, seed=2)
        sampler.extend(range(10), updates=False)
        assert sampler.sample_size == 10
        sampler.extend(range(10, 200), updates=False)
        assert sampler.sample_size == 30
        assert sampler.rounds_processed == 200


class TestWeightedReservoirExtend:
    @pytest.mark.parametrize("capacity", [3, 25])
    @pytest.mark.parametrize("plan", CHUNK_PLANS)
    def test_bit_identical_to_sequential(self, capacity, plan):
        data = _stream(11)
        sequential = WeightedReservoirSampler(capacity, seed=4)
        chunked = WeightedReservoirSampler(capacity, seed=4)
        seq_updates = [sequential.process(element) for element in data]
        _feed_chunks(chunked, data, plan, updates=True)
        assert sorted(map(str, sequential.sample)) == sorted(map(str, chunked.sample))
        assert sequential._heap == chunked._heap
        assert sequential.rounds_processed == chunked.rounds_processed
        assert sum(u.accepted for u in seq_updates) >= capacity

    def test_update_records_match_sequential(self):
        data = _stream(12, n=600)
        sequential = WeightedReservoirSampler(10, seed=5)
        batched = WeightedReservoirSampler(10, seed=5)
        seq_updates = [sequential.process(element) for element in data]
        batch = batched.extend(data)
        assert batch == seq_updates

    def test_custom_weights_bit_identical(self):
        weight = lambda element: 0.5 + (element % 7)  # noqa: E731
        data = _stream(13, n=800)
        sequential = WeightedReservoirSampler(12, weight=weight, seed=6)
        batched = WeightedReservoirSampler(12, weight=weight, seed=6)
        for element in data:
            sequential.process(element)
        batched.extend(data, updates=False)
        assert sequential._heap == batched._heap

    def test_invalid_weight_rejected(self):
        sampler = WeightedReservoirSampler(4, weight=lambda _e: 0.0, seed=1)
        with pytest.raises(Exception):
            sampler.extend([1, 2, 3])


class TestPriorityExtend:
    @pytest.mark.parametrize("plan", CHUNK_PLANS)
    def test_bit_identical_to_sequential(self, plan):
        data = _stream(21)
        sequential = PrioritySampler(20, seed=8)
        chunked = PrioritySampler(20, seed=8)
        for element in data:
            sequential.process(element)
        _feed_chunks(chunked, data, plan)
        assert sequential._heap == chunked._heap
        assert sequential.rounds_processed == chunked.rounds_processed

    def test_update_records_match_sequential(self):
        data = _stream(22, n=700)
        sequential = PrioritySampler(15, seed=3)
        batched = PrioritySampler(15, seed=3)
        seq_updates = [sequential.process(element) for element in data]
        assert batched.extend(data) == seq_updates


class TestSlidingWindowExtend:
    @pytest.mark.parametrize("capacity,window", [(4, 30), (10, 100), (8, 5000)])
    @pytest.mark.parametrize("plan", CHUNK_PLANS)
    def test_bit_identical_state(self, capacity, window, plan):
        data = _stream(31)
        sequential = SlidingWindowSampler(capacity, window, seed=14)
        chunked = SlidingWindowSampler(capacity, window, seed=14)
        for element in data:
            sequential.process(element)
        _feed_chunks(chunked, data, plan)
        assert sequential._candidates == chunked._candidates
        assert list(sequential.sample) == list(chunked.sample)
        assert sequential.rounds_processed == chunked.rounds_processed

    def test_updates_true_takes_sequential_path(self):
        data = _stream(32, n=400)
        sequential = SlidingWindowSampler(5, 50, seed=2)
        batched = SlidingWindowSampler(5, 50, seed=2)
        seq_updates = [sequential.process(element) for element in data]
        assert batched.extend(data, updates=True) == seq_updates

    def test_window_larger_than_stream(self):
        sampler = SlidingWindowSampler(6, 10_000, seed=1)
        sampler.extend(range(500), updates=False)
        assert sampler.sample_size == 6
        assert sampler.rounds_processed == 500


class TestMisraGriesExtend:
    @pytest.mark.parametrize("plan", CHUNK_PLANS)
    def test_bit_identical_counters(self, plan):
        # Heavy-hitter-ish stream: a few frequent keys plus noise, which
        # exercises both the bulk path (all-tracked chunks) and the fallback.
        rng = np.random.default_rng(41)
        data = [int(v) for v in rng.zipf(1.3, size=1500) if v < 10_000]
        sequential = MisraGriesSummary(8)
        chunked = MisraGriesSummary(8)
        for element in data:
            sequential.update(element)
        _feed_chunks_sketch(chunked, data, plan)
        assert sequential._counters == chunked._counters
        assert sequential.count == chunked.count

    def test_all_distinct_stream_matches(self):
        data = list(range(500))
        sequential = MisraGriesSummary(5)
        chunked = MisraGriesSummary(5)
        for element in data:
            sequential.update(element)
        chunked.extend(data)
        assert sequential._counters == chunked._counters

    def test_frequency_guarantee_after_bulk(self):
        data = [1] * 400 + _stream(42, n=600, universe=50)
        summary = MisraGriesSummary(20)
        summary.extend(data)
        lower, upper = summary.frequency_bounds(1)
        true = data.count(1)
        assert lower <= true <= upper


class TestKLLExtend:
    @pytest.mark.parametrize("plan", CHUNK_PLANS)
    def test_bit_identical_compactors(self, plan):
        data = [float(v) for v in _stream(51, n=1500)]
        sequential = KLLSketch(64, seed=7)
        chunked = KLLSketch(64, seed=7)
        for value in data:
            sequential.update(value)
        _feed_chunks_sketch(chunked, data, plan)
        assert sequential._compactors == chunked._compactors
        assert sequential.count == chunked.count

    def test_rank_guarantee_after_bulk(self):
        rng = np.random.default_rng(52)
        data = [float(v) for v in rng.normal(size=4000)]
        sketch = KLLSketch(128, seed=1)
        sketch.extend(data)
        ordered = sorted(data)
        for q in (-1.0, 0.0, 1.0):
            true_rank = bisect.bisect_right(ordered, q)
            assert abs(sketch.rank_query(q) - true_rank) <= 3 * sketch.estimated_epsilon * len(data)


class TestGreenwaldKhannaExtend:
    @pytest.mark.parametrize("seed", [61, 62, 63])
    def test_rank_guarantee_on_bulk_path(self, seed):
        """The bulk merge keeps the same rank guarantee as per-element
        insertion.

        ``rank_query`` reports the one-sided minimum rank, so the worst-case
        deviation the implementation guarantees — on either path — is
        ``2 * epsilon * n`` (the ``g + delta`` invariant), not ``epsilon * n``.
        """
        epsilon = 0.05
        rng = np.random.default_rng(seed)
        data = [float(v) for v in rng.integers(1, 1000, size=3000)]
        sequential = GreenwaldKhannaSketch(epsilon)
        for value in data:
            sequential.update(value)
        sketch = GreenwaldKhannaSketch(epsilon)
        sketch.extend(data)
        ordered = sorted(data)

        def worst_error(summary):
            worst = 0.0
            for q in range(0, 1001, 37):
                true_rank = bisect.bisect_right(ordered, float(q))
                worst = max(worst, abs(summary.rank_query(float(q)) - true_rank))
            return worst

        bound = 2 * epsilon * len(data)
        sequential_worst = worst_error(sequential)
        bulk_worst = worst_error(sketch)
        assert sequential_worst <= bound
        assert bulk_worst <= bound
        # The bulk path must not be meaningfully less accurate than the
        # per-element path on the same data.
        assert bulk_worst <= sequential_worst + 0.2 * epsilon * len(data)
        assert sketch.count == len(data)

    def test_quantiles_on_bulk_path(self):
        epsilon = 0.05
        sketch = GreenwaldKhannaSketch(epsilon)
        data = [float(v) for v in range(1, 5001)]
        np.random.default_rng(64).shuffle(data)
        sketch.extend(data)
        for fraction in (0.1, 0.5, 0.9):
            estimate = sketch.quantile_query(fraction)
            assert abs(estimate / 5000 - fraction) <= 2 * epsilon

    def test_memory_stays_sublinear_on_bulk_path(self):
        sketch = GreenwaldKhannaSketch(0.02)
        sketch.extend(float(v) for v in range(20_000))
        assert sketch.memory_footprint() < 4000

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_rank_guarantee_on_duplicate_heavy_streams(self, seed):
        """Regression: values tying the running maximum merge *before* the
        old max tuple, so they must take the interior uncertainty rule —
        delta=0 there understates the rank band and breaks the guarantee."""
        epsilon = 0.1
        rng = np.random.default_rng(seed)
        data = [float(v) for v in rng.integers(1, 10, size=3500)]
        sketch = GreenwaldKhannaSketch(epsilon)
        sketch.extend(data)
        ordered = sorted(data)
        worst = max(
            abs(sketch.rank_query(float(q)) - bisect.bisect_right(ordered, float(q)))
            for q in range(0, 11)
        )
        assert worst <= 2 * epsilon * len(data)

    def test_small_batches_match_sequential_exactly(self):
        data = [float(v) for v in _stream(65, n=60)]
        sequential = GreenwaldKhannaSketch(0.1)
        batched = GreenwaldKhannaSketch(0.1)
        for value in data:
            sequential.update(value)
        batched.extend(data)  # below _BULK_THRESHOLD: per-element rule
        assert sequential._tuples == batched._tuples


class TestMergeReduceExtend:
    @pytest.mark.parametrize("plan", CHUNK_PLANS)
    def test_bit_identical_buffers(self, plan):
        data = [float(v) for v in _stream(71, n=1500)]
        sequential = MergeReduceSummary(0.05)
        chunked = MergeReduceSummary(0.05)
        for value in data:
            sequential.update(value)
        _feed_chunks_sketch(chunked, data, plan)
        assert sequential._levels == chunked._levels
        assert sequential._pending == chunked._pending
        assert sequential.count == chunked.count


class TestChunkedGameEquivalence:
    """chunk_size=1 (the per-element path) vs default chunking, both runners."""

    def test_adaptive_game_bit_identical_for_bernoulli(self):
        def play(chunk_size):
            return run_adaptive_game(
                BernoulliSampler(0.05, seed=3),
                UniformAdversary(128, seed=4),
                5000,
                set_system=PrefixSystem(128),
                epsilon=0.5,
                chunk_size=chunk_size,
            )

        per_element = play(1)
        chunked = play(None)
        assert per_element.stream == chunked.stream
        assert per_element.sample == chunked.sample
        assert per_element.error == chunked.error
        assert chunked.updates == per_element.updates
        assert per_element.total_accepted == chunked.total_accepted

    def test_adaptive_game_bit_identical_for_weighted_reservoir(self):
        def play(chunk_size):
            return run_adaptive_game(
                WeightedReservoirSampler(32, seed=5),
                UniformAdversary(128, seed=6),
                4000,
                set_system=PrefixSystem(128),
                chunk_size=chunk_size,
                keep_updates=False,
            )

        per_element = play(1)
        chunked = play(777)
        assert per_element.stream == chunked.stream
        assert sorted(per_element.sample) == sorted(chunked.sample)
        assert per_element.error == chunked.error

    def test_continuous_game_bit_identical_for_bernoulli(self):
        def play(chunk_size):
            return run_continuous_game(
                BernoulliSampler(0.05, seed=7),
                UniformAdversary(128, seed=8),
                4000,
                set_system=PrefixSystem(128),
                epsilon=0.5,
                checkpoints=range(100, 4001, 100),
                chunk_size=chunk_size,
            )

        per_element = play(1)
        chunked = play(None)
        assert per_element.stream == chunked.stream
        assert per_element.checkpoint_errors == chunked.checkpoint_errors
        assert per_element.error == chunked.error
        assert chunked.updates == per_element.updates

    def test_continuous_game_reservoir_checkpoints_align(self):
        """Reservoir consumes bits in batch order (documented), but the
        checkpoint schedule and stream must be unaffected by chunking."""

        def play(chunk_size):
            return run_continuous_game(
                ReservoirSampler(32, seed=9),
                UniformAdversary(128, seed=10),
                3000,
                set_system=PrefixSystem(128),
                checkpoints=[64, 1000, 2500, 3000],
                chunk_size=chunk_size,
                keep_updates=False,
            )

        per_element = play(1)
        chunked = play(None)
        assert per_element.checkpoints == chunked.checkpoints == [64, 1000, 2500, 3000]
        assert per_element.stream == chunked.stream
        assert len(chunked.checkpoint_errors) == 4
        # Both paths draw from the same seeded generator over the same
        # stream, so sample sizes (state shape) agree even though the
        # realised reservoir contents may differ.
        assert per_element.sample_size == chunked.sample_size

    def test_static_adversary_segments_are_sliced_not_replayed(self):
        stream = list(range(1, 2001))
        per_element = run_adaptive_game(
            BernoulliSampler(0.1, seed=11), StaticAdversary(stream), 2000, chunk_size=1
        )
        chunked = run_adaptive_game(
            BernoulliSampler(0.1, seed=11), StaticAdversary(stream), 2000
        )
        assert per_element.stream == chunked.stream == stream
        assert per_element.sample == chunked.sample

    def test_fully_adaptive_adversaries_take_the_per_element_path(self):
        # Adversary subclasses that don't declare segmentation still work:
        # the base Adversary.next_elements contract is per-round, so the
        # runner calls next_element once per round even at default chunking.
        from repro.adversary.base import Adversary

        class PerRound(Adversary):
            name = "per-round"

            def __init__(self):
                self.calls = 0

            def next_element(self, round_index, observed_sample):
                self.calls += 1
                return round_index

        adversary = PerRound()
        # The fallback is taken silently only for explicit chunk_size=1;
        # under default chunking it announces itself once per adversary
        # identity (the latch is reset around every test by conftest).
        with pytest.warns(RuntimeWarning, match="declares no decision cadence"):
            result = run_adaptive_game(BernoulliSampler(0.5, seed=1), adversary, 100)
        assert adversary.calls == 100
        assert result.stream == list(range(1, 101))

    def test_fallback_warning_latch_is_keyed_by_adversary_identity(self):
        """The once-per-process latch distinguishes (class, name) identities
        and is cleared by :func:`reset_fallback_warnings`."""
        import warnings

        from repro.adversary import reset_fallback_warnings
        from repro.adversary.base import Adversary

        class PerRound(Adversary):
            def __init__(self, name):
                self.name = name

            def next_element(self, round_index, observed_sample):
                return round_index

        def play(adversary):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                run_adaptive_game(BernoulliSampler(0.5, seed=1), adversary, 10)
            return [w for w in caught if issubclass(w.category, RuntimeWarning)]

        # Distinct names of the same class each warn once.
        assert len(play(PerRound("alpha"))) == 1
        assert len(play(PerRound("beta"))) == 1
        # A repeat of an already-latched identity stays silent...
        assert play(PerRound("alpha")) == []
        # ...until the latch is reset.
        reset_fallback_warnings()
        assert len(play(PerRound("alpha"))) == 1

    def test_chunked_updates_log_matches_per_element_log(self):
        per_element = run_adaptive_game(
            BernoulliSampler(0.2, seed=13),
            UniformAdversary(64, seed=14),
            1000,
            chunk_size=1,
        )
        chunked = run_adaptive_game(
            BernoulliSampler(0.2, seed=13),
            UniformAdversary(64, seed=14),
            1000,
            chunk_size=129,
        )
        assert isinstance(chunked.updates, UpdateBatch)
        assert chunked.updates == per_element.updates
        assert [u.round_index for u in chunked.updates] == list(range(1, 1001))
