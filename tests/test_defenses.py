"""Tests for the composable robust-defense wrappers (``repro.defenses``).

Two layers:

* **Wrapper mechanics** — construction validation, chunked/per-element
  parity, idempotent reads, the sketch-switching schedule, DP query
  determinism, rotation arithmetic, copy-wise merging and space accounting.
* **Flattening pins** — the headline acceptance claim: at *matched total
  space* (the defense's per-copy budget is the undefended budget divided by
  the copy count), each defense flattens the **attack-induced excess** of
  ``attacked_peak_discrepancy`` over the same configuration's benign
  (zero-budget) baseline, in at least three attack scenarios per wrapper.
  The excess comparison is the flattening statement: replication buys the
  defense a higher *static* (benign) error floor at matched space, and the
  defense earns its keep by making the adversary's *marginal* contribution
  smaller than against the undefended sampler — in the starred cases below
  the defended configuration beats the undefended one on the raw attacked
  peak outright, static handicap included.

  The pinned games are endpoint games (``continuous=False``), where
  ``attacked_peak_discrepancy`` is the final-state error: the conditioning
  an adaptive adversary accumulates over the whole stream, free of the
  small-sample noise that dominates early-checkpoint peaks.  All runs are
  bit-reproducible, so the inequalities are exact at the pinned seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.defenses import (
    DPAggregateSampler,
    DifferenceEstimatorSampler,
    ReplicatedDefenseSampler,
    SketchSwitchingSampler,
)
from repro.exceptions import ConfigurationError
from repro.rng import ensure_generator
from repro.samplers import BernoulliSampler, ReservoirSampler, SlidingWindowSampler
from repro.scenarios import ScenarioConfig, run_config
from repro.scenarios.builders import (
    SamplerFromSpec,
    build_defended_sampler,
    matched_space_spec,
    oversampled_spec,
)


def bernoulli_factory(rng: np.random.Generator) -> BernoulliSampler:
    return BernoulliSampler(0.2, seed=rng)


def window_factory(rng: np.random.Generator) -> SlidingWindowSampler:
    return SlidingWindowSampler(8, 32, seed=rng)


def reservoir_factory(rng: np.random.Generator) -> ReservoirSampler:
    return ReservoirSampler(16, seed=rng)


WRAPPERS = {
    "sketch_switching": SketchSwitchingSampler,
    "dp_aggregate": DPAggregateSampler,
    "difference_estimator": DifferenceEstimatorSampler,
}


def make_wrapper(kind: str, factory=None, seed: int = 5, **kwargs):
    if factory is None:
        factory = window_factory if kind == "difference_estimator" else bernoulli_factory
    return WRAPPERS[kind](factory, seed=seed, **kwargs)


class TestConstruction:
    @pytest.mark.parametrize("kind", sorted(WRAPPERS))
    def test_requires_at_least_two_copies(self, kind):
        with pytest.raises(ConfigurationError):
            make_wrapper(kind, copies=1)

    def test_sketch_growth_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            SketchSwitchingSampler(bernoulli_factory, growth=1.0, seed=1)

    def test_dp_epsilon_and_scale_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            DPAggregateSampler(bernoulli_factory, dp_epsilon=0.0, seed=1)
        with pytest.raises(ConfigurationError):
            DPAggregateSampler(bernoulli_factory, value_scale=-1.0, seed=1)

    def test_difference_estimator_requires_a_window(self):
        with pytest.raises(ConfigurationError, match="sliding-window"):
            DifferenceEstimatorSampler(bernoulli_factory, seed=1)

    def test_factory_must_produce_stream_samplers(self):
        with pytest.raises(ConfigurationError, match="not a StreamSampler"):
            SketchSwitchingSampler(lambda rng: object(), seed=1)

    def test_rotation_period_defaults_to_the_window(self):
        wrapper = DifferenceEstimatorSampler(window_factory, seed=1)
        assert wrapper.rotation_period == 32
        with pytest.raises(ConfigurationError):
            DifferenceEstimatorSampler(window_factory, rotation_period=0, seed=1)

    @pytest.mark.parametrize("kind", sorted(WRAPPERS))
    def test_name_reports_kind_copies_and_inner(self, kind):
        wrapper = make_wrapper(kind, copies=3)
        assert wrapper.name.startswith(f"{kind}-3x-")


class TestStreamingParity:
    """Chunked extend == per-element processing, for every wrapper.

    (Pinned with Bernoulli / sliding-window inners, whose extend kernels are
    bit-identical to their per-element paths repo-wide.)
    """

    @pytest.mark.parametrize("kind", sorted(WRAPPERS))
    def test_extend_matches_per_element(self, kind):
        elements = list(range(1, 201))
        chunked = make_wrapper(kind, seed=9)
        stepwise = make_wrapper(kind, seed=9)
        batch = chunked.extend(elements)
        updates = [stepwise.process(element) for element in elements]
        assert list(batch.accepted) == [u.accepted for u in updates]
        assert chunked.sample == stepwise.sample
        assert chunked.rounds_processed == stepwise.rounds_processed

    @pytest.mark.parametrize("kind", sorted(WRAPPERS))
    def test_extend_is_segmentation_independent(self, kind):
        elements = list(range(1, 301))
        whole = make_wrapper(kind, seed=3)
        pieces = make_wrapper(kind, seed=3)
        whole_batch = whole.extend(elements)
        accepted = []
        for start in range(0, 300, 77):
            segment_batch = pieces.extend(elements[start : start + 77])
            accepted.extend(segment_batch.accepted)
        assert list(whole_batch.accepted) == accepted
        assert whole.sample == pieces.sample

    @pytest.mark.parametrize("kind", sorted(WRAPPERS))
    def test_empty_and_updateless_extends(self, kind):
        wrapper = make_wrapper(kind, seed=2)
        assert len(wrapper.extend([])) == 0
        assert wrapper.extend([], updates=False) is None
        assert wrapper.extend([1, 2, 3], updates=False) is None
        assert wrapper.rounds_processed == 3

    @pytest.mark.parametrize("kind", sorted(WRAPPERS))
    def test_reads_are_idempotent(self, kind):
        wrapper = make_wrapper(kind, seed=4)
        wrapper.extend(list(range(1, 101)))
        assert wrapper.sample == wrapper.sample
        assert wrapper.snapshot() == wrapper.snapshot()


class TestSketchSwitchingSchedule:
    def test_switches_only_after_exposure_and_growth(self):
        wrapper = SketchSwitchingSampler(bernoulli_factory, copies=3, growth=2.0, seed=1)
        wrapper.extend(list(range(1, 11)), updates=False)
        assert wrapper.switches_used == 0
        wrapper.sample  # exposure at round 10
        assert wrapper.switches_used == 0
        wrapper.extend(list(range(11, 20)), updates=False)
        wrapper.sample  # round 19 < 2 * 10: still the same copy
        assert wrapper.switches_used == 0
        wrapper.extend([20], updates=False)
        wrapper.sample  # round 20 >= 2 * 10: switch fires
        assert wrapper.switches_used == 1

    def test_unexposed_copies_never_switch(self):
        wrapper = SketchSwitchingSampler(bernoulli_factory, copies=3, seed=1)
        wrapper.extend(list(range(1, 1001)), updates=False)
        assert wrapper.switches_used == 0

    def test_switch_budget_exhausts_gracefully(self):
        wrapper = SketchSwitchingSampler(bernoulli_factory, copies=2, growth=1.5, seed=1)
        for start in range(0, 200, 10):
            wrapper.extend(list(range(start, start + 10)), updates=False)
            wrapper.sample
        assert wrapper.switches_used == 1  # R - 1 switches, then the last copy holds
        assert wrapper.sample == wrapper.copy_samplers[1].sample

    def test_reset_restores_the_first_copy(self):
        wrapper = SketchSwitchingSampler(bernoulli_factory, copies=2, growth=1.1, seed=1)
        wrapper.extend(list(range(1, 51)), updates=False)
        wrapper.sample
        wrapper.extend(list(range(51, 101)), updates=False)
        wrapper.sample
        assert wrapper.switches_used == 1
        wrapper.reset()
        assert wrapper.switches_used == 0
        assert wrapper.rounds_processed == 0


class TestDPAggregate:
    def test_serving_copy_is_a_stable_function_of_the_round(self):
        wrapper = DPAggregateSampler(bernoulli_factory, copies=4, seed=8)
        rounds = np.arange(1, 200, dtype=np.int64)
        first = wrapper._serving_indices(rounds)
        second = wrapper._serving_indices(rounds)
        assert np.array_equal(first, second)
        assert set(np.unique(first)) <= set(range(4))
        assert len(np.unique(first)) > 1  # actually rotates

    def test_private_queries_are_deterministic_per_state(self):
        wrapper = DPAggregateSampler(bernoulli_factory, copies=4, seed=8)
        wrapper.extend(list(range(100)), updates=False)
        assert wrapper.private_density(range(50)) == wrapper.private_density(range(50))
        assert wrapper.private_quantile(0.5) == wrapper.private_quantile(0.5)
        assert wrapper.private_count(3) == wrapper.private_count(3)

    def test_private_density_tracks_the_true_density(self):
        wrapper = DPAggregateSampler(
            lambda rng: BernoulliSampler(0.5, seed=rng), copies=8, seed=8
        )
        wrapper.extend(list(range(400)), updates=False)
        estimate = wrapper.private_density(range(200))
        assert abs(estimate - 0.5) < 0.25

    def test_private_count_is_floored_at_zero(self):
        wrapper = DPAggregateSampler(bernoulli_factory, copies=2, seed=8)
        wrapper.extend(list(range(10)), updates=False)
        assert wrapper.private_count("missing") >= 0.0

    def test_quantile_fraction_is_validated(self):
        wrapper = DPAggregateSampler(bernoulli_factory, copies=2, seed=8)
        with pytest.raises(ConfigurationError):
            wrapper.private_quantile(1.5)


class TestDifferenceEstimatorRotation:
    def test_rotation_follows_the_window_schedule(self):
        wrapper = DifferenceEstimatorSampler(window_factory, copies=3, rotation_period=10, seed=2)
        rounds = np.arange(1, 61, dtype=np.int64)
        serving = wrapper._serving_indices(rounds)
        assert list(serving[:10]) == [0] * 10
        assert list(serving[10:20]) == [1] * 10
        assert list(serving[20:30]) == [2] * 10
        assert list(serving[30:40]) == [0] * 10  # copies recycle


class TestSpaceAccountingAndMerge:
    @pytest.mark.parametrize("kind", sorted(WRAPPERS))
    def test_memory_footprint_sums_the_copies(self, kind):
        wrapper = make_wrapper(kind, copies=3)
        wrapper.extend(list(range(200)), updates=False)
        assert wrapper.memory_footprint() == sum(
            copy_.memory_footprint() for copy_ in wrapper.copy_samplers
        )

    def test_matched_space_spec_divides_the_budget(self):
        assert matched_space_spec({"family": "reservoir", "capacity": 48}, 4) == {
            "family": "reservoir",
            "capacity": 12,
        }
        assert matched_space_spec({"family": "bernoulli", "probability": 0.2}, 2) == {
            "family": "bernoulli",
            "probability": 0.1,
        }

    def test_oversampled_spec_multiplies_the_budget(self):
        assert oversampled_spec({"family": "reservoir", "capacity": 48}, 4) == {
            "family": "reservoir",
            "capacity": 192,
        }
        assert oversampled_spec({"family": "bernoulli", "probability": 0.4}, 4) == {
            "family": "bernoulli",
            "probability": 1.0,
        }

    def test_merge_is_copy_wise(self):
        rng = ensure_generator(11)
        parts = [
            DPAggregateSampler(reservoir_factory, copies=2, seed=seed)
            for seed in (1, 2, 3)
        ]
        for offset, part in enumerate(parts):
            part.extend(list(range(offset * 100, offset * 100 + 100)), updates=False)
        merged = parts[0].merge(parts[1:], rng=rng)
        assert merged.copies == 2
        assert merged.rounds_processed == 300
        for index in range(2):
            merged_sample = set(merged.copy_samplers[index].sample)
            union = set()
            for part in parts:
                union |= set(part.copy_samplers[index].sample)
            assert merged_sample <= union
        # The parts are untouched.
        assert parts[0].rounds_processed == 100

    def test_merge_rejects_mismatched_defenses(self):
        rng = ensure_generator(11)
        a = DPAggregateSampler(reservoir_factory, copies=2, seed=1)
        b = DPAggregateSampler(reservoir_factory, copies=3, seed=2)
        with pytest.raises(ConfigurationError):
            a.merge([b], rng=rng)
        c = SketchSwitchingSampler(reservoir_factory, copies=2, seed=3)
        with pytest.raises(ConfigurationError):
            a.merge([c], rng=rng)

    def test_window_inners_forward_merge_offsets(self):
        wrapper = DifferenceEstimatorSampler(window_factory, copies=2, seed=1)
        assert wrapper.merge_wants_offsets
        bern = SketchSwitchingSampler(bernoulli_factory, copies=2, seed=1)
        assert not bern.merge_wants_offsets


class TestScenarioIntegration:
    def test_oversample_defense_is_bit_identical_to_a_big_sampler(self):
        spec = {"family": "reservoir", "capacity": 48}
        defended = SamplerFromSpec(spec, defense={"kind": "oversample", "factor": 4})
        plain = SamplerFromSpec({"family": "reservoir", "capacity": 192})
        rng_a = ensure_generator(21)
        rng_b = ensure_generator(21)
        a = defended(rng_a)
        b = plain(rng_b)
        elements = list(range(1000))
        batch_a = a.extend(elements)
        batch_b = b.extend(elements)
        assert list(batch_a.accepted) == list(batch_b.accepted)
        assert a.sample == b.sample

    @pytest.mark.parametrize("kind", sorted(WRAPPERS))
    def test_build_defended_sampler_applies_matched_space(self, kind):
        spec = (
            {"family": "sliding_window", "capacity": 48, "window": 64}
            if kind == "difference_estimator"
            else {"family": "reservoir", "capacity": 48}
        )
        defense = {"kind": kind, "copies": 4, "matched_space": True}
        wrapper = build_defended_sampler(spec, defense, ensure_generator(5))
        assert wrapper.copies == 4
        wrapper.extend(list(range(500)), updates=False)
        undefended = SamplerFromSpec(spec)(ensure_generator(5))
        undefended.extend(list(range(500)), updates=False)
        # At matched space the defended stack stays within the undefended
        # footprint plus per-copy bookkeeping (window samplers track window
        # metadata per copy on top of the stored sample).
        bookkeeping = 4 * spec.get("window", 0)
        assert wrapper.memory_footprint() <= undefended.memory_footprint() + bookkeeping

    def test_difference_estimator_rejects_non_window_scenarios(self):
        with pytest.raises(ConfigurationError):
            SamplerFromSpec(
                {"family": "reservoir", "capacity": 16},
                defense={"kind": "difference_estimator"},
            )

    def test_defended_scenario_runs_are_reproducible(self):
        config = ScenarioConfig(
            name="repro-check",
            stream_length=128,
            universe_size=32,
            trials=2,
            seed=13,
            samplers={"r": {"family": "reservoir", "capacity": 16}},
            adversary={"family": "uniform"},
            set_system={"kind": "prefix"},
            workers=0,
            defense={"kind": "dp_aggregate", "copies": 2},
        )
        first = run_config(config)
        second = run_config(config)
        assert first.to_dict(include_timing=False) == second.to_dict(include_timing=False)


# ----------------------------------------------------------------------
# Flattening pins (acceptance criterion)
# ----------------------------------------------------------------------

_UNIFORM_FLOAT = {"kind": "uniform_float", "low": 0.0, "high": 1.0}
_CONTINUOUS = {"kind": "continuous_prefix", "low": 0.0, "high": 1.0}
_BISECTION = {"family": "bisection", "low": 0.0, "high": 1.0}
_WINDOW = {"family": "sliding_window", "capacity": 48, "window": 256}

#: Attack scenarios used by the pins: sampler grid, adversary, set system,
#: benign filler (for float-valued streams) and stream length.
_PIN_SCENARIOS = {
    "heavy_hitter": (
        {"b": {"family": "bernoulli", "probability": 0.2}},
        {"family": "switching_singleton"},
        {"kind": "singleton"},
        None,
        512,
    ),
    "bisection_b2": (
        {"b": {"family": "bernoulli", "probability": 0.2}},
        _BISECTION,
        _CONTINUOUS,
        _UNIFORM_FLOAT,
        512,
    ),
    "bisection_b1": (
        {"b": {"family": "bernoulli", "probability": 0.1}},
        _BISECTION,
        _CONTINUOUS,
        _UNIFORM_FLOAT,
        512,
    ),
    "bisection_b05": (
        {"b": {"family": "bernoulli", "probability": 0.05}},
        _BISECTION,
        _CONTINUOUS,
        _UNIFORM_FLOAT,
        512,
    ),
    "window_greedy_interval": (
        {"w": _WINDOW},
        {
            "family": "greedy_density",
            "target": {"kind": "interval", "low": 1, "high_fraction": 0.125},
        },
        {"kind": "interval"},
        None,
        1024,
    ),
    "window_greedy_prefix": (
        {"w": _WINDOW},
        {"family": "greedy_density", "target": {"kind": "prefix", "bound_fraction": 0.25}},
        {"kind": "prefix"},
        None,
        1024,
    ),
    "window_bisection": ({"w": _WINDOW}, _BISECTION, _CONTINUOUS, _UNIFORM_FLOAT, 1024),
}

#: (defense kind, scenario, criterion).  ``excess`` pins assert the defense
#: shrinks the attack-induced excess over the matching benign baseline;
#: ``raw`` pins assert the defended attacked peak beats the undefended one
#: outright, matched-space static handicap included.
_FLATTENING_PINS = [
    ("sketch_switching", "heavy_hitter", "raw"),
    ("sketch_switching", "heavy_hitter", "excess"),
    ("sketch_switching", "bisection_b1", "excess"),
    ("sketch_switching", "bisection_b05", "excess"),
    ("sketch_switching", "window_greedy_interval", "excess"),
    ("dp_aggregate", "heavy_hitter", "raw"),
    ("dp_aggregate", "bisection_b2", "raw"),
    ("dp_aggregate", "bisection_b2", "excess"),
    ("dp_aggregate", "bisection_b1", "raw"),
    ("dp_aggregate", "bisection_b1", "excess"),
    ("dp_aggregate", "bisection_b05", "raw"),
    ("difference_estimator", "window_greedy_interval", "excess"),
    ("difference_estimator", "window_greedy_prefix", "excess"),
    ("difference_estimator", "window_bisection", "raw"),
]


def _pin_config(scenario: str, defense, attack_budget: float) -> ScenarioConfig:
    samplers, adversary, set_system, benign, stream_length = _PIN_SCENARIOS[scenario]
    return ScenarioConfig(
        name=f"pin-{scenario}",
        stream_length=stream_length,
        universe_size=64,
        trials=3,
        seed=7,
        samplers=samplers,
        adversary=adversary,
        set_system=set_system,
        benign=benign,
        knowledge="full",
        continuous=False,
        attack_budget=attack_budget,
        workers=0,
        defense=defense,
    )


@pytest.fixture(scope="module")
def pin_outcomes():
    """Cache of (scenario, defense kind or None) -> (attacked, benign) peaks.

    One scenario/defense cell is shared by every pin that references it, so
    the module runs each endpoint game exactly once.
    """
    cache: dict[tuple[str, str | None], tuple[float, float]] = {}

    def measure(scenario: str, kind: str | None) -> tuple[float, float]:
        key = (scenario, kind)
        if key not in cache:
            defense = (
                None
                if kind is None
                else {"kind": kind, "copies": 2, "matched_space": True}
            )
            attacked = run_config(_pin_config(scenario, defense, 1.0))
            benign = run_config(_pin_config(scenario, defense, 0.0))
            cache[key] = (
                attacked.attacked_peak_discrepancy,
                benign.peak_discrepancy,
            )
        return cache[key]

    return measure


class TestDefenseFlattening:
    @pytest.mark.parametrize(
        "kind,scenario,criterion",
        _FLATTENING_PINS,
        ids=[f"{k}-{s}-{c}" for k, s, c in _FLATTENING_PINS],
    )
    def test_defense_flattens_the_attack(self, pin_outcomes, kind, scenario, criterion):
        undefended_attacked, undefended_benign = pin_outcomes(scenario, None)
        defended_attacked, defended_benign = pin_outcomes(scenario, kind)
        if criterion == "raw":
            assert defended_attacked < undefended_attacked, (
                f"{kind} on {scenario}: defended attacked peak "
                f"{defended_attacked:.3f} >= undefended {undefended_attacked:.3f}"
            )
        else:
            defended_excess = defended_attacked - defended_benign
            undefended_excess = undefended_attacked - undefended_benign
            assert defended_excess < undefended_excess, (
                f"{kind} on {scenario}: defended excess {defended_excess:+.3f} "
                f">= undefended excess {undefended_excess:+.3f}"
            )

    def test_the_attacks_actually_bite_where_claimed(self, pin_outcomes):
        """The non-window pin scenarios have genuinely positive undefended
        attack excess — the flattening claims above are not vacuous."""
        for scenario in ("heavy_hitter", "bisection_b2", "bisection_b1", "bisection_b05"):
            attacked, benign = pin_outcomes(scenario, None)
            assert attacked > benign + 0.02, (
                f"{scenario}: undefended attack excess {attacked - benign:+.3f} "
                "is too small to support a flattening pin"
            )
