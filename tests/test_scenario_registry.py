"""Per-name pins for every registered scenario.

The registry-wide suites (`test_scenarios_attacks.py`, the fuzzer) iterate
``SCENARIOS`` and so keep passing even when an individual scenario is
renamed, mis-registered, or silently dropped.  This module names every
scenario by its string identifier — the same contract the CLI and the
``analyze`` PRO003 rule (scenario-test-coverage) are stated in — so each
registered name has at least one test that fails if *that* scenario
disappears or its spec stops compiling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenarios import SCENARIOS, get_scenario
from repro.scenarios.builders import AdversaryFromSpec, SamplerFromSpec

#: Every name the library registers, spelled out.  PRO003 requires each
#: registered name to be referenced from a test module by literal; a new
#: scenario must be added here (the completeness test below enforces it).
ALL_SCENARIO_NAMES = [
    "prefix_flood",
    "bisection_probe",
    "reservoir_eviction",
    "heavy_hitter_spoof",
    "quantile_shift",
    "sliding_window_burst",
    "distributed_skew",
    "static_baseline",
    "oversample_defense",
    "shard_hotspot",
    "cross_shard_skew",
    "sharded_heavy_hitter_spoof",
    "sharded_prefix_flood",
    "sharded_sliding_window_burst",
    "reactive_prefix_flood",
    "cadence_probe",
    "sharded_reactive_skew",
    "spam_then_poison",
    "probe_then_strike",
    "colluding_split_budget",
    "sketch_switching_defense",
    "dp_aggregate_defense",
    "difference_estimator_defense",
    "recovery_window_strike",
    "hotspot_split_flood",
    "stale_coordinator_probe",
    "stale_snapshot_strike",
    "query_flood_exposure",
]


def test_name_list_matches_registry_exactly():
    assert sorted(ALL_SCENARIO_NAMES) == sorted(SCENARIOS)


@pytest.mark.parametrize("name", ALL_SCENARIO_NAMES)
def test_scenario_is_registered_and_consistent(name):
    scenario = get_scenario(name)
    assert scenario.name == name
    assert scenario.base_config.name == name
    assert scenario.description
    assert scenario.budget_grid
    assert all(0.0 <= budget <= 1.0 for budget in scenario.budget_grid)


@pytest.mark.parametrize("name", ALL_SCENARIO_NAMES)
def test_scenario_spec_compiles_to_factories(name):
    """Every registered config builds its sampler and adversary factories.

    This is the cheap end-to-end pin: the spec round-trips through the
    builder layer without touching a game loop, so a scenario whose spec
    drifts out of sync with the builders fails here by name.
    """
    config = get_scenario(name).base_config
    rng = np.random.default_rng(1234)
    for spec in config.samplers.values():
        factory = SamplerFromSpec(
            spec,
            sharding=config.sharding,
            defense=config.defense,
            faults=config.faults,
            stream_length=config.stream_length,
            service=config.service,
        )
        assert factory(rng) is not None
    adversary = AdversaryFromSpec(config)(rng)
    assert adversary is not None
