"""Tests for the random-number helper module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import (
    bernoulli_trial,
    derive_substream,
    ensure_generator,
    sample_without_replacement,
    spawn_generators,
)


class TestEnsureGenerator:
    def test_none_gives_generator(self):
        assert isinstance(ensure_generator(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        first = ensure_generator(7).random(5)
        second = ensure_generator(7).random(5)
        assert np.allclose(first, second)

    def test_different_seeds_differ(self):
        assert not np.allclose(ensure_generator(1).random(5), ensure_generator(2).random(5))

    def test_existing_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_generator(generator) is generator


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_children_are_independent_streams(self):
        children = spawn_generators(42, 3)
        draws = [child.random(4).tolist() for child in children]
        assert draws[0] != draws[1]
        assert draws[1] != draws[2]

    def test_reproducible_from_same_seed(self):
        first = [g.random(3).tolist() for g in spawn_generators(9, 2)]
        second = [g.random(3).tolist() for g in spawn_generators(9, 2)]
        assert first == second

    def test_spawn_from_generator(self):
        base = ensure_generator(5)
        children = spawn_generators(base, 2)
        assert len(children) == 2


class TestDeriveSubstream:
    def test_same_labels_same_stream(self):
        first = derive_substream(3, 1, "adversary").random(4)
        second = derive_substream(3, 1, "adversary").random(4)
        assert np.allclose(first, second)

    def test_different_labels_differ(self):
        first = derive_substream(3, 1, "adversary").random(4)
        second = derive_substream(3, 1, "sampler").random(4)
        assert not np.allclose(first, second)

    def test_string_labels_stable_across_calls(self):
        assert np.allclose(
            derive_substream(0, "x").random(2), derive_substream(0, "x").random(2)
        )


class TestBernoulliTrial:
    def test_probability_zero_never_true(self, rng):
        assert not any(bernoulli_trial(rng, 0.0) for _ in range(100))

    def test_probability_one_always_true(self, rng):
        assert all(bernoulli_trial(rng, 1.0) for _ in range(100))

    def test_intermediate_probability_mixes(self, rng):
        outcomes = [bernoulli_trial(rng, 0.5) for _ in range(500)]
        assert 0.3 < sum(outcomes) / len(outcomes) < 0.7


class TestSampleWithoutReplacement:
    def test_size_and_distinctness(self, rng):
        population = list(range(50))
        chosen = sample_without_replacement(rng, population, 10)
        assert len(chosen) == 10
        assert len(set(chosen)) == 10
        assert set(chosen) <= set(population)

    def test_oversampling_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_without_replacement(rng, [1, 2, 3], 4)
