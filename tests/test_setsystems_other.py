"""Tests for singleton, rectangle, halfspace and explicit set systems, and VC dimension."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ConfigurationError, EmptySampleError
from repro.setsystems import (
    Box,
    ExplicitSetSystem,
    Halfspace,
    HalfspaceSystem,
    RectangleSystem,
    Singleton,
    SingletonSystem,
    exact_vc_dimension,
    is_shattered,
    sauer_shelah_bound,
)


class TestSingletonSystem:
    def test_cardinality(self):
        assert SingletonSystem(25).cardinality() == 25

    def test_vc_dimension_is_one(self):
        assert SingletonSystem(25).vc_dimension() == 1

    def test_density_counts_duplicates(self):
        system = SingletonSystem(10)
        assert system.density(Singleton(3), [3, 3, 4, 5]) == pytest.approx(0.5)

    def test_discrepancy_detects_missing_heavy_element(self):
        system = SingletonSystem(10)
        stream = [1] * 50 + [2] * 50
        sample = [2] * 10
        result = system.max_discrepancy(stream, sample)
        assert result.error == pytest.approx(0.5)
        assert result.witness.value in (1, 2)

    def test_discrepancy_zero_for_identical(self):
        system = SingletonSystem(10)
        data = [1, 1, 2, 9]
        assert system.max_discrepancy(data, data).error == pytest.approx(0.0)

    def test_matches_brute_force(self):
        system = SingletonSystem(8)
        stream = [1, 1, 2, 3, 3, 3, 7, 8]
        sample = [1, 3, 8, 8]
        fast = system.max_discrepancy(stream, sample).error
        brute = max(
            abs(system.density(r, stream) - system.density(r, sample))
            for r in system.ranges()
        )
        assert fast == pytest.approx(brute)

    def test_empty_sample_rejected(self):
        with pytest.raises(EmptySampleError):
            SingletonSystem(5).max_discrepancy([1], [])


class TestBoxRange:
    def test_membership(self):
        box = Box((1.0, 1.0), (3.0, 3.0))
        assert (2, 2) in box
        assert (1, 3) in box
        assert (4, 2) not in box

    def test_dimension_mismatch_not_contained(self):
        assert (1, 1, 1) not in Box((1.0,), (3.0,))

    def test_invalid_box_rejected(self):
        with pytest.raises(ConfigurationError):
            Box((3.0,), (1.0,))


class TestRectangleSystem:
    def test_cardinality_formula(self):
        # side=3 -> 6 intervals per axis, squared for d=2.
        assert RectangleSystem(3, 2).cardinality() == 36

    def test_log_cardinality_matches_formula(self):
        system = RectangleSystem(10, 3)
        assert system.log_cardinality() == pytest.approx(3 * math.log(55))

    def test_vc_dimension_is_twice_dimension(self):
        assert RectangleSystem(10, 2).vc_dimension() == 4
        assert RectangleSystem(10, 3).vc_dimension() == 6

    def test_contains_element(self):
        system = RectangleSystem(5, 2)
        assert system.contains_element((1, 5))
        assert not system.contains_element((0, 3))
        assert not system.contains_element((1, 2, 3))

    def test_discrepancy_identical_is_zero(self):
        system = RectangleSystem(8, 2)
        points = [(1, 1), (4, 4), (8, 8), (2, 6)]
        assert system.max_discrepancy(points, points).error == pytest.approx(0.0)

    def test_discrepancy_detects_missing_corner(self):
        system = RectangleSystem(8, 2)
        stream = [(1, 1)] * 10 + [(8, 8)] * 10
        sample = [(8, 8)] * 5
        result = system.max_discrepancy(stream, sample)
        assert result.error == pytest.approx(0.5)
        assert result.exact

    def test_matches_explicit_enumeration_on_tiny_grid(self):
        system = RectangleSystem(3, 2)
        stream = [(1, 1), (2, 3), (3, 3), (2, 2), (1, 3)]
        sample = [(1, 1), (3, 3)]
        fast = system.max_discrepancy(stream, sample).error
        brute = max(
            abs(system.density(box, stream) - system.density(box, sample))
            for box in system.ranges()
        )
        assert fast == pytest.approx(brute)

    def test_randomised_fallback_flagged_not_exact(self):
        system = RectangleSystem(64, 2, max_exact_candidates=10, seed=0)
        stream = [(i % 64 + 1, (3 * i) % 64 + 1) for i in range(50)]
        sample = stream[:10]
        result = system.max_discrepancy(stream, sample)
        assert not result.exact
        assert 0.0 <= result.error <= 1.0


class TestHalfspaceSystem:
    def test_vc_dimension(self):
        assert HalfspaceSystem(10, 2).vc_dimension() == 3

    def test_halfspace_membership(self):
        halfspace = Halfspace((1.0, 0.0), 2.0)
        assert (3, 1) in halfspace
        assert (1, 5) not in halfspace

    def test_one_dimensional_discrepancy_matches_prefixes(self):
        system = HalfspaceSystem(100, 1)
        stream = [(i,) for i in range(1, 101)]
        sample = [(i,) for i in range(1, 11)]
        result = system.max_discrepancy(stream, sample)
        # Sample = smallest tenth; worst halfspace is "x <= 10" ~ error 0.9.
        assert result.error == pytest.approx(0.9, abs=0.02)
        assert result.exact

    def test_two_dimensional_discrepancy_reasonable(self):
        system = HalfspaceSystem(10, 2, directions=64, seed=1)
        stream = [(1, 1)] * 20 + [(10, 10)] * 20
        sample = [(10, 10)] * 10
        result = system.max_discrepancy(stream, sample)
        assert result.error == pytest.approx(0.5, abs=0.05)

    def test_log_cardinality_positive_and_finite(self):
        value = HalfspaceSystem(32, 2).log_cardinality()
        assert 0 < value < 200

    def test_identical_zero(self):
        system = HalfspaceSystem(10, 2, seed=3)
        points = [(1, 2), (5, 5), (9, 1)]
        assert system.max_discrepancy(points, points).error == pytest.approx(0.0)


class TestExplicitSetSystem:
    def test_duplicate_ranges_collapsed(self):
        system = ExplicitSetSystem([1, 2, 3], [{1}, {1}, {2, 3}])
        assert system.cardinality() == 2

    def test_range_outside_universe_rejected(self):
        with pytest.raises(ConfigurationError):
            ExplicitSetSystem([1, 2], [{3}])

    def test_empty_universe_rejected(self):
        with pytest.raises(ConfigurationError):
            ExplicitSetSystem([], [set()])

    def test_prefixes_constructor_matches_fast_system(self, explicit_prefixes):
        from repro.setsystems import PrefixSystem

        fast = PrefixSystem(12)
        stream = [1, 4, 4, 9, 12, 2, 7]
        sample = [4, 9]
        assert explicit_prefixes.max_discrepancy(stream, sample).error == pytest.approx(
            fast.max_discrepancy(stream, sample).error
        )

    def test_intervals_constructor_vc_dimension(self):
        assert ExplicitSetSystem.intervals(6).vc_dimension() == 2

    def test_singletons_constructor_vc_dimension(self):
        assert ExplicitSetSystem.singletons(6).vc_dimension() == 1

    def test_power_set_shatters_everything(self):
        system = ExplicitSetSystem.power_set([1, 2, 3, 4])
        assert system.vc_dimension() == 4

    def test_power_set_too_large_rejected(self):
        with pytest.raises(ConfigurationError):
            ExplicitSetSystem.power_set(list(range(20)))

    def test_describe_reports_structure(self, explicit_prefixes):
        description = explicit_prefixes.describe()
        assert description["cardinality"] == 12
        assert description["vc_dimension"] == 1


class TestVCDimension:
    def test_is_shattered_single_point(self):
        assert is_shattered([1], [{1}, set()])

    def test_is_not_shattered_missing_subset(self):
        assert not is_shattered([1, 2], [{1}, {1, 2}, set()])

    def test_prefix_family_has_dimension_one(self):
        family = [set(range(1, b + 1)) for b in range(1, 9)]
        assert exact_vc_dimension(range(1, 9), family) == 1

    def test_interval_family_has_dimension_two(self):
        family = [
            set(range(a, b + 1)) for a in range(1, 7) for b in range(a, 7)
        ]
        assert exact_vc_dimension(range(1, 7), family) == 2

    def test_power_set_has_full_dimension(self):
        universe = [1, 2, 3]
        family = [set(), {1}, {2}, {3}, {1, 2}, {1, 3}, {2, 3}, {1, 2, 3}]
        assert exact_vc_dimension(universe, family) == 3

    def test_max_dimension_early_exit(self):
        universe = [1, 2, 3]
        family = [set(), {1}, {2}, {3}, {1, 2}, {1, 3}, {2, 3}, {1, 2, 3}]
        assert exact_vc_dimension(universe, family, max_dimension=2) == 2

    def test_sauer_shelah_bound(self):
        assert sauer_shelah_bound(1, 10) == 11
        assert sauer_shelah_bound(2, 5) == 16

    def test_sauer_shelah_consistency_with_explicit_system(self):
        system = ExplicitSetSystem.prefixes(10)
        bound = sauer_shelah_bound(system.vc_dimension(), 10)
        assert system.cardinality() <= bound
