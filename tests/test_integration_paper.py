"""Integration tests: end-to-end reproductions of the paper's headline claims.

These are slower than unit tests (each plays full adversarial games) but every
one maps directly to a statement in the paper, so together they act as a
regression suite for the reproduction itself.
"""

from __future__ import annotations

import numpy as np

from repro import (
    BernoulliSampler,
    BisectionAdversary,
    MedianAttackAdversary,
    PrefixSystem,
    ReservoirSampler,
    SwitchingSingletonAdversary,
    ThresholdAttackAdversary,
    UniformAdversary,
    bernoulli_adaptive_rate,
    certify_reservoir,
    reservoir_adaptive_size,
    reservoir_continuous_size,
    run_adaptive_game,
    run_continuous_game,
)
from repro.adversary import GreedyDensityAdversary
from repro.applications import SampleHeavyHitters, evaluate_heavy_hitters, worst_quantile_error
from repro.experiments import ExperimentConfig, run_experiment
from repro.setsystems import Prefix


class TestTheorem12:
    """Theorem 1.2: ln|R|-sized samples survive every adaptive attack we have."""

    EPSILON = 0.25
    DELTA = 0.2
    UNIVERSE = 512
    STREAM = 1500

    def _attacks(self, reservoir_size):
        return (
            ThresholdAttackAdversary.for_reservoir(
                reservoir_size, self.STREAM, universe_size=self.UNIVERSE
            ),
            GreedyDensityAdversary(Prefix(self.UNIVERSE // 2), 1, self.UNIVERSE),
            MedianAttackAdversary(self.STREAM, universe_size=self.UNIVERSE),
        )

    def test_reservoir_at_theorem_size_resists_all_attacks(self):
        system = PrefixSystem(self.UNIVERSE)
        size = reservoir_adaptive_size(system.log_cardinality(), self.EPSILON, self.DELTA).size
        for trial, attack in enumerate(self._attacks(size)):
            sampler = ReservoirSampler(size, seed=trial)
            result = run_adaptive_game(
                sampler, attack, self.STREAM, set_system=system, epsilon=self.EPSILON,
                keep_updates=False,
            )
            assert result.succeeded, f"attack {attack.name} beat the Theorem 1.2 reservoir"

    def test_bernoulli_at_theorem_rate_resists_all_attacks(self):
        system = PrefixSystem(self.UNIVERSE)
        rate = bernoulli_adaptive_rate(
            system.log_cardinality(), self.EPSILON, self.DELTA, self.STREAM
        ).probability
        attacks = (
            ThresholdAttackAdversary.for_bernoulli(
                rate, self.STREAM, universe_size=self.UNIVERSE
            ),
            GreedyDensityAdversary(Prefix(self.UNIVERSE // 2), 1, self.UNIVERSE),
        )
        for trial, attack in enumerate(attacks):
            sampler = BernoulliSampler(rate, seed=trial)
            result = run_adaptive_game(
                sampler, attack, self.STREAM, set_system=system, epsilon=self.EPSILON,
                keep_updates=False,
            )
            assert result.succeeded, f"attack {attack.name} beat the Theorem 1.2 Bernoulli rate"

    def test_certificate_consistent_with_empirical_behaviour(self):
        system = PrefixSystem(self.UNIVERSE)
        size = reservoir_adaptive_size(system.log_cardinality(), self.EPSILON, self.DELTA).size
        certificate = certify_reservoir(size, self.EPSILON, set_system=system)
        assert certificate.delta <= self.DELTA + 1e-9


class TestTheorem13:
    """Theorem 1.3 / Figure 3: undersized samplers are defeated by the attack."""

    def test_attack_beats_small_reservoir(self):
        n, k = 800, 4
        adversary = ThresholdAttackAdversary.for_reservoir(k, n)
        system = PrefixSystem(adversary.universe_size)
        errors = []
        for seed in range(3):
            sampler = ReservoirSampler(k, seed=seed)
            adversary.reset()
            result = run_adaptive_game(sampler, adversary, n, set_system=system)
            errors.append(result.error)
        assert min(errors) > 0.8

    def test_attack_beats_small_bernoulli_rate(self):
        n, p = 800, 0.01
        adversary = ThresholdAttackAdversary.for_bernoulli(p, n)
        system = PrefixSystem(adversary.universe_size)
        sampler = BernoulliSampler(p, seed=0)
        result = run_adaptive_game(sampler, adversary, n, set_system=system)
        assert result.error > 0.8

    def test_same_stream_replayed_statically_is_harmless(self):
        # The attack's power comes from adaptivity: replaying the generated
        # stream against a fresh sampler (static setting) is not nearly as
        # damaging for prefix density estimation via a *fresh* sample.
        from repro.adversary import StaticAdversary

        n, k = 800, 4
        adversary = ThresholdAttackAdversary.for_reservoir(k, n)
        system = PrefixSystem(adversary.universe_size)
        first = run_adaptive_game(
            ReservoirSampler(k, seed=0), adversary, n, set_system=system
        )
        # Replay: a larger (Theorem 1.2-ish) reservoir on the same fixed stream.
        replay_size = 200
        replay = run_adaptive_game(
            ReservoirSampler(replay_size, seed=1),
            StaticAdversary(first.stream),
            n,
            set_system=system,
        )
        assert first.error > 0.8
        assert replay.error < 0.25


class TestIntroductionAttack:
    """The introduction's bisection attack on [0, 1]."""

    def test_sample_equals_smallest_elements_with_probability_one(self):
        for seed in range(3):
            sampler = BernoulliSampler(0.3, seed=seed)
            adversary = BisectionAdversary()
            result = run_adaptive_game(sampler, adversary, 250)
            assert sorted(result.sample) == sorted(result.stream)[: len(result.sample)]

    def test_reservoir_variant_sample_among_first_klogn_elements(self):
        n, k = 1000, 10
        sampler = ReservoirSampler(k, seed=0)
        adversary = BisectionAdversary()
        result = run_adaptive_game(sampler, adversary, n)
        stream_sorted = sorted(result.stream)
        ranks = [stream_sorted.index(value) + 1 for value in result.sample]
        assert max(ranks) <= 8 * k * np.log(n)


class TestTheorem14:
    """Theorem 1.4: continuous robustness of reservoir sampling."""

    def test_continuous_size_keeps_every_checkpoint_representative(self):
        epsilon, delta, n, universe = 0.3, 0.2, 1200, 256
        system = PrefixSystem(universe)
        size = reservoir_continuous_size(system.log_cardinality(), epsilon, delta, n).size
        sampler = ReservoirSampler(size, seed=0)
        adversary = GreedyDensityAdversary(Prefix(universe // 2), 1, universe)
        result = run_continuous_game(
            sampler, adversary, n, set_system=system, epsilon=epsilon,
            checkpoint_ratio=epsilon / 4,
        )
        assert result.continuously_succeeded

    def test_bernoulli_cannot_be_continuously_robust(self):
        # The paper's footnote: the first element is missed with constant
        # probability, so some prefix is misrepresented almost surely.
        epsilon, n, universe = 0.3, 400, 256
        system = PrefixSystem(universe)
        violations = 0
        for seed in range(10):
            sampler = BernoulliSampler(0.3, seed=seed)
            adversary = UniformAdversary(universe, seed=seed)
            result = run_continuous_game(
                sampler, adversary, n, set_system=system, epsilon=epsilon,
                checkpoints=[1, 2, 3, n],
            )
            violations += not result.continuously_succeeded
        assert violations >= 5


class TestCorollaries:
    """Corollaries 1.5 (quantiles) and 1.6 (heavy hitters)."""

    def test_quantile_sketch_robust_to_median_attack(self):
        universe, epsilon, n = 2**16, 0.25, 1200
        system = PrefixSystem(universe)
        size = reservoir_adaptive_size(np.log(universe), epsilon, 0.2).size
        sampler = ReservoirSampler(size, seed=0)
        adversary = MedianAttackAdversary(n, universe_size=universe)
        result = run_adaptive_game(sampler, adversary, n, set_system=system)
        assert worst_quantile_error(result.stream, list(result.sample)) <= epsilon

    def test_heavy_hitters_promise_holds_under_switching_attack(self):
        universe, alpha, epsilon, n = 5000, 0.4, 0.3, 1500
        detector = SampleHeavyHitters(universe, alpha, epsilon, delta=0.2, seed=0)
        adversary = SwitchingSingletonAdversary(universe, revisit_evicted=True)
        outcome = run_adaptive_game(detector.sampler, adversary, n, keep_updates=False)
        evaluation = evaluate_heavy_hitters(detector.report(), outcome.stream, alpha, epsilon)
        assert evaluation.correct


class TestExperimentShapes:
    """The experiment harness reproduces the qualitative shapes reported in EXPERIMENTS.md."""

    def test_e6_gap_shape(self):
        config = ExperimentConfig(trials=2, stream_length=1000)
        result = run_experiment("E6", config)
        rows = {(row["universe"], row["sizing"], row["adversary"]): row for row in result.rows}
        assert rows[("huge", "vc-sized", "static")]["failure_rate"] == 0.0
        assert rows[("huge", "vc-sized", "adaptive")]["failure_rate"] == 1.0
        assert rows[("moderate", "lnR-sized", "adaptive")]["failure_rate"] == 0.0

    def test_e3_attack_transition_shape(self):
        config = ExperimentConfig(trials=2, stream_length=1000)
        result = run_experiment("E3", config)
        reservoir_rows = [row for row in result.rows if row["mechanism"] == "reservoir"]
        below = [row for row in reservoir_rows if row["below_threshold"]]
        above = [row for row in reservoir_rows if not row["below_threshold"]]
        assert min(row["mean_error"] for row in below) > 0.5
        assert min(row["mean_error"] for row in above) < 0.25
