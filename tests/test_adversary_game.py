"""Tests for the game runners (Figures 1 and 2) and the static adversaries."""

from __future__ import annotations

import pytest

from repro.adversary import (
    GeneratorAdversary,
    SortedAdversary,
    StaticAdversary,
    UniformAdversary,
    ZipfAdversary,
    run_adaptive_game,
    run_continuous_game,
)
from repro.exceptions import ConfigurationError, StreamExhaustedError
from repro.samplers import BernoulliSampler, ReservoirSampler
from repro.setsystems import PrefixSystem


class TestStaticAdversaries:
    def test_static_adversary_replays_stream(self):
        adversary = StaticAdversary([5, 4, 3])
        elements = [adversary.next_element(i, None) for i in range(1, 4)]
        assert elements == [5, 4, 3]

    def test_static_adversary_exhaustion(self):
        adversary = StaticAdversary([1])
        adversary.next_element(1, None)
        with pytest.raises(StreamExhaustedError):
            adversary.next_element(2, None)

    def test_static_adversary_reset(self):
        adversary = StaticAdversary([1, 2])
        adversary.next_element(1, None)
        adversary.reset()
        assert adversary.remaining == 2

    def test_empty_static_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            StaticAdversary([])

    def test_uniform_adversary_stays_in_universe(self, rng):
        adversary = UniformAdversary(100, seed=rng)
        values = [adversary.next_element(i, None) for i in range(1, 201)]
        assert all(1 <= value <= 100 for value in values)

    def test_sorted_adversary_is_identity(self):
        adversary = SortedAdversary()
        assert [adversary.next_element(i, None) for i in (1, 2, 3)] == [1, 2, 3]

    def test_sorted_adversary_respects_universe_limit(self):
        adversary = SortedAdversary(universe_size=2)
        adversary.next_element(1, None)
        adversary.next_element(2, None)
        with pytest.raises(StreamExhaustedError):
            adversary.next_element(3, None)

    def test_zipf_adversary_heavy_tail(self, rng):
        adversary = ZipfAdversary(1000, exponent=1.5, seed=rng)
        values = [adversary.next_element(i, None) for i in range(1, 501)]
        assert all(1 <= value <= 1000 for value in values)
        # Zipf streams concentrate on small values.
        assert sum(1 for value in values if value <= 5) > len(values) * 0.4

    def test_zipf_invalid_exponent(self):
        with pytest.raises(ConfigurationError):
            ZipfAdversary(100, exponent=1.0)

    def test_generator_adversary_reset_reproduces(self):
        adversary = GeneratorAdversary(lambda i, rng: int(rng.integers(0, 100)), seed=3)
        first = [adversary.next_element(i, None) for i in range(1, 11)]
        adversary.reset()
        second = [adversary.next_element(i, None) for i in range(1, 11)]
        assert first == second


class TestAdaptiveGame:
    def test_game_runs_requested_rounds(self, rng):
        result = run_adaptive_game(
            BernoulliSampler(0.5, seed=rng), UniformAdversary(50, seed=rng), 100
        )
        assert result.stream_length == 100
        assert len(result.updates) == 100

    def test_game_without_set_system_has_no_verdict(self, rng):
        result = run_adaptive_game(
            BernoulliSampler(0.5, seed=rng), UniformAdversary(50, seed=rng), 20
        )
        assert result.error is None
        assert result.succeeded is None

    def test_game_with_set_system_scores_error(self, rng):
        system = PrefixSystem(50)
        result = run_adaptive_game(
            ReservoirSampler(40, seed=rng),
            UniformAdversary(50, seed=rng),
            200,
            set_system=system,
            epsilon=0.5,
        )
        assert 0.0 <= result.error <= 1.0
        assert result.succeeded is True

    def test_epsilon_without_system_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            run_adaptive_game(
                BernoulliSampler(0.5, seed=rng),
                UniformAdversary(50, seed=rng),
                10,
                epsilon=0.1,
            )

    def test_invalid_stream_length_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            run_adaptive_game(
                BernoulliSampler(0.5, seed=rng), UniformAdversary(50, seed=rng), 0
            )

    def test_empty_final_sample_scores_error_one(self):
        system = PrefixSystem(50)
        result = run_adaptive_game(
            BernoulliSampler(1e-9, seed=0),
            UniformAdversary(50, seed=1),
            50,
            set_system=system,
            epsilon=0.2,
        )
        assert result.error == 1.0
        assert result.succeeded is False

    def test_keep_updates_false_drops_log(self, rng):
        result = run_adaptive_game(
            BernoulliSampler(0.5, seed=rng),
            UniformAdversary(50, seed=rng),
            30,
            keep_updates=False,
        )
        assert result.updates == []

    def test_total_accepted_counts_accept_events(self, rng):
        result = run_adaptive_game(
            BernoulliSampler(1.0, seed=rng), UniformAdversary(50, seed=rng), 25
        )
        assert result.total_accepted == 25

    def test_knowledge_oblivious_hides_state(self, rng):
        class Spy(UniformAdversary):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.seen = []

            def next_element(self, round_index, observed_sample):
                self.seen.append(observed_sample)
                return super().next_element(round_index, observed_sample)

        # Overriding next_element reverts the adversary to per-round
        # decision points even under default chunking, so the spy sees
        # every round.
        spy = Spy(10, seed=rng)
        run_adaptive_game(BernoulliSampler(0.5, seed=rng), spy, 10, knowledge="oblivious")
        assert len(spy.seen) == 10 and all(view is None for view in spy.seen)

    def test_knowledge_full_exposes_sample(self, rng):
        class Spy(UniformAdversary):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.seen_sizes = []

            def next_element(self, round_index, observed_sample):
                # The view is live state; record its size at observation time.
                self.seen_sizes.append(
                    None if observed_sample is None else len(observed_sample)
                )
                return super().next_element(round_index, observed_sample)

        spy = Spy(10, seed=rng)
        run_adaptive_game(BernoulliSampler(1.0, seed=rng), spy, 5, knowledge="full")
        # Before round i the sample holds i - 1 elements (probability 1 here).
        assert spy.seen_sizes == [0, 1, 2, 3, 4]

    def test_overridden_next_element_is_honoured_under_default_chunking(self, rng):
        """Subclasses of the vectorised static adversaries that override the
        per-round hook must not be silently bypassed by the batched
        next_elements (regression)."""

        class ConstantAttack(UniformAdversary):
            def next_element(self, round_index, observed_sample):
                return 7

        result = run_adaptive_game(
            BernoulliSampler(0.5, seed=rng), ConstantAttack(10, seed=rng), 50
        )
        assert result.stream == [7] * 50

        class EveryOther(StaticAdversary):
            def next_element(self, round_index, observed_sample):
                element = super().next_element(round_index, observed_sample)
                return -element if round_index % 2 else element

        chunked = run_adaptive_game(
            BernoulliSampler(0.5, seed=1), EveryOther(list(range(1, 41))), 40
        )
        per_element = run_adaptive_game(
            BernoulliSampler(0.5, seed=1), EveryOther(list(range(1, 41))), 40, chunk_size=1
        )
        assert chunked.stream == per_element.stream


class TestContinuousGame:
    def test_checkpoints_default_to_geometric_schedule(self, rng):
        system = PrefixSystem(50)
        result = run_continuous_game(
            ReservoirSampler(30, seed=rng),
            UniformAdversary(50, seed=rng),
            200,
            set_system=system,
            epsilon=0.4,
        )
        assert result.checkpoints[0] == 1
        assert result.checkpoints[-1] == 200
        assert len(result.checkpoint_errors) == len(result.checkpoints)

    def test_explicit_checkpoints_respected(self, rng):
        system = PrefixSystem(50)
        result = run_continuous_game(
            ReservoirSampler(30, seed=rng),
            UniformAdversary(50, seed=rng),
            100,
            set_system=system,
            checkpoints=[10, 50, 100],
        )
        assert result.checkpoints == [10, 50, 100]

    def test_out_of_range_checkpoint_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            run_continuous_game(
                ReservoirSampler(5, seed=rng),
                UniformAdversary(50, seed=rng),
                20,
                set_system=PrefixSystem(50),
                checkpoints=[25],
            )

    def test_first_violation_and_success_flags(self, rng):
        system = PrefixSystem(50)
        result = run_continuous_game(
            ReservoirSampler(45, seed=rng),
            UniformAdversary(50, seed=rng),
            300,
            set_system=system,
            epsilon=0.5,
        )
        assert result.continuously_succeeded is True
        assert result.first_violation is None

    def test_max_checkpoint_error_at_least_final_error(self, rng):
        system = PrefixSystem(50)
        result = run_continuous_game(
            ReservoirSampler(20, seed=rng),
            UniformAdversary(50, seed=rng),
            150,
            set_system=system,
            epsilon=0.4,
            checkpoints=list(range(1, 151)),
        )
        assert result.max_checkpoint_error >= result.error - 1e-12
