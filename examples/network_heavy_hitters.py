"""Heavy-hitter detection on adversarial network traffic (Corollary 1.6).

Scenario from the paper's introduction: a network device keeps statistics over
a *sampled* substream of packets, and an adversary who can observe the
device's behaviour crafts traffic to evade or trigger its heavy-flow detector.
The sample-and-count detector of Corollary 1.6, sized with the ``ln |U|``
term, keeps its promise even against the switching attack that concentrates
traffic on flows the sampler has missed.

Run with ``python examples/network_heavy_hitters.py``.
"""

from __future__ import annotations

from collections import Counter

from repro import MisraGriesSummary, SwitchingSingletonAdversary, run_adaptive_game
from repro.applications import SampleHeavyHitters, evaluate_heavy_hitters, exact_heavy_hitters
from repro.streams import planted_heavy_hitter_stream

NUM_FLOWS = 50_000          # |U|: number of distinct flow identifiers
ALPHA = 0.3                 # report flows carrying >= 30% of packets
EPSILON = 0.2               # never report flows carrying <= 10%
STREAM_LENGTH = 30_000


def static_traffic_demo() -> None:
    print("=== static traffic with two planted heavy flows ===")
    stream = planted_heavy_hitter_stream(
        STREAM_LENGTH, NUM_FLOWS, heavy_values=(17, 4242), heavy_fraction=0.31, seed=5
    )
    detector = SampleHeavyHitters(NUM_FLOWS, ALPHA, EPSILON, delta=0.05, seed=5)
    detector.extend(stream)
    reported = detector.report()
    truth = exact_heavy_hitters(stream, ALPHA)
    verdict = evaluate_heavy_hitters(reported, stream, ALPHA, EPSILON)
    print(f"true heavy flows:     {sorted(truth)}")
    print(f"reported heavy flows: {sorted(reported)}")
    print(f"sample size: {detector.sampler.sample_size}, "
          f"promise satisfied: {verdict.correct}")


def adversarial_traffic_demo() -> None:
    print("\n=== adaptive traffic: the switching attack ===")
    detector = SampleHeavyHitters(NUM_FLOWS, ALPHA, EPSILON, delta=0.05, seed=5)
    adversary = SwitchingSingletonAdversary(NUM_FLOWS, revisit_evicted=True)
    outcome = run_adaptive_game(
        detector.sampler, adversary, STREAM_LENGTH, keep_updates=False
    )
    stream = outcome.stream
    verdict = evaluate_heavy_hitters(detector.report(), stream, ALPHA, EPSILON)
    heaviest_flow, heaviest_count = Counter(stream).most_common(1)[0]
    print(f"the attack's heaviest uncaught flow ({heaviest_flow}) reached density "
          f"{heaviest_count / len(stream):.4f} — far below alpha = {ALPHA}")
    print(f"flows the adversary burnt through: {len(adversary.burnt_targets)}")
    print(f"sample-based detector promise satisfied: {verdict.correct}")

    # Deterministic baseline for comparison: always correct, but must count
    # every packet.
    misra_gries = MisraGriesSummary(capacity=int(2 / EPSILON))
    misra_gries.extend(stream)
    mg_report = set(misra_gries.heavy_hitters(ALPHA))
    mg_verdict = evaluate_heavy_hitters(mg_report, stream, ALPHA, EPSILON)
    print(f"Misra–Gries baseline promise satisfied: {mg_verdict.correct} "
          f"(counters used: {misra_gries.memory_footprint()})")


if __name__ == "__main__":
    static_traffic_demo()
    adversarial_traffic_demo()
