"""Quickstart: robust sampling in the adversarial streaming model.

This example walks through the library's core workflow:

1. pick a set system describing which statistics must be preserved,
2. size a sampler using Theorem 1.2's adaptive bound,
3. play the adversarial game of the paper against it, and
4. check that the resulting sample is an epsilon-approximation of the stream.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import (
    PrefixSystem,
    ReservoirSampler,
    ThresholdAttackAdversary,
    certify_reservoir,
    reservoir_adaptive_size,
    run_adaptive_game,
)


def main() -> None:
    # The data are integers from an ordered universe; we want every prefix
    # density (hence every quantile) preserved up to epsilon.
    universe_size = 10_000
    epsilon, delta = 0.1, 0.05
    stream_length = 20_000
    system = PrefixSystem(universe_size)

    # Theorem 1.2: a reservoir of size 2 (ln|R| + ln(2/delta)) / eps^2 is
    # robust against ANY adaptive adversary.
    bound = reservoir_adaptive_size(system.log_cardinality(), epsilon, delta)
    print(f"set system: |R| = {system.cardinality()}, ln|R| = {system.log_cardinality():.2f}")
    print(f"Theorem 1.2 reservoir size: k = {bound.size}")

    # A theoretical certificate for this configuration (union bound + Freedman).
    certificate = certify_reservoir(bound.size, epsilon, set_system=system)
    print(f"certified failure probability: delta <= {certificate.delta:.4f}")

    # Play the paper's strongest generic attack (Figure 3) against it.
    sampler = ReservoirSampler(bound.size, seed=42)
    adversary = ThresholdAttackAdversary.for_reservoir(
        bound.size, stream_length, universe_size=universe_size
    )
    game = run_adaptive_game(
        sampler,
        adversary,
        stream_length,
        set_system=system,
        epsilon=epsilon,
        keep_updates=False,
    )
    print(f"\nplayed {game.stream_length} adversarial rounds "
          f"({game.sampler_name} vs {game.adversary_name})")
    print(f"final sample size: {game.sample_size}")
    print(f"worst prefix-density error: {game.error:.4f} (target epsilon = {epsilon})")
    print(f"is the sample an epsilon-approximation? {'yes' if game.succeeded else 'no'}")

    # For contrast: the same attack against a reservoir that is 20x too small.
    small = max(2, bound.size // 20)
    undersized_game = run_adaptive_game(
        ReservoirSampler(small, seed=42),
        ThresholdAttackAdversary.for_reservoir(small, stream_length),
        stream_length,
        set_system=None,
        keep_updates=False,
    )
    attack_system = PrefixSystem(
        ThresholdAttackAdversary.for_reservoir(small, stream_length).universe_size
    )
    error = attack_system.max_discrepancy(
        undersized_game.stream, list(undersized_game.sample)
    ).error
    print(f"\nthe same attack against an undersized reservoir (k = {small}) "
          f"reaches error {error:.3f} — the sample is just the smallest elements")


if __name__ == "__main__":
    main()
