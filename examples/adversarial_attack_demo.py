"""Demonstration of the paper's two attacks and where they stop working.

The introduction's bisection attack (continuous universe [0, 1]) makes the
sample the exact set of smallest stream elements, but needs precision that
doubles every round.  The Figure-3 attack works over a finite integer universe
— provided that universe is enormous — and Theorem 1.3 pins down exactly how
small a sample has to be for it to succeed.  This script runs both and prints
the resulting "most unrepresentative" samples, then shows the attack failing
once the sample is sized per Theorem 1.2.

Run with ``python examples/adversarial_attack_demo.py``.
"""

from __future__ import annotations

from repro import (
    BernoulliSampler,
    BisectionAdversary,
    ContinuousPrefixSystem,
    PrefixSystem,
    ReservoirSampler,
    ThresholdAttackAdversary,
    reservoir_adaptive_size,
    reservoir_attack_threshold,
    run_adaptive_game,
)
from repro.adversary import recommended_universe_size


def bisection_attack_demo() -> None:
    print("=== Introduction attack: bisection over [0, 1] ===")
    stream_length = 400
    sampler = BernoulliSampler(0.2, seed=7)
    adversary = BisectionAdversary()
    game = run_adaptive_game(
        sampler, adversary, stream_length, set_system=ContinuousPrefixSystem()
    )
    sample_sorted = sorted(game.sample)
    stream_sorted = sorted(game.stream)
    is_smallest = sample_sorted == stream_sorted[: len(sample_sorted)]
    print(f"stream length: {stream_length}, sample size: {game.sample_size}")
    print(f"sample == smallest sampled-size elements of the stream: {is_smallest}")
    print(f"worst prefix error: {game.error:.3f}")
    print(
        "float precision ran out at round "
        f"{adversary.precision_exhausted_at} — the paper's point that the attack "
        "needs precision exponential in the stream length"
    )


def figure3_attack_demo() -> None:
    print("\n=== Figure-3 attack over a finite (but huge) integer universe ===")
    stream_length = 2_000
    universe_size = recommended_universe_size(stream_length)
    system = PrefixSystem(universe_size)
    print(f"universe size ~ 10^{len(str(universe_size)) - 1} (ln|R| = {system.log_cardinality():.0f})")

    threshold = reservoir_attack_threshold(system.log_cardinality(), stream_length)
    print(f"Theorem 1.3: the attack defeats any reservoir with k < {threshold:.1f}")

    for reservoir_size in (max(2, int(threshold / 2)), 64, 1024):
        sampler = ReservoirSampler(reservoir_size, seed=3)
        adversary = ThresholdAttackAdversary.for_reservoir(
            reservoir_size, stream_length, universe_size=universe_size
        )
        game = run_adaptive_game(
            sampler, adversary, stream_length, set_system=system, keep_updates=False
        )
        print(
            f"  k = {reservoir_size:5d}: worst prefix error = {game.error:.3f}"
            + ("  <-- attack wins" if game.error > 0.25 else "")
        )

    # Theorem 1.2 regime: for a *moderate* universe the required sample is
    # small and the attack is powerless.
    moderate_universe = 100_000
    moderate_system = PrefixSystem(moderate_universe)
    robust_size = reservoir_adaptive_size(moderate_system.log_cardinality(), 0.1, 0.05).size
    sampler = ReservoirSampler(robust_size, seed=3)
    adversary = ThresholdAttackAdversary.for_reservoir(
        robust_size, stream_length, universe_size=moderate_universe
    )
    game = run_adaptive_game(
        sampler, adversary, stream_length, set_system=moderate_system, keep_updates=False
    )
    print(
        f"\nmoderate universe (N = {moderate_universe}): Theorem 1.2 size k = {robust_size}, "
        f"attack error = {game.error:.3f} — robust, as the theorem promises"
    )


if __name__ == "__main__":
    bisection_attack_demo()
    figure3_attack_demo()
