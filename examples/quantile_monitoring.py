"""Robust quantile monitoring of a latency-like stream (Corollary 1.5).

Scenario: a service monitors request latencies and reports running quantiles
(p50 / p90 / p99).  Latencies arrive online, the distribution drifts, and —
because the monitor's decisions feed back into the traffic it receives — the
stream may effectively be adaptive.  The robust quantile sketch of
Corollary 1.5 handles all of this with a plain reservoir sample.

The script compares three estimators on the same streams:

* :class:`RobustQuantileSketch` (reservoir sized per Corollary 1.5),
* the deterministic Greenwald–Khanna sketch, and
* a naive "first k elements" baseline, which drifts and adaptivity destroy.

Run with ``python examples/quantile_monitoring.py``.
"""

from __future__ import annotations

import numpy as np

from repro import GreenwaldKhannaSketch, MedianAttackAdversary, run_adaptive_game
from repro.applications import RobustQuantileSketch, rank_of
from repro.streams import two_phase_stream

EPSILON = 0.05
UNIVERSE_SIZE = 2**20
QUANTILES = (0.5, 0.9, 0.99)


def report_errors(name: str, stream: list[int], estimates: dict[float, float]) -> None:
    parts = []
    for fraction, estimate in estimates.items():
        below = sum(1 for x in stream if x < estimate) / len(stream)
        at_or_below = rank_of(stream, estimate) / len(stream)
        if below <= fraction <= at_or_below:
            error = 0.0
        else:
            error = min(abs(fraction - below), abs(fraction - at_or_below))
        parts.append(f"p{int(fraction * 100):02d} err={error:.3f}")
    print(f"  {name:<22s} " + "  ".join(parts))


def drifting_latency_demo() -> None:
    print("=== drifting latency stream (distribution shifts mid-way) ===")
    stream = two_phase_stream(30_000, UNIVERSE_SIZE, change_point_fraction=0.6, seed=1)

    sketch = RobustQuantileSketch(UNIVERSE_SIZE, EPSILON, delta=0.05, seed=0)
    gk = GreenwaldKhannaSketch(EPSILON)
    for value in stream:
        sketch.update(value)
        gk.update(value)
    first_k = stream[: sketch.memory_footprint()]

    print(f"stream length: {len(stream)}, reservoir size: {sketch.memory_footprint()}, "
          f"GK tuples: {gk.memory_footprint()}")
    report_errors("robust reservoir", stream, {q: sketch.quantile(q) for q in QUANTILES})
    report_errors("greenwald-khanna", stream, {q: gk.quantile_query(q) for q in QUANTILES})
    report_errors("first-k baseline", stream,
                  {q: float(np.quantile(first_k, q)) for q in QUANTILES})


def adaptive_latency_demo() -> None:
    print("\n=== adaptive stream (median attack against the monitor's sample) ===")
    sketch = RobustQuantileSketch(UNIVERSE_SIZE, epsilon=0.1, delta=0.05, seed=0)
    n = 20_000
    adversary = MedianAttackAdversary(n, universe_size=UNIVERSE_SIZE)
    outcome = run_adaptive_game(sketch.sampler, adversary, n, keep_updates=False)
    stream = outcome.stream
    sample = list(outcome.sample)
    print(f"stream length: {n}, sample size: {len(sample)}")
    report_errors(
        "robust reservoir",
        stream,
        {q: float(np.quantile(sample, q)) for q in QUANTILES},
    )
    report_errors("first-k baseline", stream,
                  {q: float(np.quantile(stream[: len(sample)], q)) for q in QUANTILES})


if __name__ == "__main__":
    drifting_latency_demo()
    adaptive_latency_demo()
