"""Distributed-database load balancing (Section 1.2 of the paper).

A query router assigns each incoming query to one of ``K`` query-processing
servers uniformly at random, so each server's substream is a Bernoulli(1/K)
sample of the global workload.  Each server later uses its substream for
query optimisation, so it had better be representative — even if the client
workload drifts or adapts.  This script:

1. sizes the stream length from the theory (Theorem 1.2 + union bound over
   servers),
2. routes a skewed query workload, a drifting workload and an adaptive
   client, and
3. reports the worst per-server discrepancy, plus a distributed-reservoir
   merge as a bonus (the coordinator view of [CTW16]).

Run with ``python examples/distributed_load_balancing.py``.
"""

from __future__ import annotations

from repro import DistributedReservoir, PrefixSystem
from repro.adversary import GreedyDensityAdversary
from repro.applications import required_stream_length, simulate_load_balancing
from repro.setsystems import Prefix
from repro.streams import query_workload, two_phase_stream

NUM_SERVERS = 8
UNIVERSE_SIZE = 2_000       # distinct query keys
EPSILON = 0.1
DELTA = 0.05


def main() -> None:
    system = PrefixSystem(UNIVERSE_SIZE)
    needed = required_stream_length(NUM_SERVERS, system.log_cardinality(), EPSILON, DELTA)
    print(f"{NUM_SERVERS} servers, epsilon = {EPSILON}: theory asks for n >= {needed} queries")

    workloads = {
        "skewed keys": query_workload(needed, UNIVERSE_SIZE, seed=1),
        "drifting distribution": two_phase_stream(needed, UNIVERSE_SIZE, seed=2),
    }
    for name, stream in workloads.items():
        report = simulate_load_balancing(stream, NUM_SERVERS, system, seed=3)
        print(f"\nworkload: {name}")
        print(f"  per-server loads: min={min(report.per_server_loads)}, "
              f"max={max(report.per_server_loads)} (imbalance {report.load_imbalance:.4f})")
        print(f"  worst server discrepancy: {report.worst_error:.4f} "
              f"({report.servers_within(EPSILON)}/{NUM_SERVERS} servers within epsilon)")

    # An adaptive client that watches which server answers each query and
    # tries to skew one server's view of the key distribution.
    adversary = GreedyDensityAdversary(
        Prefix(UNIVERSE_SIZE // 2), in_range_element=1, out_range_element=UNIVERSE_SIZE
    )
    adaptive_report = simulate_load_balancing(
        None, NUM_SERVERS, system, adversary=adversary, stream_length=6_000, seed=4
    )
    print("\nworkload: adaptive client (6000 queries)")
    print(f"  worst server discrepancy: {adaptive_report.worst_error:.4f} "
          f"({adaptive_report.servers_within(EPSILON)}/{NUM_SERVERS} servers within epsilon)")

    # Bonus: the distributed-reservoir coordinator produces one global uniform
    # sample of everything the servers saw, on demand.
    coordinator = DistributedReservoir(NUM_SERVERS, capacity=500, seed=5)
    stream = query_workload(needed, UNIVERSE_SIZE, seed=6)
    for index, query in enumerate(stream):
        coordinator.process(index % NUM_SERVERS, query)
    merged = coordinator.merged_sample()
    merged_error = system.max_discrepancy(stream, merged).error
    print(f"\ndistributed reservoir: merged sample of {len(merged)} queries, "
          f"global discrepancy {merged_error:.4f}")


if __name__ == "__main__":
    main()
