"""Lock-discipline rules.

The single-writer :class:`~repro.service.live.QueryService` relies on a
convention no test can see: shared mutable state is only written under the
writer lock, and readers get immutable published snapshots.  PR 9 shipped
that convention as prose.  These rules make it structural: a class that
creates a lock must declare which attributes the lock guards (a trailing
``# guarded-by: _lock`` comment on the attribute's ``__init__``
assignment), and every write to a guarded attribute outside ``__init__``
must sit lexically inside a ``with self._lock:`` block.  Methods whose name
ends in ``_locked`` are exempt by convention — they document that the
caller already holds the lock.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator

from .engine import Module, Rule, dotted_name
from .findings import Finding

__all__ = ["LockDisciplineRule", "LOCK_RULES"]

#: Trailing registry comment: ``self._published = None  # guarded-by: _lock``.
_GUARDED_BY_PATTERN = re.compile(r"#\s*guarded-by:\s*(?P<lock>[A-Za-z_][A-Za-z0-9_]*)")

#: Constructors that create a mutual-exclusion primitive.
_LOCK_FACTORIES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "Lock",
        "RLock",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
    }
)


def _self_attribute(node: ast.expr) -> str | None:
    """``self.<attr>`` → ``attr`` (``None`` for anything else)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _assigned_self_attributes(node: ast.stmt) -> Iterator[tuple[str, int]]:
    """Yield ``(attribute, lineno)`` for every ``self.X`` write in ``node``."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    elif isinstance(node, ast.Delete):
        targets = list(node.targets)
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                attr = _self_attribute(element)
                if attr is not None:
                    yield attr, element.lineno
        else:
            attr = _self_attribute(target)
            if attr is not None:
                yield attr, target.lineno


class LockDisciplineRule(Rule):
    """LCK001/LCK002 — guarded attributes are written only under their lock.

    * ``LCK002`` fires when a class creates a lock but declares no
      ``# guarded-by:`` registry — an unguarded lock is a convention
      nobody can check.
    * ``LCK001`` fires when a method writes a registered attribute outside
      a ``with self.<lock>:`` block (``__init__`` and ``*_locked`` helper
      methods are exempt: construction happens before sharing, and the
      ``_locked`` suffix documents a caller-held lock).
    """

    rule_id = "LCK001"
    name = "unguarded-write"
    description = (
        "a write to a `# guarded-by: <lock>`-registered attribute must sit "
        "inside `with self.<lock>:` (or live in a `*_locked` method)"
    )

    REGISTRY_RULE_ID = "LCK002"

    def check_module(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    # ------------------------------------------------------------------
    # Per-class analysis
    # ------------------------------------------------------------------
    def _check_class(self, module: Module, cls: ast.ClassDef) -> Iterator[Finding]:
        init = next(
            (
                stmt
                for stmt in cls.body
                if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"
            ),
            None,
        )
        if init is None:
            return
        locks, guarded = self._registry(module, init)
        if not locks:
            return
        if not guarded:
            yield module.finding(
                cls,
                self.REGISTRY_RULE_ID,
                f"class `{cls.name}` creates a lock ({', '.join(sorted(locks))}) "
                "but registers no guarded attributes; add `# guarded-by: "
                "<lock>` comments to the attributes the lock protects",
            )
            return
        for statement in cls.body:
            if not isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if statement.name == "__init__" or statement.name.endswith("_locked"):
                continue
            yield from self._check_method(module, cls, statement, guarded)

    def _registry(
        self, module: Module, init: ast.FunctionDef
    ) -> tuple[set[str], dict[str, str]]:
        """Return (lock attributes, {guarded attribute: lock name})."""
        locks: set[str] = set()
        guarded: dict[str, str] = {}
        for statement in ast.walk(init):
            if not isinstance(statement, (ast.Assign, ast.AnnAssign)):
                continue
            value = statement.value
            is_lock = (
                isinstance(value, ast.Call)
                and dotted_name(value.func) in _LOCK_FACTORIES
            )
            for attr, lineno in _assigned_self_attributes(statement):
                if is_lock:
                    locks.add(attr)
                    continue
                line = module.lines[lineno - 1] if lineno <= len(module.lines) else ""
                match = _GUARDED_BY_PATTERN.search(line)
                if match is not None:
                    guarded[attr] = match.group("lock")
        return locks, guarded

    def _check_method(
        self,
        module: Module,
        cls: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        guarded: dict[str, str],
    ) -> Iterator[Finding]:
        yield from self._walk_body(module, cls, method.name, method.body, guarded, held=frozenset())

    def _walk_body(
        self,
        module: Module,
        cls: ast.ClassDef,
        method_name: str,
        body: Iterable[ast.stmt],
        guarded: dict[str, str],
        held: frozenset[str],
    ) -> Iterator[Finding]:
        for statement in body:
            if isinstance(statement, (ast.With, ast.AsyncWith)):
                acquired = set(held)
                for item in statement.items:
                    attr = _self_attribute(item.context_expr)
                    if attr is not None:
                        acquired.add(attr)
                yield from self._walk_body(
                    module, cls, method_name, statement.body, guarded,
                    held=frozenset(acquired),
                )
                continue
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested function runs later, on an unknown thread; locks
                # held at definition time are not held at call time.
                yield from self._walk_body(
                    module, cls, method_name, statement.body, guarded,
                    held=frozenset(),
                )
                continue
            for attr, lineno in _assigned_self_attributes(statement):
                lock = guarded.get(attr)
                if lock is not None and lock not in held:
                    yield Finding(
                        file=module.relpath,
                        line=lineno,
                        rule=self.rule_id,
                        message=(
                            f"`{cls.name}.{method_name}` writes `self.{attr}` "
                            f"(guarded-by {lock}) outside `with self.{lock}:`"
                        ),
                    )
            for child_body in self._nested_bodies(statement):
                yield from self._walk_body(
                    module, cls, method_name, child_body, guarded, held=held
                )

    @staticmethod
    def _nested_bodies(statement: ast.stmt) -> Iterator[list[ast.stmt]]:
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(statement, attr, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                yield block
        for handler in getattr(statement, "handlers", []):
            yield handler.body
        for case in getattr(statement, "cases", []):
            yield case.body


LOCK_RULES: tuple[Rule, ...] = (LockDisciplineRule(),)
