"""Finding records and inline-suppression directives for the lint engine.

A :class:`Finding` is the engine's unit of output: one rule firing at one
source location.  Suppressions are inline comments of the form::

    some_code()  # repro: noqa[RNG004]: merged copy receives a spawned child

The bracketed rule list is mandatory (a blanket ``noqa`` would silently
swallow future rules) and so is the reason string after the second colon —
an unexplained suppression is itself a finding (``NOQ001``), because the
whole point of the registry is that every deviation from a project
invariant carries its justification next to the code.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Any

__all__ = [
    "Finding",
    "NoqaDirective",
    "RULE_ID_PATTERN",
    "parse_directives",
]

#: Rule identifiers are a family prefix plus a three-digit number (RNG004).
RULE_ID_PATTERN = re.compile(r"^[A-Z]{3}\d{3}$")

#: ``# repro: noqa[RNG004]`` or ``# repro: noqa[RNG004, DET001]: reason``.
_DIRECTIVE_PATTERN = re.compile(
    r"#\s*repro:\s*noqa"  # marker
    r"(?:\[(?P<rules>[^\]]*)\])?"  # bracketed rule list (required for validity)
    r"(?::\s*(?P<reason>.*\S))?"  # ``: reason`` tail (required for validity)
    r"\s*$"
)

#: Rule id of the malformed-suppression finding (never itself suppressible).
NOQA_RULE_ID = "NOQ001"


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule firing at one source location."""

    file: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.file}:{self.line}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass(frozen=True, slots=True)
class NoqaDirective:
    """One parsed ``# repro: noqa[...]`` comment.

    ``rules`` is the set of rule ids the directive suppresses on its line;
    ``reason`` is the mandatory justification.  A directive with missing or
    malformed rules/reason still parses (so the engine can report it as
    ``NOQ001``) but suppresses nothing.
    """

    line: int
    rules: frozenset[str]
    reason: str | None

    @property
    def valid(self) -> bool:
        return bool(self.rules) and bool(self.reason)

    def suppresses(self, rule: str) -> bool:
        return self.valid and rule in self.rules and rule != NOQA_RULE_ID

    def problem(self) -> str | None:
        """Why this directive is malformed (``None`` when it is valid)."""
        if not self.rules:
            return (
                "suppression must name the rules it silences: "
                "`# repro: noqa[RULE]: reason`"
            )
        bad = sorted(rule for rule in self.rules if not RULE_ID_PATTERN.match(rule))
        if bad:
            return f"suppression names malformed rule ids: {', '.join(bad)}"
        if not self.reason:
            return (
                "suppression must carry a reason: "
                "`# repro: noqa[RULE]: why this deviation is sound`"
            )
        return None


def parse_directives(source: str) -> dict[int, NoqaDirective]:
    """Extract every ``# repro: noqa`` directive, keyed by 1-based line.

    Only genuine comment tokens are considered (the source is tokenized),
    so a directive *described* inside a docstring or string literal is
    never mistaken for one.
    """
    directives: dict[int, NoqaDirective] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return directives
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        text = token.string
        if "repro:" not in text or "noqa" not in text:
            continue
        match = _DIRECTIVE_PATTERN.match(text)
        if match is None:
            continue
        raw_rules = match.group("rules")
        rules = frozenset(
            part.strip() for part in (raw_rules or "").split(",") if part.strip()
        )
        lineno = token.start[0]
        directives[lineno] = NoqaDirective(
            line=lineno, rules=rules, reason=match.group("reason")
        )
    return directives
