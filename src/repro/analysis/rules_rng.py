"""RNG-discipline rules.

The paper's adversarial model (Section 2) gives the adversary the sampler's
*state* but never its future coin flips, and the robustness wrappers of
[BJWY20] only deliver their guarantees when replicated copies draw from
genuinely independent streams.  Both properties die quietly when code
reaches for ambient randomness or shares a live ``Generator`` object across
copies — the exact bug class PR 9 shipped (merged ``ReplicatedDefenseSampler``
copies sharing one generator, making post-merge ingestion
chunking-dependent).  These rules pin the project's RNG conventions:
everything flows from seeded :class:`numpy.random.Generator` objects created
through :mod:`repro.rng`, and copies receive spawned or derived children,
never a reference to an existing generator.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from .engine import Module, Rule, dotted_name
from .findings import Finding

__all__ = [
    "RandomModuleRule",
    "GlobalNumpyRngRule",
    "SeedlessGeneratorRule",
    "SharedGeneratorRule",
    "RNG_RULES",
]

#: ``np.random`` attributes that construct seeded, private streams — the
#: only sanctioned uses of the ``np.random`` namespace.
_CONSTRUCTOR_ATTRS = frozenset(
    {
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "default_rng",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Methods in which assigning an existing generator to an attribute means
#: two summaries now share (and advance) one stream.
_COPYING_METHODS = frozenset(
    {"merge", "split", "copy", "clone", "__copy__", "__deepcopy__"}
)


def _is_rng_attr(name: str) -> bool:
    lowered = name.lower()
    return "rng" in lowered or "generator" in lowered


class RandomModuleRule(Rule):
    """RNG001 — the stdlib ``random`` module is banned inside the package."""

    rule_id = "RNG001"
    name = "stdlib-random-module"
    description = (
        "`import random` is banned in repro: the stdlib global RNG is "
        "process-shared, unseedable per component, and invisible to the "
        "substream derivation in repro.rng"
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield module.finding(
                            node,
                            self.rule_id,
                            "stdlib `random` is banned; use a seeded "
                            "numpy Generator from repro.rng",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" or (
                    node.module or ""
                ).startswith("random."):
                    yield module.finding(
                        node,
                        self.rule_id,
                        "stdlib `random` is banned; use a seeded "
                        "numpy Generator from repro.rng",
                    )


class GlobalNumpyRngRule(Rule):
    """RNG002 — the legacy global ``np.random.*`` state is banned."""

    rule_id = "RNG002"
    name = "global-numpy-rng"
    description = (
        "legacy `np.random.<fn>` calls draw from one process-global stream, "
        "so seeding is nonlocal and parallel trials collide; only Generator/"
        "SeedSequence/bit-generator constructors may be referenced"
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            dotted = dotted_name(node)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if len(parts) != 3 or parts[0] not in ("np", "numpy"):
                continue
            if parts[1] != "random" or parts[2] in _CONSTRUCTOR_ATTRS:
                continue
            yield module.finding(
                node,
                self.rule_id,
                f"`{dotted}` uses the process-global legacy RNG; draw from a "
                "seeded Generator instead",
            )


class SeedlessGeneratorRule(Rule):
    """RNG003 — seedless generator construction outside ``rng.py``."""

    rule_id = "RNG003"
    name = "seedless-default-rng"
    description = (
        "`default_rng()` / `PCG64()` with no seed draws fresh OS entropy, "
        "which no experiment seed can reproduce; only repro.rng's single "
        "conversion point may do that (for explicit `seed=None` requests)"
    )

    _SEEDABLE = frozenset(
        {"default_rng", "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937"}
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        if module.relpath.endswith("/rng.py") or module.relpath == "rng.py":
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or node.args or node.keywords:
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            terminal = dotted.rsplit(".", maxsplit=1)[-1]
            if terminal in self._SEEDABLE:
                yield module.finding(
                    node,
                    self.rule_id,
                    f"seedless `{dotted}()` is irreproducible; pass a seed or "
                    "derive a substream via repro.rng",
                )


class SharedGeneratorRule(Rule):
    """RNG004 — generator sharing across copies in merge/split/copy methods.

    The PR 9 bug class: inside a method that produces another summary
    (``merge``/``split``/``copy``), assigning a *pre-existing* generator — a
    parameter, or another object's attribute — to an rng-valued attribute
    makes two summaries advance one stream, so ingesting either perturbs the
    other and chunking changes realised samples.  Copies must receive
    spawned (``spawn_generators``) or derived (``derive_substream``)
    children; those are ``Call`` values and pass the rule.
    """

    rule_id = "RNG004"
    name = "shared-generator-in-copying-method"
    description = (
        "in merge/split/copy methods, an rng-valued attribute assigned from "
        "a parameter or another object's attribute shares one live stream "
        "between summaries (the PR 9 ReplicatedDefenseSampler.merge bug); "
        "assign a spawned/derived child generator instead"
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in _COPYING_METHODS
            ):
                yield from self._check_method(module, node)

    def _check_method(
        self, module: Module, method: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        arguments = method.args
        params = {
            arg.arg
            for arg in (
                *arguments.posonlyargs,
                *arguments.args,
                *arguments.kwonlyargs,
            )
        }
        params.discard("self")
        for node in ast.walk(method):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            if value is None:
                continue
            shared = self._shares_existing_generator(value, params)
            if shared is None:
                continue
            for target in targets:
                if isinstance(target, ast.Attribute) and _is_rng_attr(target.attr):
                    yield module.finding(
                        node,
                        self.rule_id,
                        f"`{dotted_name(target) or target.attr}` assigned from "
                        f"{shared} in `{method.name}`; merged/split copies must "
                        "receive spawned or derived generators, never a live "
                        "reference",
                    )

    @staticmethod
    def _shares_existing_generator(
        value: ast.expr, params: set[str]
    ) -> str | None:
        """Describe why ``value`` is a pre-existing generator, or ``None``."""
        if isinstance(value, ast.Name) and value.id in params:
            return f"parameter `{value.id}`"
        if isinstance(value, ast.Attribute) and _is_rng_attr(value.attr):
            dotted = dotted_name(value)
            return f"attribute `{dotted or value.attr}`"
        if isinstance(value, ast.IfExp):
            for branch in (value.body, value.orelse):
                shared = SharedGeneratorRule._shares_existing_generator(
                    branch, params
                )
                if shared is not None:
                    return shared
        return None


RNG_RULES: tuple[Rule, ...] = (
    RandomModuleRule(),
    GlobalNumpyRngRule(),
    SeedlessGeneratorRule(),
    SharedGeneratorRule(),
)
