"""Project-invariant static analysis (``repro-experiments analyze``).

Four rule families encode invariants the repo has already been bitten by:

* **RNG discipline** (``RNG0xx``) — seeded numpy Generators only, no
  ambient randomness, no generator sharing across merged/split copies
  (the PR 9 ``ReplicatedDefenseSampler.merge`` bug).
* **Determinism** (``DET0xx``) — wall-clock reads confined to the timing
  layers; no order-undefined iteration feeding sampler/merge state.
* **Lock discipline** (``LCK0xx``) — the single-writer convention of the
  query service, checked structurally against a ``# guarded-by:`` registry.
* **Protocol contracts** (``PRO0xx``) — extend kernels, the cadence block
  protocol (the PR 7 chunking bug), scenario-registry test coverage.

Suppressions are inline ``# repro: noqa[RULE]: reason`` comments; the
reason is mandatory (``NOQ001``).  See ``docs/architecture.md`` for the
full catalogue and policy.
"""

from __future__ import annotations

from .engine import AnalysisEngine, ClassInfo, Module, ProjectIndex, Rule
from .findings import Finding, NoqaDirective, parse_directives
from .rules_determinism import DETERMINISM_RULES
from .rules_locks import LOCK_RULES
from .rules_protocols import PROTOCOL_RULES
from .rules_rng import RNG_RULES

__all__ = [
    "AnalysisEngine",
    "ClassInfo",
    "DEFAULT_RULES",
    "Finding",
    "Module",
    "NoqaDirective",
    "ProjectIndex",
    "Rule",
    "parse_directives",
]

#: The default rule set ``repro-experiments analyze`` runs (and the one the
#: "live tree is clean" test pins).
DEFAULT_RULES: tuple[Rule, ...] = (
    *RNG_RULES,
    *DETERMINISM_RULES,
    *LOCK_RULES,
    *PROTOCOL_RULES,
)
