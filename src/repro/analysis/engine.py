"""The project-invariant lint engine: module loading, rule running, suppression.

The engine walks a package tree, parses every module once, and hands the
parsed modules to two kinds of rules:

* **module rules** see one :class:`Module` at a time (an AST plus its raw
  source lines, so structural checks can consult trailing comments such as
  the ``# guarded-by:`` registry);
* **project rules** see the whole :class:`ProjectIndex` — a cross-file class
  table with transitive base resolution — so contracts like "every concrete
  ``StreamSampler`` subclass ships an ``extend`` kernel" hold across module
  boundaries, and registry/test cross-references can be checked.

Findings are filtered through inline ``# repro: noqa[RULE]: reason``
directives (:mod:`repro.analysis.findings`); malformed directives are
themselves reported as ``NOQ001`` and cannot be suppressed.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from .findings import NOQA_RULE_ID, Finding, NoqaDirective, parse_directives

__all__ = [
    "AnalysisEngine",
    "ClassInfo",
    "Module",
    "ProjectIndex",
    "Rule",
    "dotted_name",
    "load_module",
    "load_tree",
]


def dotted_name(node: ast.AST) -> str | None:
    """Resolve an attribute chain (``np.random.seed``) to its dotted string.

    Returns ``None`` for anything that is not a pure ``Name``/``Attribute``
    chain (calls, subscripts, ...), so callers can match on exact prefixes.
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


@dataclass(slots=True)
class Module:
    """One parsed source module plus the raw text the comment rules need."""

    path: Path
    relpath: str
    source: str
    lines: list[str]
    tree: ast.Module
    directives: dict[int, NoqaDirective]

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        return Finding(
            file=self.relpath,
            line=int(getattr(node, "lineno", 1)),
            rule=rule,
            message=message,
        )


@dataclass(slots=True)
class ClassInfo:
    """Cross-file class record used by the project rules."""

    name: str
    module: Module
    node: ast.ClassDef
    bases: tuple[str, ...]
    methods: frozenset[str]
    abstract_methods: frozenset[str]
    init_params: frozenset[str]


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names: set[str] = set()
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        dotted = dotted_name(target)
        if dotted is not None:
            names.add(dotted.rsplit(".", maxsplit=1)[-1])
    return names


def _class_info(module: Module, node: ast.ClassDef) -> ClassInfo:
    bases = tuple(
        name.rsplit(".", maxsplit=1)[-1]
        for name in (dotted_name(base) for base in node.bases)
        if name is not None
    )
    methods: set[str] = set()
    abstract: set[str] = set()
    init_params: set[str] = set()
    for statement in node.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods.add(statement.name)
            if "abstractmethod" in _decorator_names(statement):
                abstract.add(statement.name)
            if statement.name == "__init__":
                arguments = statement.args
                for arg in (
                    *arguments.posonlyargs,
                    *arguments.args,
                    *arguments.kwonlyargs,
                ):
                    init_params.add(arg.arg)
        elif isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    methods.add(target.id)
        elif isinstance(statement, ast.AnnAssign):
            if isinstance(statement.target, ast.Name):
                methods.add(statement.target.id)
    return ClassInfo(
        name=node.name,
        module=module,
        node=node,
        bases=bases,
        methods=frozenset(methods),
        abstract_methods=frozenset(abstract),
        init_params=frozenset(init_params),
    )


@dataclass(slots=True)
class ProjectIndex:
    """All parsed modules plus the class table the project rules query."""

    package_root: Path
    modules: list[Module]
    test_modules: list[Module] = field(default_factory=list)
    classes: dict[str, list[ClassInfo]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for module in self.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    info = _class_info(module, node)
                    self.classes.setdefault(info.name, []).append(info)

    # ------------------------------------------------------------------
    # Base-chain resolution (syntactic MRO over the project's class table)
    # ------------------------------------------------------------------
    def resolve_chain(
        self, info: ClassInfo, *, stop_at: str | None = None
    ) -> list[ClassInfo]:
        """``info`` plus every project-resolvable ancestor, depth-first.

        ``stop_at`` names a root class excluded from the chain (so rules can
        ask "does the subclass tree below the root provide this method").
        Ambiguous names (several classes sharing one name) contribute every
        candidate; external bases (``ABC``, stdlib) resolve to nothing.
        """
        chain: list[ClassInfo] = []
        seen: set[int] = set()
        stack = [info]
        while stack:
            current = stack.pop()
            if id(current.node) in seen:
                continue
            seen.add(id(current.node))
            chain.append(current)
            for base in current.bases:
                if stop_at is not None and base == stop_at:
                    continue
                stack.extend(self.classes.get(base, []))
        return chain

    def inherits_from(self, info: ClassInfo, root: str) -> bool:
        """True when ``root`` appears anywhere in ``info``'s base chain."""
        stack = list(info.bases)
        seen: set[str] = set()
        while stack:
            base = stack.pop()
            if base in seen:
                continue
            seen.add(base)
            if base == root:
                return True
            for candidate in self.classes.get(base, []):
                stack.extend(candidate.bases)
        return False

    def defined_methods(self, info: ClassInfo, *, stop_at: str | None = None) -> set[str]:
        """Every method name defined on ``info`` or a resolvable ancestor."""
        names: set[str] = set()
        for link in self.resolve_chain(info, stop_at=stop_at):
            names.update(link.methods)
        return names


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and override :meth:`check_module`
    (runs once per package module) and/or :meth:`check_project` (runs once
    with the whole index).
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""

    def check_module(self, module: Module) -> Iterable[Finding]:
        return ()

    def check_project(self, project: ProjectIndex) -> Iterable[Finding]:
        return ()


def load_module(path: Path, relpath: str) -> Module:
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    return Module(
        path=path,
        relpath=relpath,
        source=source,
        lines=lines,
        tree=tree,
        directives=parse_directives(source),
    )


def load_tree(root: Path, *, display_root: Path | None = None) -> list[Module]:
    """Parse every ``*.py`` file under ``root`` (sorted, stable order).

    ``display_root`` controls the path findings are reported under (defaults
    to ``root``'s parent, so a package at ``src/repro`` reports
    ``repro/...`` paths).
    """
    base = display_root if display_root is not None else root.parent
    modules = []
    for path in sorted(root.rglob("*.py")):
        relpath = path.relative_to(base).as_posix()
        modules.append(load_module(path, relpath))
    return modules


def _matches(rule_id: str, prefixes: Sequence[str]) -> bool:
    return any(rule_id.startswith(prefix) for prefix in prefixes)


class AnalysisEngine:
    """Run a rule set over a package tree and filter through suppressions."""

    def __init__(
        self,
        package_root: Path,
        rules: Sequence[Rule],
        *,
        tests_root: Path | None = None,
    ) -> None:
        self.package_root = Path(package_root)
        self.rules = list(rules)
        self.tests_root = None if tests_root is None else Path(tests_root)

    def load(self) -> ProjectIndex:
        modules = load_tree(self.package_root)
        test_modules: list[Module] = []
        if self.tests_root is not None and self.tests_root.is_dir():
            test_modules = load_tree(
                self.tests_root, display_root=self.tests_root.parent
            )
        return ProjectIndex(
            package_root=self.package_root,
            modules=modules,
            test_modules=test_modules,
        )

    def run(
        self,
        *,
        select: Sequence[str] = (),
        ignore: Sequence[str] = (),
        project: ProjectIndex | None = None,
    ) -> list[Finding]:
        """Return the surviving findings, sorted by (file, line, rule).

        ``select``/``ignore`` take rule-id prefixes (``RNG`` selects the
        whole family, ``RNG004`` one rule); ``select`` defaults to
        everything.  Suppression directives are applied before filtering;
        malformed directives surface as ``NOQ001`` regardless of filters'
        defaults but respect an explicit ``--ignore NOQ``.
        """
        if project is None:
            project = self.load()
        raw: list[Finding] = []
        for rule in self.rules:
            for module in project.modules:
                raw.extend(rule.check_module(module))
            raw.extend(rule.check_project(project))
        by_relpath = {module.relpath: module for module in project.modules}
        survivors: list[Finding] = []
        for finding in raw:
            module = by_relpath.get(finding.file)
            if module is not None:
                directive = module.directives.get(finding.line)
                if directive is not None and directive.suppresses(finding.rule):
                    continue
            survivors.append(finding)
        for module in project.modules:
            for directive in module.directives.values():
                problem = directive.problem()
                if problem is not None:
                    survivors.append(
                        Finding(
                            file=module.relpath,
                            line=directive.line,
                            rule=NOQA_RULE_ID,
                            message=problem,
                        )
                    )
        if select:
            survivors = [f for f in survivors if _matches(f.rule, select)]
        if ignore:
            survivors = [f for f in survivors if not _matches(f.rule, ignore)]
        survivors.sort(key=lambda f: (f.file, f.line, f.rule))
        return survivors
