"""Protocol-contract rules.

The repo's cross-layer contracts — every concrete sampler ships a
vectorised ``extend`` kernel, every cadence-declaring adversary implements
the block protocol, every registered scenario is exercised by a test —
were docstring conventions until PR 7's chunking bug showed what happens
when one implementation forgets half a protocol.  These rules resolve the
contracts across the whole class table (syntactic MRO over the project's
modules), so an implementation inheriting a method from a project base
class satisfies the contract without ceremony.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from .engine import ClassInfo, Module, ProjectIndex, Rule, dotted_name
from .findings import Finding

__all__ = [
    "SamplerExtendRule",
    "CadenceContractRule",
    "ScenarioCoverageRule",
    "PROTOCOL_RULES",
]


class SamplerExtendRule(Rule):
    """PRO001 — every concrete ``StreamSampler`` subclass provides ``extend``.

    The chunked runners call ``extend`` on every sampler; a concrete
    subclass that silently inherits the root's per-element loop drops the
    whole vectorised path for its family.  Abstract intermediates
    (subclasses that do not implement all of the root's abstract methods)
    are exempt.
    """

    rule_id = "PRO001"
    name = "sampler-extend-kernel"
    description = (
        "a concrete StreamSampler subclass must define (or inherit from a "
        "project base below the root) an `extend` kernel; the root's "
        "per-element fallback forfeits chunked execution for the family"
    )

    ROOT = "StreamSampler"
    REQUIRED = "extend"

    def check_project(self, project: ProjectIndex) -> Iterable[Finding]:
        roots = project.classes.get(self.ROOT, [])
        abstract: set[str] = set()
        for root in roots:
            abstract.update(root.abstract_methods)
        if not abstract:
            return
        for infos in project.classes.values():
            for info in infos:
                if info.name == self.ROOT:
                    continue
                if not project.inherits_from(info, self.ROOT):
                    continue
                defined = project.defined_methods(info, stop_at=self.ROOT)
                if not abstract <= defined:
                    continue  # abstract intermediate (or partial implementation)
                if self.REQUIRED not in defined:
                    yield info.module.finding(
                        info.node,
                        self.rule_id,
                        f"concrete StreamSampler subclass `{info.name}` defines "
                        "no `extend` kernel (and inherits none below the root); "
                        "chunked games will fall back to the per-element loop",
                    )


class CadenceContractRule(Rule):
    """PRO002 — cadence-declaring adversaries implement the block protocol.

    PR 7's chunking-dependence bug came from the two halves of the cadence
    protocol disagreeing.  Any class whose constructor accepts
    ``decision_period`` claims the protocol, and must provide both
    ``plan_block`` and ``observe_block`` (directly or via a project base).
    """

    rule_id = "PRO002"
    name = "cadence-block-protocol"
    description = (
        "a class accepting `decision_period` in its constructor declares the "
        "decision-cadence protocol and must implement both `plan_block` and "
        "`observe_block`"
    )

    PARAM = "decision_period"
    REQUIRED = ("plan_block", "observe_block")
    ROOT = "Adversary"

    def check_project(self, project: ProjectIndex) -> Iterable[Finding]:
        for infos in project.classes.values():
            for info in infos:
                if self.PARAM not in info.init_params:
                    continue
                # Runners and configs carry the knob too; the block protocol
                # binds only the adversary hierarchy.
                if not (
                    project.inherits_from(info, self.ROOT)
                    or info.name.endswith(self.ROOT)
                ):
                    continue
                defined = project.defined_methods(info)
                missing = [name for name in self.REQUIRED if name not in defined]
                if missing:
                    yield info.module.finding(
                        info.node,
                        self.rule_id,
                        f"`{info.name}` accepts `{self.PARAM}` but does not "
                        f"implement {', '.join(missing)}; half-implemented "
                        "cadence is the PR 7 chunking-dependence bug class",
                    )


class ScenarioCoverageRule(Rule):
    """PRO003 — every registered scenario name is referenced by a test.

    The scenario registry is the repo's public attack surface; a scenario
    nobody's tests name by its string identifier is only covered by
    registry-wide sweeps, which cannot pin its individual behaviour.  A
    name counts as referenced when a test module contains the exact string
    literal or uses the scenario's ``run_<name>`` helper.
    """

    rule_id = "PRO003"
    name = "scenario-test-coverage"
    description = (
        "every name registered in the scenario registry must appear (as a "
        "string literal or `run_<name>` helper) in at least one test module"
    )

    #: Call targets whose ``name=`` keyword registers a scenario.
    _REGISTRARS = frozenset({"Scenario", "register_scenario"})

    def check_project(self, project: ProjectIndex) -> Iterable[Finding]:
        if not project.test_modules:
            return
        literals, identifiers = self._test_references(project)
        for module, node, name in self._registered_names(project):
            if name in literals or f"run_{name}" in identifiers:
                continue
            yield module.finding(
                node,
                self.rule_id,
                f"registered scenario `{name}` is never referenced from a "
                "test module (no string literal, no `run_{name}` helper use)",
            )

    def _registered_names(
        self, project: ProjectIndex
    ) -> Iterator[tuple[Module, ast.AST, str]]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = dotted_name(node.func)
                if func is None:
                    continue
                if func.rsplit(".", maxsplit=1)[-1] not in self._REGISTRARS:
                    continue
                for keyword in node.keywords:
                    if (
                        keyword.arg == "name"
                        and isinstance(keyword.value, ast.Constant)
                        and isinstance(keyword.value.value, str)
                    ):
                        yield module, node, keyword.value.value

    @staticmethod
    def _test_references(project: ProjectIndex) -> tuple[set[str], set[str]]:
        literals: set[str] = set()
        identifiers: set[str] = set()
        for module in project.test_modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Constant) and isinstance(node.value, str):
                    literals.add(node.value)
                elif isinstance(node, ast.Name):
                    identifiers.add(node.id)
                elif isinstance(node, ast.Attribute):
                    identifiers.add(node.attr)
                elif isinstance(node, ast.alias):
                    identifiers.add(node.name)
        return literals, identifiers


PROTOCOL_RULES: tuple[Rule, ...] = (
    SamplerExtendRule(),
    CadenceContractRule(),
    ScenarioCoverageRule(),
)
