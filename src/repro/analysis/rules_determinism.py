"""Determinism rules.

Every guarantee this repo pins — bit-reproducibility of seeded runs,
chunking independence of the vectorised kernels, sharded/unsharded
agreement — is a determinism statement, and each has historically been
broken by one of two things: hidden wall-clock dependence, or iteration
order that Python does not define (sets, dict mutation order).  These rules
confine wall-clock reads to the layers whose *job* is timing (the bench
harness and the threaded service) and ban order-undefined iteration from
the code that feeds sampler and merge state.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from .engine import Module, Rule, dotted_name
from .findings import Finding

__all__ = [
    "WallClockRule",
    "SetIterationRule",
    "OrderDependentPopRule",
    "DETERMINISM_RULES",
]

#: Paths (relative to the package root, after the leading package segment)
#: whose whole purpose is wall-clock measurement.
_CLOCK_ALLOWED_FILES = frozenset({"bench.py"})
_CLOCK_ALLOWED_PREFIXES = ("service/", "benchmarks/")

#: Call chains that read the wall clock.
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "date.today",
        "datetime.date.today",
    }
)

#: Sampler/merge-state layers where iteration order must be defined.
_ORDERED_STATE_PREFIXES = ("samplers/", "distributed/", "defenses/", "service/")


def _package_relative(module: Module) -> str:
    """Path inside the package: ``repro/samplers/base.py`` → ``samplers/base.py``."""
    parts = module.relpath.split("/")
    return "/".join(parts[1:]) if len(parts) > 1 else module.relpath


def _in_ordered_state_layer(module: Module) -> bool:
    return _package_relative(module).startswith(_ORDERED_STATE_PREFIXES)


def _is_set_expression(node: ast.expr) -> bool:
    """True for expressions that are unmistakably sets (order-undefined)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        return dotted in ("set", "frozenset")
    return False


class WallClockRule(Rule):
    """DET001 — wall-clock reads outside the timing layers."""

    rule_id = "DET001"
    name = "wall-clock-read"
    description = (
        "time.time/perf_counter/datetime.now make results depend on "
        "scheduling; only bench.py, service/ and benchmarks/ (whose job is "
        "timing) may read the clock"
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        inner = _package_relative(module)
        if inner in _CLOCK_ALLOWED_FILES or inner.startswith(
            _CLOCK_ALLOWED_PREFIXES
        ):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted in _CLOCK_CALLS:
                yield module.finding(
                    node,
                    self.rule_id,
                    f"`{dotted}()` reads the wall clock outside the timing "
                    "layers (bench.py, service/, benchmarks/)",
                )


class SetIterationRule(Rule):
    """DET002 — iterating a set where iteration order can reach state."""

    rule_id = "DET002"
    name = "set-iteration-order"
    description = (
        "set iteration order is undefined across processes and versions; in "
        "the sampler/merge layers any set feeding state must be sorted first"
    )

    _MATERIALISERS = frozenset({"list", "tuple", "iter", "enumerate"})

    def check_module(self, module: Module) -> Iterable[Finding]:
        if not _in_ordered_state_layer(module):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expression(
                node.iter
            ):
                yield module.finding(
                    node,
                    self.rule_id,
                    "for-loop over a set: iteration order is undefined; "
                    "sort (or otherwise order) the set first",
                )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    if _is_set_expression(generator.iter):
                        yield module.finding(
                            node,
                            self.rule_id,
                            "comprehension over a set: iteration order is "
                            "undefined; sort the set first",
                        )
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if (
                    dotted in self._MATERIALISERS
                    and node.args
                    and _is_set_expression(node.args[0])
                ):
                    yield module.finding(
                        node,
                        self.rule_id,
                        f"`{dotted}()` over a set materialises an undefined "
                        "order; use sorted(...) instead",
                    )


class OrderDependentPopRule(Rule):
    """DET003 — order-dependent pop/next-iter constructs near state."""

    rule_id = "DET003"
    name = "order-dependent-pop"
    description = (
        "dict.popitem / set.pop / next(iter(...)) pick an element by "
        "container order, which insertion history (and hence chunking) "
        "controls; make the choice explicit"
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        if not _in_ordered_state_layer(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute) and node.func.attr == "popitem":
                yield module.finding(
                    node,
                    self.rule_id,
                    "`popitem()` depends on insertion order; pop an explicit key",
                )
                continue
            dotted = dotted_name(node.func)
            if (
                dotted == "next"
                and node.args
                and isinstance(node.args[0], ast.Call)
                and dotted_name(node.args[0].func) == "iter"
            ):
                yield module.finding(
                    node,
                    self.rule_id,
                    "`next(iter(...))` picks an element by container order; "
                    "select an explicit element (min/max/index) instead",
                )


DETERMINISM_RULES: tuple[Rule, ...] = (
    WallClockRule(),
    SetIterationRule(),
    OrderDependentPopRule(),
)
