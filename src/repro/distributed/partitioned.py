"""Random query routing across servers — the distributed-database motivation.

Section 1.2 ("Sampling in modern data-processing systems") observes that when
each incoming query is routed uniformly at random to one of ``K``
query-processing servers, the substream each server receives is exactly a
Bernoulli sample (rate ``1/K``) of the global stream.  Whether each server's
view "truthfully represents" the global workload — even when a client adapts
its queries to what it can infer about the servers — is then precisely the
adversarial robustness question of the paper, and Theorem 1.2 answers it.

:class:`RandomRouter` simulates the router and the per-server substreams;
experiment E12 drives it with both static and adaptive query streams and
measures the worst per-server discrepancy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence
from typing import Any

from ..exceptions import ConfigurationError
from ..rng import RandomState, ensure_generator
from ..setsystems.base import SetSystem


@dataclass
class ServerState:
    """One simulated query-processing server: the substream it has received."""

    identifier: int
    received: list[Any] = field(default_factory=list)

    @property
    def load(self) -> int:
        return len(self.received)


class RandomRouter:
    """Route each incoming query to a uniformly random server.

    Parameters
    ----------
    num_servers:
        Number of query-processing servers ``K``; each server's substream is a
        Bernoulli(1/K) sample of the global stream.
    seed:
        Randomness for routing decisions.  The routing coins are private to
        the system (an adversarial client sees responses, not coins), matching
        the sampling model.
    """

    def __init__(self, num_servers: int, seed: RandomState = None) -> None:
        if num_servers < 2:
            raise ConfigurationError(f"need at least 2 servers, got {num_servers}")
        self.num_servers = int(num_servers)
        self._rng = ensure_generator(seed)
        self._servers = [ServerState(identifier=i) for i in range(num_servers)]
        self._stream: list[Any] = []

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, query: Any) -> int:
        """Route one query; returns the index of the server that received it."""
        server_index = int(self._rng.integers(0, self.num_servers))
        self._servers[server_index].received.append(query)
        self._stream.append(query)
        return server_index

    def route_all(self, queries: Iterable[Any]) -> list[int]:
        """Route a batch of queries; returns the chosen server per query."""
        return [self.route(query) for query in queries]

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def servers(self) -> Sequence[ServerState]:
        """The simulated servers and their received substreams."""
        return self._servers

    @property
    def stream(self) -> Sequence[Any]:
        """The global query stream routed so far."""
        return self._stream

    def loads(self) -> list[int]:
        """Per-server load (number of received queries)."""
        return [server.load for server in self._servers]

    def load_imbalance(self) -> float:
        """Max over servers of ``|load / n - 1 / K|`` — the load-balance error."""
        if not self._stream:
            return 0.0
        target = 1.0 / self.num_servers
        return max(abs(server.load / len(self._stream) - target) for server in self._servers)

    def worst_server_discrepancy(self, set_system: SetSystem) -> float:
        """Worst, over servers, of the server-vs-global worst-range discrepancy.

        This is the "is every server's view representative?" question of
        Section 1.2, with representativeness measured exactly as in the rest
        of the paper.  Servers that have received nothing count as error 1.
        """
        if not self._stream:
            return 0.0
        worst = 0.0
        for server in self._servers:
            if not server.received:
                worst = max(worst, 1.0)
                continue
            error = set_system.max_discrepancy(self._stream, server.received).error
            worst = max(worst, error)
        return worst
