"""Sharded sampling deployments: pluggable routing over mergeable per-site samplers.

The motivating deployments of Section 1.2 are distributed: each stream
element arrives at one of ``K`` sites, every site maintains a local summary
of its substream, and an adaptive client only ever probes the **merged**
state.  :class:`ShardedSampler` is that deployment behind the ordinary
:class:`~repro.samplers.base.StreamSampler` interface, so both game runners,
:class:`~repro.adversary.batch.BatchGameRunner` and the scenario engine can
play against a multi-site system without knowing it is one:

* **Routing** is a pluggable :class:`ShardingStrategy` — uniformly random
  (the model under which each substream is a Bernoulli(1/K) sample of the
  global stream), value-hashed (related keys co-locate, the sticky-routing
  model), round-robin (deterministic load levelling), or adversarially
  skewed (a hotspot site absorbs a configurable fraction of the traffic).
* **Per-site ingestion** goes through the sites' vectorised ``extend``
  kernels: a batch is routed in one vectorised assignment, sliced into one
  contiguous sub-batch per site, and each sub-batch is ingested in a single
  kernel call (`benchmarks/bench_perf_sharded.py` gates this at >= 2x over
  per-element routing).
* **The merged view** comes from the sites'
  :class:`~repro.samplers.base.Mergeable` implementations.  The coordinator
  memoises the merged view behind a version counter bumped on every ingest,
  fault transition and reshard: the first read after an advance performs a
  real merge (for reservoir shards a fresh hypergeometric coordinator draw,
  paid for in the :class:`~repro.distributed.faults.MessageCostLedger`),
  repeated reads between advances are O(1) cache hits, and all merge
  randomness comes from the deployment's own seeded substream, so games
  stay reproducible.
* **Faults and elasticity** are driven by a declarative
  :class:`~repro.distributed.faults.FaultPlan`: sites crash (their local
  summary is wiped; routed elements are dropped or replay-buffered per the
  crash's loss model) and recover (the buffer is flushed back through the
  site's own kernel), the coordinator can be pinned to a stale cached view
  for a window of rounds, and the topology can be resharded mid-stream via
  :meth:`ShardedSampler.split_site` / :meth:`ShardedSampler.merge_sites` —
  an exact [CTW16] hypergeometric state split for reservoir sites, the
  family's own merge kernel for site merges.  Every transition fires at a
  declared global round, so faulted runs remain bit-reproducible and
  chunking-independent.

Sliding-window shards keep *per-site* windows (each site retains the most
recent ``window`` elements of its own substream); the merged sample is the
``capacity`` smallest priorities among all locally live candidates, which is
exactly the priority rule applied to the union of the site windows.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable, Sequence
from typing import Any

import numpy as np
from numpy.typing import NDArray

from ..exceptions import ConfigurationError
from ..rng import RandomState, _stable_string_key, ensure_generator, spawn_generators
from ..samplers.base import Mergeable, SampleUpdate, StreamSampler, UpdateBatch
from .faults import FaultPlan, FaultTransition, MessageCostLedger

__all__ = [
    "HashSharding",
    "RandomSharding",
    "RoundRobinSharding",
    "ShardedSampler",
    "ShardingStrategy",
    "SkewedSharding",
    "build_sharding_strategy",
]


class ShardingStrategy(ABC):
    """Assigns each stream element to one of ``num_sites`` sites.

    Strategies are stateless plain-data objects (picklable, reusable across
    deployments): everything an assignment may depend on — the element, its
    1-based global round index, the site count and the routing generator —
    is passed in per call.  :meth:`assign` is the vectorised form used by
    chunked ingestion; random strategies draw their coins in one batched
    call there, so the batch path is a different (equally distributed)
    realisation of the routing than per-element calls, exactly as with the
    samplers' own batched kernels.
    """

    name: str = "sharding"

    @abstractmethod
    def assign_one(
        self, element: Any, round_index: int, num_sites: int, rng: np.random.Generator
    ) -> int:
        """Site index for one element (``round_index`` is 1-based, global)."""

    def assign(
        self,
        elements: Sequence[Any],
        start_round: int,
        num_sites: int,
        rng: np.random.Generator,
    ) -> NDArray[np.int64]:
        """Vectorised assignment for a batch starting at ``start_round``."""
        return np.fromiter(
            (
                self.assign_one(element, start_round + offset, num_sites, rng)
                for offset, element in enumerate(elements)
            ),
            dtype=np.int64,
            count=len(elements),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class RandomSharding(ShardingStrategy):
    """Route each element to a uniformly random site (the Section 1.2 model)."""

    name = "random"

    def assign_one(
        self, element: Any, round_index: int, num_sites: int, rng: np.random.Generator
    ) -> int:
        return int(rng.integers(0, num_sites))

    def assign(
        self,
        elements: Sequence[Any],
        start_round: int,
        num_sites: int,
        rng: np.random.Generator,
    ) -> NDArray[np.int64]:
        return rng.integers(0, num_sites, size=len(elements))


class RoundRobinSharding(ShardingStrategy):
    """Deterministic round-robin routing keyed on the global round index."""

    name = "round_robin"

    def assign_one(
        self, element: Any, round_index: int, num_sites: int, rng: np.random.Generator
    ) -> int:
        return (round_index - 1) % num_sites

    def assign(
        self,
        elements: Sequence[Any],
        start_round: int,
        num_sites: int,
        rng: np.random.Generator,
    ) -> NDArray[np.int64]:
        return (np.arange(start_round - 1, start_round - 1 + len(elements))) % num_sites


def _stable_element_key(element: Any) -> int:
    """Process-independent 32-bit key of an element.

    Integers take a Knuth multiplicative mix so consecutive values spread
    across sites; everything else is folded through the library's stable
    string hash (:func:`repro.rng._stable_string_key`) over its ``repr``,
    which is stable across processes (unlike ``hash``, which is salted for
    strings).
    """
    if isinstance(element, (int, np.integer)) and not isinstance(element, bool):
        return (int(element) * 2654435761) & 0xFFFFFFFF
    return _stable_string_key(repr(element))


class HashSharding(ShardingStrategy):
    """Route by a stable hash of the element value (sticky / key-affinity routing).

    Equal values always land on the same site — the model in which an
    adversary that controls the *values* it submits also controls *where*
    they go, which is what the cross-shard-skew attacks exploit.
    """

    name = "hash"

    def assign_one(
        self, element: Any, round_index: int, num_sites: int, rng: np.random.Generator
    ) -> int:
        return _stable_element_key(element) % num_sites

    def assign(
        self,
        elements: Sequence[Any],
        start_round: int,
        num_sites: int,
        rng: np.random.Generator,
    ) -> NDArray[np.int64]:
        return np.fromiter(
            (_stable_element_key(element) % num_sites for element in elements),
            dtype=np.int64,
            count=len(elements),
        )


class SkewedSharding(ShardingStrategy):
    """Adversarially skewed routing: a hotspot site absorbs most of the traffic.

    With probability ``hot_fraction`` an element goes to ``hot_site``;
    otherwise to a uniformly random other site.  Models both a popular
    partition key and an adversarial load imbalance — the regime where a
    single site's local summary dominates the merged view.
    """

    name = "skewed"

    def __init__(self, hot_fraction: float = 0.8, hot_site: int = 0) -> None:
        if not 0.0 <= hot_fraction <= 1.0:
            raise ConfigurationError(
                f"hot fraction must lie in [0, 1], got {hot_fraction}"
            )
        if hot_site < 0:
            raise ConfigurationError(f"hot site must be >= 0, got {hot_site}")
        self.hot_fraction = float(hot_fraction)
        self.hot_site = int(hot_site)

    def assign_one(
        self, element: Any, round_index: int, num_sites: int, rng: np.random.Generator
    ) -> int:
        hot_site = min(self.hot_site, num_sites - 1)
        if num_sites == 1 or rng.random() < self.hot_fraction:
            return hot_site
        draw = int(rng.integers(0, num_sites - 1))
        return draw if draw < hot_site else draw + 1

    def assign(
        self,
        elements: Sequence[Any],
        start_round: int,
        num_sites: int,
        rng: np.random.Generator,
    ) -> NDArray[np.int64]:
        n = len(elements)
        hot_site = min(self.hot_site, num_sites - 1)
        if num_sites == 1:
            return np.full(n, hot_site, dtype=np.int64)
        coins = rng.random(n)
        draws = rng.integers(0, num_sites - 1, size=n)
        others = np.where(draws < hot_site, draws, draws + 1)
        return np.where(coins < self.hot_fraction, hot_site, others)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SkewedSharding(hot_fraction={self.hot_fraction}, hot_site={self.hot_site})"


#: Registry of strategy names accepted by :func:`build_sharding_strategy`.
STRATEGIES: dict[str, Callable[..., ShardingStrategy]] = {
    "random": RandomSharding,
    "hash": HashSharding,
    "round_robin": RoundRobinSharding,
    "skewed": SkewedSharding,
}


def build_sharding_strategy(
    spec: str | ShardingStrategy | dict[str, Any] | None,
) -> ShardingStrategy:
    """Resolve a strategy name, spec mapping, or instance into a strategy.

    ``None`` defaults to random routing; a mapping names the strategy via
    its ``"kind"`` field — or ``"name"``, accepted as an alias because the
    strategies advertise themselves through their ``name`` attribute — and
    passes the remaining fields as constructor arguments (e.g.
    ``{"kind": "skewed", "hot_fraction": 0.9}``).
    """
    if spec is None:
        return RandomSharding()
    if isinstance(spec, ShardingStrategy):
        return spec
    if isinstance(spec, str):
        if spec not in STRATEGIES:
            raise ConfigurationError(
                f"unknown sharding strategy {spec!r}; available: {', '.join(sorted(STRATEGIES))}"
            )
        return STRATEGIES[spec]()
    if isinstance(spec, dict):
        fields = dict(spec)
        kind = fields.pop("kind", None)
        alias = fields.pop("name", None)
        if kind is None:
            kind = alias
        elif alias is not None and alias != kind:
            raise ConfigurationError(
                f"sharding strategy spec {spec!r} names both kind={kind!r} and "
                f"name={alias!r}; pick one"
            )
        if kind is None:
            raise ConfigurationError(
                f"sharding strategy spec {spec!r} names no strategy; pass "
                f"'kind' (or 'name') as one of: {', '.join(sorted(STRATEGIES))}"
            )
        if kind not in STRATEGIES:
            raise ConfigurationError(
                f"unknown sharding strategy {kind!r}; available: {', '.join(sorted(STRATEGIES))}"
            )
        try:
            return STRATEGIES[kind](**fields)
        except TypeError as exc:
            raise ConfigurationError(
                f"invalid parameters for sharding strategy {kind!r}: {exc}"
            ) from exc
    raise ConfigurationError(
        f"cannot build a sharding strategy from {type(spec).__name__}"
    )


class ShardedSampler(StreamSampler):
    """A ``K``-site sharded deployment behind the ``StreamSampler`` interface.

    Parameters
    ----------
    num_sites:
        Number of sites ``K``.
    site_factory:
        Callable ``(rng) -> StreamSampler`` constructing one site's local
        sampler; called once per site with an independent generator derived
        from ``seed``.  The constructed samplers must implement
        :class:`~repro.samplers.base.Mergeable` (reservoir with uniform
        eviction, Bernoulli, sliding window).
    strategy:
        Routing strategy: a name (``"random"``, ``"hash"``,
        ``"round_robin"``, ``"skewed"``), a spec mapping with a ``"kind"``
        field, or a :class:`ShardingStrategy` instance.
    seed:
        Single source of randomness for routing, the site samplers and the
        coordinator's merge draws (three independent substreams are derived
        from it).
    fault_plan:
        Optional :class:`~repro.distributed.faults.FaultPlan` of site
        crashes/recoveries, coordinator staleness windows and scheduled
        reshards.  Every event fires at its declared global round, before
        that round's element is routed, on both the per-element and the
        chunked ingestion path.

    Observing :attr:`sample` serves the coordinator's merged view.  The
    view is memoised behind a version counter bumped on every ingest,
    fault transition and reshard: the first observation after an advance
    performs a real merge of the live sites (for randomised merges —
    reservoir — a fresh hypergeometric draw from the deployment's own
    substream, never the sites', so a probing client can never
    desynchronise the sites' seeded sampling streams), and repeated
    observations between advances return the cached view.  Deployments
    whose sites track exposure (defense wrappers with an
    ``observe_exposure`` hook) bypass the cache entirely: every read there
    re-merges, because the act of reading advances the sites' serving
    state.
    """

    name = "sharded"

    def __init__(
        self,
        num_sites: int,
        site_factory: Callable[[np.random.Generator], StreamSampler],
        strategy: str | ShardingStrategy | dict[str, Any] | None = "random",
        seed: RandomState = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        super().__init__()
        if num_sites < 1:
            raise ConfigurationError(f"need at least 1 site, got {num_sites}")
        self.num_sites = int(num_sites)
        self.strategy = build_sharding_strategy(strategy)
        self._rng = ensure_generator(seed)
        route_rng, merge_rng, *site_rngs = spawn_generators(self._rng, num_sites + 2)
        self._route_rng = route_rng
        self._merge_rng = merge_rng
        self._site_factory = site_factory
        self._sites = [site_factory(site_rng) for site_rng in site_rngs]
        for site in self._sites:
            self._validate_site(site)
        self.name = f"sharded-{self._sites[0].name}"
        self.fault_plan = fault_plan
        self.ledger = MessageCostLedger()
        self._transitions: list[FaultTransition] = (
            fault_plan.transitions() if fault_plan is not None else []
        )
        self._next_transition = 0
        self._down = [False] * self.num_sites
        self._loss: list[str | None] = [None] * self.num_sites
        self._replay_buffers: list[list[Any]] = [[] for _ in range(self.num_sites)]
        self._dropped = [0] * self.num_sites
        self._wiped_rounds = 0
        self._version = 0
        self._merged_cache: StreamSampler | None = None
        self._merged_cache_version = -1

    @staticmethod
    def _validate_site(site: Any) -> None:
        if not isinstance(site, StreamSampler):
            raise ConfigurationError(
                f"site factory produced {type(site).__name__}, not a StreamSampler"
            )
        if not isinstance(site, Mergeable):
            raise ConfigurationError(
                f"{type(site).__name__} does not implement Mergeable and "
                "cannot participate in a sharded deployment"
            )

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------
    def _process(self, element: Any) -> SampleUpdate:
        self._apply_transitions(self._round)
        site = self.strategy.assign_one(
            element, self._round, self.num_sites, self._route_rng
        )
        self._version += 1
        if self._down[site]:
            if self._loss[site] == "replay":
                self._replay_buffers[site].append(element)
            else:
                self._dropped[site] += 1
            return SampleUpdate(
                round_index=self._round, element=element, accepted=False
            )
        site_update = self._sites[site].process(element)
        return SampleUpdate(
            round_index=self._round,
            element=element,
            accepted=site_update.accepted,
            evicted=site_update.evicted,
        )

    def extend(
        self, elements: Iterable[Any], updates: bool = True
    ) -> UpdateBatch | None:
        """Chunked per-site ingestion: route once, then one kernel call per site.

        The batch is assigned to sites in a single vectorised call, sliced
        into one order-preserving sub-batch per site, and each sub-batch is
        fed through the site sampler's vectorised ``extend`` kernel.  The
        returned :class:`UpdateBatch` reports outcomes at *global* round
        indices; per-site acceptance flags and evictions are scattered back
        to the elements' global positions.

        For random strategies the batched routing coins are a different
        (equally distributed) realisation than per-element routing — like
        the reservoir's own batched kernel; deterministic strategies
        (``hash``, ``round_robin``) route identically on both paths.

        When a :class:`~repro.distributed.faults.FaultPlan` schedules
        transitions inside the batch, the batch is segmented at each
        transition round: a transition at global round ``r`` fires after
        the element of round ``r - 1`` and before the element of round
        ``r``, exactly as on the per-element path, so faulted runs stay
        independent of how the stream is chunked.
        """
        elements = list(elements)
        if not elements:
            return UpdateBatch.empty() if updates else None
        start_round = self._round
        n = len(elements)
        accepted: np.ndarray | None = np.zeros(n, dtype=bool) if updates else None
        evictions: dict[int, Any] = {}
        position = 0
        while position < n:
            segment_start = start_round + position  # last round already ingested
            self._apply_transitions(segment_start + 1)
            next_round = self._next_transition_round()
            segment_end = (
                n if next_round is None else min(n, next_round - 1 - start_round)
            )
            segment = elements[position:segment_end]
            self._ingest_segment(
                segment, segment_start, position, updates, accepted, evictions
            )
            position = segment_end
        self._round = start_round + n
        self._version += 1
        if not updates:
            return None
        round_indices = np.arange(
            start_round + 1, start_round + n + 1, dtype=np.int64
        )
        return UpdateBatch(round_indices, elements, accepted, evictions)

    def _ingest_segment(
        self,
        segment: Sequence[Any],
        segment_start: int,
        base_position: int,
        updates: bool,
        accepted: np.ndarray | None,
        evictions: dict[int, Any],
    ) -> None:
        """Route and ingest one fault-state-constant slice of a batch."""
        assignment = self.strategy.assign(
            segment, segment_start + 1, self.num_sites, self._route_rng
        )
        for site_index in range(self.num_sites):
            positions = np.flatnonzero(assignment == site_index)
            if len(positions) == 0:
                continue
            sub_batch = [segment[int(position)] for position in positions]
            if self._down[site_index]:
                if self._loss[site_index] == "replay":
                    self._replay_buffers[site_index].extend(sub_batch)
                else:
                    self._dropped[site_index] += len(sub_batch)
                continue
            site_updates = self._sites[site_index].extend(sub_batch, updates=updates)
            if updates:
                global_positions = positions + base_position
                accepted[global_positions] = site_updates.accepted
                for offset, evicted in site_updates.evictions.items():
                    evictions[int(global_positions[offset])] = evicted

    # ------------------------------------------------------------------
    # Fault transitions
    # ------------------------------------------------------------------
    def _next_transition_round(self) -> int | None:
        if self._next_transition >= len(self._transitions):
            return None
        return self._transitions[self._next_transition].round

    def _apply_transitions(self, up_to_round: int) -> None:
        """Fire every pending transition scheduled at or before ``up_to_round``.

        A transition at round ``r`` fires before the element of round ``r``
        is routed; callers pass the round of the element about to be
        processed.
        """
        while (
            self._next_transition < len(self._transitions)
            and self._transitions[self._next_transition].round <= up_to_round
        ):
            transition = self._transitions[self._next_transition]
            self._next_transition += 1
            if transition.kind == "crash":
                self._crash_site(transition.site, transition.loss or "drop")
            elif transition.kind == "recover":
                self._recover_site(transition.site)
            elif transition.kind == "split":
                self.split_site(transition.site, strategy=transition.strategy)
            else:  # "merge"
                assert transition.other is not None
                self.merge_sites(
                    transition.site, transition.other, strategy=transition.strategy
                )

    def _check_site_index(self, site: int, verb: str) -> None:
        if not 0 <= site < self.num_sites:
            raise ConfigurationError(
                f"cannot {verb} site {site}: site must lie in [0, {self.num_sites - 1}]"
            )

    def _crash_site(self, site: int, loss: str) -> None:
        self._check_site_index(site, "crash")
        if self._down[site]:
            raise ConfigurationError(f"site {site} is already down")
        self._wiped_rounds += self._sites[site].rounds_processed
        self._sites[site].reset()
        self._down[site] = True
        self._loss[site] = loss
        self.ledger.record("crash")
        self._version += 1

    def _recover_site(self, site: int) -> None:
        self._check_site_index(site, "recover")
        if not self._down[site]:
            raise ConfigurationError(f"site {site} is not down")
        self._down[site] = False
        self._loss[site] = None
        buffer = self._replay_buffers[site]
        if buffer:
            self._replay_buffers[site] = []
            self._sites[site].extend(buffer, updates=False)
        self.ledger.record("recovery", messages=1, payload=len(buffer))
        self._version += 1

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def merged_sampler(self) -> StreamSampler:
        """The coordinator's merged view of the live sites (sites untouched).

        The view is memoised behind the deployment's version counter: the
        first call after an ingest, fault transition or reshard performs a
        real merge of the live (non-crashed) sites — recorded in the
        :attr:`ledger` as one message per live site, payload equal to the
        pulled summaries' footprints — and repeated calls between advances
        return the cached sampler.  During a
        :class:`~repro.distributed.faults.StaleWindow` the cached view is
        served even across advances (no messages are spent), which is
        exactly the stale-coordinator failure mode.  Deployments with
        exposure-tracking sites (``observe_exposure``) never cache: reading
        their state advances it, so every call re-merges, as before.

        Families whose merge takes substream offsets (they declare
        ``merge_wants_offsets`` — sliding windows, and defense wrappers
        around them) are merged with trailing offsets: each site's local
        window is treated as the most recent stretch of its substream, so
        locally live candidates stay live in the merged view (see the
        module docstring for the per-site-window semantics).
        """
        cacheable = not any(
            getattr(site, "observe_exposure", None) is not None
            for site in self._sites
        )
        if cacheable and self._merged_cache is not None:
            stale = self.fault_plan is not None and self.fault_plan.is_stale(
                self._round
            )
            if stale or self._merged_cache_version == self._version:
                return self._merged_cache
        survivors = [
            site for site, down in zip(self._sites, self._down) if not down
        ]
        if not survivors:
            raise ConfigurationError(
                "every site is down; the coordinator has no state to merge"
            )
        primary, rest = survivors[0], survivors[1:]
        if getattr(primary, "merge_wants_offsets", False):
            total = self.rounds_processed
            offsets = [total - site.rounds_processed for site in survivors]
            merged = primary.merge(rest, rng=self._merge_rng, offsets=offsets)
        else:
            merged = primary.merge(rest, rng=self._merge_rng)
        self.ledger.record(
            "merge",
            messages=len(survivors),
            payload=sum(site.memory_footprint() for site in survivors),
        )
        if cacheable:
            self._merged_cache = merged
            self._merged_cache_version = self._version
        return merged

    @property
    def sample(self) -> Sequence[Any]:
        """The coordinator's merged sample (empty before any element).

        Reading the merged view exposes the serving state of every site, so
        sites that track exposure (defense wrappers with an
        ``observe_exposure`` hook, e.g. sketch switching) are notified
        *before* the merge — the coordinator serves the post-switch state
        and the sites' own switching budgets advance exactly as if the
        adversary had read them directly.  When every site is down the
        coordinator serves an empty sample.
        """
        if self.rounds_processed == 0:
            return ()
        if all(self._down):
            return ()
        for site in self._sites:
            notify = getattr(site, "observe_exposure", None)
            if notify is not None:
                notify()
        return tuple(self.merged_sampler().sample)

    # ------------------------------------------------------------------
    # Elastic topology
    # ------------------------------------------------------------------
    def split_site(
        self,
        site: int,
        strategy: str | ShardingStrategy | dict[str, Any] | None = None,
    ) -> int:
        """Split a site in two, appending the new sibling; returns its index.

        Sites exposing a ``split`` kernel (reservoirs: the [CTW16]
        hypergeometric rule run in reverse, drawn from the deployment's
        merge substream) hand half their notional substream — and a
        hypergeometric share of their stored sample — to the sibling, so a
        later merge is exactly uniform again.  Union-mergeable families
        (Bernoulli, sliding window) keep their state in place and spawn an
        empty sibling, which is exact for them by union semantics.  Passing
        ``strategy`` rebinds the routing strategy at the same instant.
        """
        self._check_site_index(site, "split")
        if self._down[site]:
            raise ConfigurationError(f"cannot split site {site} while it is down")
        parent = self._sites[site]
        splitter = getattr(parent, "split", None)
        if splitter is not None:
            sibling = splitter(rng=self._merge_rng)
            moved = len(sibling.sample)
        else:
            sibling = self._site_factory(spawn_generators(self._rng, 1)[0])
            self._validate_site(sibling)
            moved = 0
        self._sites.append(sibling)
        self._down.append(False)
        self._loss.append(None)
        self._replay_buffers.append([])
        self._dropped.append(0)
        self.num_sites += 1
        if strategy is not None:
            self.strategy = build_sharding_strategy(strategy)
        self.ledger.record("reshard_split", messages=1, payload=moved)
        self._version += 1
        return self.num_sites - 1

    def merge_sites(
        self,
        site: int,
        other: int,
        strategy: str | ShardingStrategy | dict[str, Any] | None = None,
    ) -> int:
        """Merge two sites through the family's merge kernel; returns the index.

        The merged site replaces the lower of the two indices and every
        site above the higher index shifts down by one.  The merge draw
        comes from the deployment's merge substream (for reservoirs the
        [CTW16] hypergeometric allocation, so the merged site is exactly a
        uniform sample of the two substreams' union); offset-taking
        families are merged with their default consecutive-substream
        offsets so per-site round counts stay additive.  Passing
        ``strategy`` rebinds the routing strategy at the same instant.
        """
        self._check_site_index(site, "merge")
        self._check_site_index(other, "merge")
        if site == other:
            raise ConfigurationError(f"cannot merge site {site} with itself")
        if self._down[site] or self._down[other]:
            raise ConfigurationError("cannot merge a site that is down")
        if self.num_sites < 2:
            raise ConfigurationError("need at least 2 sites to merge")
        absorbed = self._sites[other].memory_footprint()
        merged = self._sites[site].merge([self._sites[other]], rng=self._merge_rng)
        keep, drop = min(site, other), max(site, other)
        self._sites[keep] = merged
        self._dropped[keep] += self._dropped[drop]
        for state in (self._sites, self._down, self._loss, self._replay_buffers,
                      self._dropped):
            del state[drop]
        self.num_sites -= 1
        if strategy is not None:
            self.strategy = build_sharding_strategy(strategy)
        self.ledger.record("reshard_merge", messages=1, payload=absorbed)
        self._version += 1
        return keep

    def degradation_report(self) -> dict[str, Any]:
        """Quantified graceful degradation of the current merged view.

        Coordinator-level accounting — how many of the routed rounds are
        still represented by live sites (``coverage``), how many were
        dropped at down sites or wiped by crashes, and how many sit in
        replay buffers awaiting recovery — plus the merged sampler's own
        family-specific report under ``"merged"`` (e.g. a Misra–Gries
        ``max_underestimate``, a reservoir sample-size shortfall).
        """
        survivors = [
            site for site, down in zip(self._sites, self._down) if not down
        ]
        total = self.rounds_processed
        survivor_rounds = sum(site.rounds_processed for site in survivors)
        pending = sum(len(buffer) for buffer in self._replay_buffers)
        report: dict[str, Any] = {
            "total_rounds": total,
            "survivor_rounds": survivor_rounds,
            "pending_replay": pending,
            "dropped_rounds": sum(self._dropped),
            "lost_rounds": max(total - survivor_rounds - pending, 0),
            "coverage": survivor_rounds / total if total else 1.0,
            "live_sites": len(survivors),
            "num_sites": self.num_sites,
        }
        if survivors and total:
            report["merged"] = self.merged_sampler().degradation_report()
        return report

    def memory_footprint(self) -> int:
        """Elements held across all sites (the deployment's true footprint)."""
        return sum(site.memory_footprint() for site in self._sites)

    def reset(self) -> None:
        """Forget all routed elements; routing/merge randomness continues.

        Fault state (outages, buffers, drop counters, the merged-view
        cache) is cleared and the fault plan's timeline rewinds to round
        zero.  The *topology* is not restored: sites added or removed by
        earlier reshards stay — replaying a reshard-bearing plan from a
        reset deployment therefore resplits the current topology.  Runners
        that need a pristine deployment construct a fresh one (as the
        scenario engine does per trial).
        """
        for site in self._sites:
            site.reset()
        self._round = 0
        self._next_transition = 0
        self._down = [False] * self.num_sites
        self._loss = [None] * self.num_sites
        self._replay_buffers = [[] for _ in range(self.num_sites)]
        self._dropped = [0] * self.num_sites
        self._wiped_rounds = 0
        self._version += 1
        self._merged_cache = None
        self._merged_cache_version = -1
        self.ledger.reset()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def sites(self) -> Sequence[StreamSampler]:
        """The per-site samplers (read-only view)."""
        return tuple(self._sites)

    @property
    def site_counts(self) -> Sequence[int]:
        """Per-site substream lengths (how many elements each site received)."""
        return tuple(site.rounds_processed for site in self._sites)

    @property
    def version(self) -> int:
        """Merged-view version: bumped on every ingest, fault and reshard."""
        return self._version

    @property
    def down_sites(self) -> Sequence[int]:
        """Indices of currently crashed sites."""
        return tuple(
            index for index, down in enumerate(self._down) if down
        )

    def site_sample(self, site: int) -> Sequence[Any]:
        """The local sample currently held at a site."""
        if not 0 <= site < self.num_sites:
            raise ConfigurationError(
                f"site must lie in [0, {self.num_sites - 1}], got {site}"
            )
        return self._sites[site].sample

    def load_imbalance(self) -> float:
        """Max over sites of ``|load / n - 1 / K|`` — the load-balance error."""
        if self.rounds_processed == 0:
            return 0.0
        target = 1.0 / self.num_sites
        return max(
            abs(count / self.rounds_processed - target) for count in self.site_counts
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedSampler(num_sites={self.num_sites}, "
            f"strategy={self.strategy.name!r}, rounds={self.rounds_processed})"
        )
