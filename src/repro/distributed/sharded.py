"""Sharded sampling deployments: pluggable routing over mergeable per-site samplers.

The motivating deployments of Section 1.2 are distributed: each stream
element arrives at one of ``K`` sites, every site maintains a local summary
of its substream, and an adaptive client only ever probes the **merged**
state.  :class:`ShardedSampler` is that deployment behind the ordinary
:class:`~repro.samplers.base.StreamSampler` interface, so both game runners,
:class:`~repro.adversary.batch.BatchGameRunner` and the scenario engine can
play against a multi-site system without knowing it is one:

* **Routing** is a pluggable :class:`ShardingStrategy` — uniformly random
  (the model under which each substream is a Bernoulli(1/K) sample of the
  global stream), value-hashed (related keys co-locate, the sticky-routing
  model), round-robin (deterministic load levelling), or adversarially
  skewed (a hotspot site absorbs a configurable fraction of the traffic).
* **Per-site ingestion** goes through the sites' vectorised ``extend``
  kernels: a batch is routed in one vectorised assignment, sliced into one
  contiguous sub-batch per site, and each sub-batch is ingested in a single
  kernel call (`benchmarks/bench_perf_sharded.py` gates this at >= 2x over
  per-element routing).
* **The merged view** comes from the sites'
  :class:`~repro.samplers.base.Mergeable` implementations.  Reading
  ``sample`` performs a fresh merge — for reservoir shards a fresh
  hypergeometric coordinator draw, exactly like a real coordinator that
  redraws per query — with all merge randomness coming from the deployment's
  own seeded substream, so games stay reproducible.

Sliding-window shards keep *per-site* windows (each site retains the most
recent ``window`` elements of its own substream); the merged sample is the
``capacity`` smallest priorities among all locally live candidates, which is
exactly the priority rule applied to the union of the site windows.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Iterable, Optional, Sequence, Union

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import RandomState, _stable_string_key, ensure_generator, spawn_generators
from ..samplers.base import Mergeable, SampleUpdate, StreamSampler, UpdateBatch

__all__ = [
    "HashSharding",
    "RandomSharding",
    "RoundRobinSharding",
    "ShardedSampler",
    "ShardingStrategy",
    "SkewedSharding",
    "build_sharding_strategy",
]


class ShardingStrategy(ABC):
    """Assigns each stream element to one of ``num_sites`` sites.

    Strategies are stateless plain-data objects (picklable, reusable across
    deployments): everything an assignment may depend on — the element, its
    1-based global round index, the site count and the routing generator —
    is passed in per call.  :meth:`assign` is the vectorised form used by
    chunked ingestion; random strategies draw their coins in one batched
    call there, so the batch path is a different (equally distributed)
    realisation of the routing than per-element calls, exactly as with the
    samplers' own batched kernels.
    """

    name: str = "sharding"

    @abstractmethod
    def assign_one(
        self, element: Any, round_index: int, num_sites: int, rng: np.random.Generator
    ) -> int:
        """Site index for one element (``round_index`` is 1-based, global)."""

    def assign(
        self,
        elements: Sequence[Any],
        start_round: int,
        num_sites: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Vectorised assignment for a batch starting at ``start_round``."""
        return np.fromiter(
            (
                self.assign_one(element, start_round + offset, num_sites, rng)
                for offset, element in enumerate(elements)
            ),
            dtype=np.int64,
            count=len(elements),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class RandomSharding(ShardingStrategy):
    """Route each element to a uniformly random site (the Section 1.2 model)."""

    name = "random"

    def assign_one(
        self, element: Any, round_index: int, num_sites: int, rng: np.random.Generator
    ) -> int:
        return int(rng.integers(0, num_sites))

    def assign(
        self,
        elements: Sequence[Any],
        start_round: int,
        num_sites: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        return rng.integers(0, num_sites, size=len(elements))


class RoundRobinSharding(ShardingStrategy):
    """Deterministic round-robin routing keyed on the global round index."""

    name = "round_robin"

    def assign_one(
        self, element: Any, round_index: int, num_sites: int, rng: np.random.Generator
    ) -> int:
        return (round_index - 1) % num_sites

    def assign(
        self,
        elements: Sequence[Any],
        start_round: int,
        num_sites: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        return (np.arange(start_round - 1, start_round - 1 + len(elements))) % num_sites


def _stable_element_key(element: Any) -> int:
    """Process-independent 32-bit key of an element.

    Integers take a Knuth multiplicative mix so consecutive values spread
    across sites; everything else is folded through the library's stable
    string hash (:func:`repro.rng._stable_string_key`) over its ``repr``,
    which is stable across processes (unlike ``hash``, which is salted for
    strings).
    """
    if isinstance(element, (int, np.integer)) and not isinstance(element, bool):
        return (int(element) * 2654435761) & 0xFFFFFFFF
    return _stable_string_key(repr(element))


class HashSharding(ShardingStrategy):
    """Route by a stable hash of the element value (sticky / key-affinity routing).

    Equal values always land on the same site — the model in which an
    adversary that controls the *values* it submits also controls *where*
    they go, which is what the cross-shard-skew attacks exploit.
    """

    name = "hash"

    def assign_one(
        self, element: Any, round_index: int, num_sites: int, rng: np.random.Generator
    ) -> int:
        return _stable_element_key(element) % num_sites

    def assign(
        self,
        elements: Sequence[Any],
        start_round: int,
        num_sites: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        return np.fromiter(
            (_stable_element_key(element) % num_sites for element in elements),
            dtype=np.int64,
            count=len(elements),
        )


class SkewedSharding(ShardingStrategy):
    """Adversarially skewed routing: a hotspot site absorbs most of the traffic.

    With probability ``hot_fraction`` an element goes to ``hot_site``;
    otherwise to a uniformly random other site.  Models both a popular
    partition key and an adversarial load imbalance — the regime where a
    single site's local summary dominates the merged view.
    """

    name = "skewed"

    def __init__(self, hot_fraction: float = 0.8, hot_site: int = 0) -> None:
        if not 0.0 <= hot_fraction <= 1.0:
            raise ConfigurationError(
                f"hot fraction must lie in [0, 1], got {hot_fraction}"
            )
        if hot_site < 0:
            raise ConfigurationError(f"hot site must be >= 0, got {hot_site}")
        self.hot_fraction = float(hot_fraction)
        self.hot_site = int(hot_site)

    def assign_one(
        self, element: Any, round_index: int, num_sites: int, rng: np.random.Generator
    ) -> int:
        hot_site = min(self.hot_site, num_sites - 1)
        if num_sites == 1 or rng.random() < self.hot_fraction:
            return hot_site
        draw = int(rng.integers(0, num_sites - 1))
        return draw if draw < hot_site else draw + 1

    def assign(
        self,
        elements: Sequence[Any],
        start_round: int,
        num_sites: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        n = len(elements)
        hot_site = min(self.hot_site, num_sites - 1)
        if num_sites == 1:
            return np.full(n, hot_site, dtype=np.int64)
        coins = rng.random(n)
        draws = rng.integers(0, num_sites - 1, size=n)
        others = np.where(draws < hot_site, draws, draws + 1)
        return np.where(coins < self.hot_fraction, hot_site, others)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SkewedSharding(hot_fraction={self.hot_fraction}, hot_site={self.hot_site})"


#: Registry of strategy names accepted by :func:`build_sharding_strategy`.
STRATEGIES: dict[str, Callable[..., ShardingStrategy]] = {
    "random": RandomSharding,
    "hash": HashSharding,
    "round_robin": RoundRobinSharding,
    "skewed": SkewedSharding,
}


def build_sharding_strategy(
    spec: Union[str, ShardingStrategy, dict[str, Any], None],
) -> ShardingStrategy:
    """Resolve a strategy name, spec mapping, or instance into a strategy.

    ``None`` defaults to random routing; a mapping names the strategy via
    its ``"kind"`` field — or ``"name"``, accepted as an alias because the
    strategies advertise themselves through their ``name`` attribute — and
    passes the remaining fields as constructor arguments (e.g.
    ``{"kind": "skewed", "hot_fraction": 0.9}``).
    """
    if spec is None:
        return RandomSharding()
    if isinstance(spec, ShardingStrategy):
        return spec
    if isinstance(spec, str):
        if spec not in STRATEGIES:
            raise ConfigurationError(
                f"unknown sharding strategy {spec!r}; available: {', '.join(sorted(STRATEGIES))}"
            )
        return STRATEGIES[spec]()
    if isinstance(spec, dict):
        fields = dict(spec)
        kind = fields.pop("kind", None)
        alias = fields.pop("name", None)
        if kind is None:
            kind = alias
        elif alias is not None and alias != kind:
            raise ConfigurationError(
                f"sharding strategy spec {spec!r} names both kind={kind!r} and "
                f"name={alias!r}; pick one"
            )
        if kind is None:
            raise ConfigurationError(
                f"sharding strategy spec {spec!r} names no strategy; pass "
                f"'kind' (or 'name') as one of: {', '.join(sorted(STRATEGIES))}"
            )
        if kind not in STRATEGIES:
            raise ConfigurationError(
                f"unknown sharding strategy {kind!r}; available: {', '.join(sorted(STRATEGIES))}"
            )
        try:
            return STRATEGIES[kind](**fields)
        except TypeError as exc:
            raise ConfigurationError(
                f"invalid parameters for sharding strategy {kind!r}: {exc}"
            ) from exc
    raise ConfigurationError(
        f"cannot build a sharding strategy from {type(spec).__name__}"
    )


class ShardedSampler(StreamSampler):
    """A ``K``-site sharded deployment behind the ``StreamSampler`` interface.

    Parameters
    ----------
    num_sites:
        Number of sites ``K``.
    site_factory:
        Callable ``(rng) -> StreamSampler`` constructing one site's local
        sampler; called once per site with an independent generator derived
        from ``seed``.  The constructed samplers must implement
        :class:`~repro.samplers.base.Mergeable` (reservoir with uniform
        eviction, Bernoulli, sliding window).
    strategy:
        Routing strategy: a name (``"random"``, ``"hash"``,
        ``"round_robin"``, ``"skewed"``), a spec mapping with a ``"kind"``
        field, or a :class:`ShardingStrategy` instance.
    seed:
        Single source of randomness for routing, the site samplers and the
        coordinator's merge draws (three independent substreams are derived
        from it).

    Observing :attr:`sample` performs a fresh merge of the site states, so
    two consecutive observations of the same state may differ for
    randomised merges (reservoir) — exactly as with a real coordinator that
    redraws its merge per query.  The merge draws come from the
    deployment's own substream, never the sites', so what a probing client
    sees can never desynchronise the sites' seeded sampling streams.
    """

    name = "sharded"

    def __init__(
        self,
        num_sites: int,
        site_factory: Callable[[np.random.Generator], StreamSampler],
        strategy: Union[str, ShardingStrategy, dict[str, Any], None] = "random",
        seed: RandomState = None,
    ) -> None:
        super().__init__()
        if num_sites < 1:
            raise ConfigurationError(f"need at least 1 site, got {num_sites}")
        self.num_sites = int(num_sites)
        self.strategy = build_sharding_strategy(strategy)
        self._rng = ensure_generator(seed)
        route_rng, merge_rng, *site_rngs = spawn_generators(self._rng, num_sites + 2)
        self._route_rng = route_rng
        self._merge_rng = merge_rng
        self._sites = [site_factory(site_rng) for site_rng in site_rngs]
        for site in self._sites:
            if not isinstance(site, StreamSampler):
                raise ConfigurationError(
                    f"site factory produced {type(site).__name__}, not a StreamSampler"
                )
            if not isinstance(site, Mergeable):
                raise ConfigurationError(
                    f"{type(site).__name__} does not implement Mergeable and "
                    "cannot participate in a sharded deployment"
                )
        self.name = f"sharded-{self._sites[0].name}"

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------
    def _process(self, element: Any) -> SampleUpdate:
        site = self.strategy.assign_one(
            element, self._round, self.num_sites, self._route_rng
        )
        site_update = self._sites[site].process(element)
        return SampleUpdate(
            round_index=self._round,
            element=element,
            accepted=site_update.accepted,
            evicted=site_update.evicted,
        )

    def extend(
        self, elements: Iterable[Any], updates: bool = True
    ) -> Optional[UpdateBatch]:
        """Chunked per-site ingestion: route once, then one kernel call per site.

        The batch is assigned to sites in a single vectorised call, sliced
        into one order-preserving sub-batch per site, and each sub-batch is
        fed through the site sampler's vectorised ``extend`` kernel.  The
        returned :class:`UpdateBatch` reports outcomes at *global* round
        indices; per-site acceptance flags and evictions are scattered back
        to the elements' global positions.

        For random strategies the batched routing coins are a different
        (equally distributed) realisation than per-element routing — like
        the reservoir's own batched kernel; deterministic strategies
        (``hash``, ``round_robin``) route identically on both paths.
        """
        elements = list(elements)
        if not elements:
            return UpdateBatch.empty() if updates else None
        assignment = self.strategy.assign(
            elements, self._round + 1, self.num_sites, self._route_rng
        )
        start_round = self._round
        self._round += len(elements)
        accepted: Optional[np.ndarray] = (
            np.zeros(len(elements), dtype=bool) if updates else None
        )
        evictions: dict[int, Any] = {}
        for site_index in range(self.num_sites):
            positions = np.flatnonzero(assignment == site_index)
            if len(positions) == 0:
                continue
            sub_batch = [elements[int(position)] for position in positions]
            site_updates = self._sites[site_index].extend(sub_batch, updates=updates)
            if updates:
                accepted[positions] = site_updates.accepted
                for offset, evicted in site_updates.evictions.items():
                    evictions[int(positions[offset])] = evicted
        if not updates:
            return None
        round_indices = np.arange(
            start_round + 1, start_round + len(elements) + 1, dtype=np.int64
        )
        return UpdateBatch(round_indices, elements, accepted, evictions)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def merged_sampler(self) -> StreamSampler:
        """A fresh merge of the site samplers (a new sampler, sites untouched).

        Families whose merge takes substream offsets (they declare
        ``merge_wants_offsets`` — sliding windows, and defense wrappers
        around them) are merged with trailing offsets: each site's local
        window is treated as the most recent stretch of its substream, so
        locally live candidates stay live in the merged view (see the
        module docstring for the per-site-window semantics).
        """
        primary, rest = self._sites[0], self._sites[1:]
        if getattr(primary, "merge_wants_offsets", False):
            total = self.rounds_processed
            offsets = [total - site.rounds_processed for site in self._sites]
            return primary.merge(rest, rng=self._merge_rng, offsets=offsets)
        return primary.merge(rest, rng=self._merge_rng)

    @property
    def sample(self) -> Sequence[Any]:
        """A fresh merge of the site states (empty before any element).

        Reading the merged view exposes the serving state of every site, so
        sites that track exposure (defense wrappers with an
        ``observe_exposure`` hook, e.g. sketch switching) are notified
        *before* the merge — the coordinator serves the post-switch state
        and the sites' own switching budgets advance exactly as if the
        adversary had read them directly.
        """
        if self.rounds_processed == 0:
            return ()
        for site in self._sites:
            notify = getattr(site, "observe_exposure", None)
            if notify is not None:
                notify()
        return tuple(self.merged_sampler().sample)

    def memory_footprint(self) -> int:
        """Elements held across all sites (the deployment's true footprint)."""
        return sum(site.memory_footprint() for site in self._sites)

    def reset(self) -> None:
        """Forget all routed elements; routing/merge randomness continues."""
        for site in self._sites:
            site.reset()
        self._round = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def sites(self) -> Sequence[StreamSampler]:
        """The per-site samplers (read-only view)."""
        return tuple(self._sites)

    @property
    def site_counts(self) -> Sequence[int]:
        """Per-site substream lengths (how many elements each site received)."""
        return tuple(site.rounds_processed for site in self._sites)

    def site_sample(self, site: int) -> Sequence[Any]:
        """The local sample currently held at a site."""
        if not 0 <= site < self.num_sites:
            raise ConfigurationError(
                f"site must lie in [0, {self.num_sites - 1}], got {site}"
            )
        return self._sites[site].sample

    def load_imbalance(self) -> float:
        """Max over sites of ``|load / n - 1 / K|`` — the load-balance error."""
        if self.rounds_processed == 0:
            return 0.0
        target = 1.0 / self.num_sites
        return max(
            abs(count / self.rounds_processed - target) for count in self.site_counts
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedSampler(num_sites={self.num_sites}, "
            f"strategy={self.strategy.name!r}, rounds={self.rounds_processed})"
        )
