"""Distributed substrates: random query routing and distributed reservoir sampling."""

from .adapter import DistributedReservoirSampler
from .coordinator import DistributedReservoir
from .partitioned import RandomRouter, ServerState

__all__ = [
    "DistributedReservoir",
    "DistributedReservoirSampler",
    "RandomRouter",
    "ServerState",
]
