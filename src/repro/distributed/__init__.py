"""Distributed substrates: query routing, distributed reservoirs, sharded samplers."""

from .adapter import DistributedReservoirSampler
from .coordinator import DistributedReservoir
from .faults import (
    FaultPlan,
    MessageCostLedger,
    Reshard,
    SiteCrash,
    StaleWindow,
)
from .partitioned import RandomRouter, ServerState
from .sharded import (
    HashSharding,
    RandomSharding,
    RoundRobinSharding,
    ShardedSampler,
    ShardingStrategy,
    SkewedSharding,
    build_sharding_strategy,
)

__all__ = [
    "DistributedReservoir",
    "DistributedReservoirSampler",
    "FaultPlan",
    "HashSharding",
    "MessageCostLedger",
    "RandomRouter",
    "RandomSharding",
    "Reshard",
    "RoundRobinSharding",
    "ServerState",
    "ShardedSampler",
    "ShardingStrategy",
    "SiteCrash",
    "SkewedSharding",
    "StaleWindow",
    "build_sharding_strategy",
]
