"""Distributed substrates: random query routing and distributed reservoir sampling."""

from .coordinator import DistributedReservoir
from .partitioned import RandomRouter, ServerState

__all__ = ["DistributedReservoir", "RandomRouter", "ServerState"]
