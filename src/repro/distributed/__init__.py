"""Distributed substrates: query routing, distributed reservoirs, sharded samplers."""

from .adapter import DistributedReservoirSampler
from .coordinator import DistributedReservoir
from .partitioned import RandomRouter, ServerState
from .sharded import (
    HashSharding,
    RandomSharding,
    RoundRobinSharding,
    ShardedSampler,
    ShardingStrategy,
    SkewedSharding,
    build_sharding_strategy,
)

__all__ = [
    "DistributedReservoir",
    "DistributedReservoirSampler",
    "HashSharding",
    "RandomRouter",
    "RandomSharding",
    "RoundRobinSharding",
    "ServerState",
    "ShardedSampler",
    "ShardingStrategy",
    "SkewedSharding",
    "build_sharding_strategy",
]
