"""Play the adaptive game against a *distributed* sampling deployment.

The paper's game is single-sampler, but the motivating deployments of
Section 1.2 are distributed: elements arrive at one of ``K`` sites, each site
keeps a local reservoir, and a coordinator merges the local samples into a
global uniform sample on demand.  :class:`DistributedReservoirSampler` wraps
:class:`~repro.distributed.coordinator.DistributedReservoir` in the
:class:`~repro.samplers.base.StreamSampler` interface so the whole deployment
can stand in for a sampler inside :func:`~repro.adversary.game.run_adaptive_game`
and the scenario engine: the adversary observes the coordinator's *merged*
sample (the state an adaptive client could actually probe) and the game
judges that merged sample against the global stream.

Each observed sample is a fresh hypergeometric merge, so two consecutive
observations of the same state may differ — exactly as with a real
coordinator that redraws its merge per query.  All randomness (routing,
site reservoirs, merges) derives from the single seed, so games remain
reproducible.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import RandomState, ensure_generator
from ..samplers.base import SampleUpdate, StreamSampler, UpdateBatch
from .coordinator import DistributedReservoir

__all__ = ["DistributedReservoirSampler"]


class DistributedReservoirSampler(StreamSampler):
    """A ``K``-site distributed reservoir behind the ``StreamSampler`` interface.

    Parameters
    ----------
    num_sites:
        Number of sites; each incoming element is routed to a uniformly
        random site (the random-routing model of Section 1.2).
    capacity:
        Size of the merged global sample (each site also keeps ``capacity``
        locally, which suffices for any merge).
    seed:
        Single source of randomness for routing, the site reservoirs and the
        coordinator's merge draws.
    """

    name = "distributed-reservoir"

    def __init__(self, num_sites: int, capacity: int, seed: RandomState = None) -> None:
        super().__init__()
        if num_sites < 1:
            raise ConfigurationError(f"need at least 1 site, got {num_sites}")
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.num_sites = int(num_sites)
        self.capacity = int(capacity)
        self._rng = ensure_generator(seed)
        self._reservoir = DistributedReservoir(self.num_sites, self.capacity, seed=self._rng)

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------
    def _process(self, element: Any) -> SampleUpdate:
        site = int(self._rng.integers(0, self.num_sites))
        site_update = self._reservoir.process(site, element)
        return SampleUpdate(
            round_index=self._round,
            element=element,
            accepted=site_update.accepted,
            evicted=site_update.evicted,
        )

    def extend(
        self, elements: Iterable[Any], updates: bool = True
    ) -> UpdateBatch | None:
        """Batch ingestion with one vectorised routing draw for the segment.

        Bit-identical to feeding the elements through :meth:`process` one by
        one: the routing draws all come from the adapter's generator in
        element order (a sized ``integers`` call consumes the bit stream
        exactly like that many scalar draws), and each site reservoir sees
        the same local subsequence either way because sites draw from their
        own independent generators.  The per-round record comes back as a
        columnar :class:`UpdateBatch`.
        """
        elements = list(elements)
        if not elements:
            return UpdateBatch.empty() if updates else None
        sites = self._rng.integers(0, self.num_sites, size=len(elements))
        start_round = self._round
        self._round += len(elements)
        if not updates:
            for site, element in zip(sites, elements):
                self._reservoir.process(int(site), element)
            return None
        accepted = np.zeros(len(elements), dtype=bool)
        evictions: dict[int, Any] = {}
        for offset, (site, element) in enumerate(zip(sites, elements)):
            update = self._reservoir.process(int(site), element)
            accepted[offset] = update.accepted
            if update.evicted is not None:
                evictions[offset] = update.evicted
        round_indices = np.arange(
            start_round + 1, start_round + len(elements) + 1, dtype=np.int64
        )
        return UpdateBatch(round_indices, elements, accepted, evictions)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def sample(self) -> Sequence[Any]:
        """A fresh merge of the site reservoirs (empty before any element)."""
        if self._reservoir.total_count == 0:
            return ()
        return tuple(self._reservoir.merged_sample(self.capacity))

    def memory_footprint(self) -> int:
        """Elements held across all sites (the deployment's true footprint)."""
        return sum(len(self._reservoir.site_sample(site)) for site in range(self.num_sites))

    def reset(self) -> None:
        self._round = 0
        self._reservoir = DistributedReservoir(self.num_sites, self.capacity, seed=self._rng)
