"""Distributed reservoir sampling across multiple sites ([CTW16]-style, simplified).

The related-work section mentions distributed stream sampling: ``K`` sites
each observe a local substream, and a coordinator must be able to produce, at
any time, a uniform sample of the *union* of all substreams.  The simple
message-optimal idea (Chung–Tirthapura–Woodruff) is that each site maintains a
local uniform sample plus its local count; the coordinator merges by drawing
how many of the ``k`` output slots come from each site according to a
multivariate hypergeometric split over the site counts, then filling the slots
from the corresponding local samples.

This simplified implementation keeps per-site reservoirs of size ``k`` (enough
to serve any merge of size up to ``k``) and performs the merge on demand.  It
is the substrate for the distributed variant of experiment E12 and for the
``distributed_load_balancing`` example.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

from ..exceptions import ConfigurationError, EmptySampleError
from ..rng import RandomState, ensure_generator, hypergeometric_split
from ..samplers.base import SampleUpdate
from ..samplers.reservoir import ReservoirSampler


class DistributedReservoir:
    """Coordinator + ``num_sites`` local reservoirs providing a global uniform sample.

    Parameters
    ----------
    num_sites:
        Number of distributed sites.
    capacity:
        Size ``k`` of the global sample (each site also keeps ``k`` locally,
        which is sufficient for any merge).
    seed:
        Randomness for the local reservoirs and the coordinator's merge draws.
    """

    def __init__(self, num_sites: int, capacity: int, seed: RandomState = None) -> None:
        if num_sites < 1:
            raise ConfigurationError(f"need at least 1 site, got {num_sites}")
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.num_sites = int(num_sites)
        self.capacity = int(capacity)
        self._rng = ensure_generator(seed)
        self._sites = [
            ReservoirSampler(capacity, seed=self._rng.integers(0, 2**32))
            for _ in range(num_sites)
        ]
        self._counts = [0] * num_sites

    # ------------------------------------------------------------------
    # Site-side operations
    # ------------------------------------------------------------------
    def process(self, site: int, element: Any) -> "SampleUpdate":
        """Record one element observed at the given site.

        Returns the site reservoir's per-round update so callers (notably the
        :class:`~repro.distributed.adapter.DistributedReservoirSampler` game
        adapter) can report acceptance/eviction without reaching into sites.
        """
        self._validate_site(site)
        update = self._sites[site].process(element)
        self._counts[site] += 1
        return update

    def process_batch(self, site: int, elements: Iterable[Any]) -> None:
        """Record a batch of elements observed at the given site."""
        for element in elements:
            self.process(site, element)

    # ------------------------------------------------------------------
    # Coordinator-side operations
    # ------------------------------------------------------------------
    def merged_sample(self, size: int | None = None) -> list[Any]:
        """Return a uniform sample (without replacement) of the union of all substreams.

        The number of slots allotted to each site follows the multivariate
        hypergeometric distribution induced by the site counts, so the merged
        sample is distributed exactly as a uniform ``size``-subset of the
        union — the property the [CTW16] protocol maintains with minimal
        communication.
        """
        if size is None:
            size = self.capacity
        if size < 1:
            raise ConfigurationError(f"sample size must be >= 1, got {size}")
        if size > self.capacity:
            raise ConfigurationError(
                f"cannot produce a sample of {size} from reservoirs of capacity {self.capacity}"
            )
        total = sum(self._counts)
        if total == 0:
            raise EmptySampleError("no site has observed any element yet")
        size = min(size, total)
        allocation = self._hypergeometric_split(size)
        merged: list[Any] = []
        for site, slots in enumerate(allocation):
            if slots == 0:
                continue
            local = list(self._sites[site].sample)
            indices = self._rng.choice(len(local), size=slots, replace=False)
            merged.extend(local[int(i)] for i in indices)
        return merged

    @property
    def total_count(self) -> int:
        """Total number of elements observed across all sites."""
        return sum(self._counts)

    @property
    def site_counts(self) -> Sequence[int]:
        """Per-site element counts."""
        return tuple(self._counts)

    def site_sample(self, site: int) -> Sequence[Any]:
        """The local reservoir currently held at a site."""
        self._validate_site(site)
        return self._sites[site].sample

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _validate_site(self, site: int) -> None:
        if not 0 <= site < self.num_sites:
            raise ConfigurationError(
                f"site must lie in [0, {self.num_sites - 1}], got {site}"
            )

    def _hypergeometric_split(self, size: int) -> list[int]:
        """Draw how many output slots each site contributes (multivariate hypergeometric)."""
        return hypergeometric_split(
            self._rng,
            self._counts,
            size,
            available=[len(site.sample) for site in self._sites],
        )
