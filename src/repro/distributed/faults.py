"""Fault plans and message-cost accounting for elastic sharded deployments.

The paper's adversarial model assumes the sampler *infrastructure* is
reliable; production deployments are not.  This module makes infrastructure
failure a first-class, reproducible experiment axis:

* :class:`FaultPlan` is a seed-independent, JSON-serialisable schedule of
  infrastructure events — site crashes with optional recovery, coordinator
  cache-staleness windows, and mid-stream resharding (site split / merge).
  Every event fires at a declared **global round**, never in response to
  load or timing, so a faulted game is bit-reproducible under a fixed seed
  and independent of how the stream is chunked.
* :class:`MessageCostLedger` counts every site↔coordinator exchange
  (merge pulls, recovery replays, resharding state transfers) in messages
  and payload elements, so benches can compare a deployment's realised
  communication against the [CTW16] coordinator bound: one message per
  live site per merge, payload at most ``K * capacity`` per merge.

Crash semantics follow the coordinator model of [CTW16]-style systems: a
crashed site loses its in-memory summary (the coordinator re-merges from
survivors — graceful degradation, quantified by
:meth:`~repro.distributed.sharded.ShardedSampler.degradation_report`), and
elements routed to it while down follow the crash's declared loss model:

``"drop"``
    Lost permanently.  The merged view stays valid for the survivors'
    union; the dropped rounds are reported as degradation.
``"replay"``
    Buffered upstream (as by a durable ingestion log) and replayed into the
    site at the recovery boundary, before any post-recovery element.

Recovery re-admits the site through the ordinary streaming interface, so
the existing :class:`~repro.samplers.base.Mergeable` kernels pick its state
up again with no special casing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from collections.abc import Mapping
from typing import Any

from ..exceptions import ConfigurationError

__all__ = [
    "FaultPlan",
    "FaultTransition",
    "MessageCostLedger",
    "Reshard",
    "SiteCrash",
    "StaleWindow",
    "compile_fault_spec",
]

LOSS_MODELS = ("drop", "replay")
RESHARD_OPS = ("split", "merge")

#: Fire order for transitions scheduled on the same round: recoveries first
#: (a site comes back before anything else happens that round), then crashes,
#: then topology changes.
_KIND_ORDER = {"recover": 0, "crash": 1, "split": 2, "merge": 3}


@dataclass(frozen=True)
class SiteCrash:
    """A site crash at ``round`` (1-based, global), optionally recovering.

    The crash fires *before* the element of ``round`` is processed: the
    site's local summary is wiped and elements routed to it during rounds
    ``[round, round + recovery_rounds)`` follow the ``loss`` model.  With
    ``recovery_rounds=None`` the site never returns.
    """

    site: int
    round: int
    recovery_rounds: int | None = None
    loss: str = "drop"

    def __post_init__(self) -> None:
        if self.site < 0:
            raise ConfigurationError(f"crash site must be >= 0, got {self.site}")
        if self.round < 1:
            raise ConfigurationError(f"crash round must be >= 1, got {self.round}")
        if self.recovery_rounds is not None and self.recovery_rounds < 1:
            raise ConfigurationError(
                f"recovery_rounds must be >= 1 (or None), got {self.recovery_rounds}"
            )
        if self.loss not in LOSS_MODELS:
            raise ConfigurationError(
                f"unknown loss model {self.loss!r}; expected one of {LOSS_MODELS}"
            )

    @property
    def recovery_round(self) -> int | None:
        """Round before which the site is live again (None = never)."""
        if self.recovery_rounds is None:
            return None
        return self.round + self.recovery_rounds


@dataclass(frozen=True)
class StaleWindow:
    """Rounds during which the coordinator serves its cached merged view.

    While the current round lies in ``[round, round + duration)`` every
    coordinator read returns the most recent cached merge instead of
    pulling fresh site states — the stale-cache failure mode a probing
    adversary can exploit (no merge messages are spent during the window,
    which is visible in the :class:`MessageCostLedger`).
    """

    round: int
    duration: int

    def __post_init__(self) -> None:
        if self.round < 1:
            raise ConfigurationError(f"stale window round must be >= 1, got {self.round}")
        if self.duration < 1:
            raise ConfigurationError(
                f"stale window duration must be >= 1, got {self.duration}"
            )

    def covers(self, round_index: int) -> bool:
        return self.round <= round_index < self.round + self.duration


@dataclass(frozen=True)
class Reshard:
    """A topology change at ``round``: split one site or merge two.

    ``"split"`` spawns a new site from ``site`` (exact hypergeometric state
    split for reservoirs, fresh empty sibling for union-mergeable
    families); ``"merge"`` absorbs ``other`` into ``site`` through the
    family's merge kernel.  ``strategy`` optionally rebinds the routing
    strategy at the same instant (e.g. retargeting a hotspot after a
    split).  Site indices refer to the deployment topology *at fire time*.
    """

    round: int
    op: str
    site: int
    other: int | None = None
    strategy: str | Mapping[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.round < 1:
            raise ConfigurationError(f"reshard round must be >= 1, got {self.round}")
        if self.op not in RESHARD_OPS:
            raise ConfigurationError(
                f"unknown reshard op {self.op!r}; expected one of {RESHARD_OPS}"
            )
        if self.site < 0:
            raise ConfigurationError(f"reshard site must be >= 0, got {self.site}")
        if self.op == "merge":
            if self.other is None:
                raise ConfigurationError("reshard op 'merge' needs an 'other' site")
            if self.other < 0:
                raise ConfigurationError(
                    f"reshard other site must be >= 0, got {self.other}"
                )
            if self.other == self.site:
                raise ConfigurationError(
                    f"cannot merge site {self.site} with itself"
                )
        elif self.other is not None:
            raise ConfigurationError("reshard op 'split' takes no 'other' site")


@dataclass(frozen=True)
class FaultTransition:
    """One compiled state change: fires before the element of ``round``."""

    round: int
    kind: str  # "crash" | "recover" | "split" | "merge"
    site: int
    other: int | None = None
    loss: str | None = None
    strategy: str | Mapping[str, Any] | None = None


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of infrastructure events for a sharded run.

    All rounds are 1-based global stream rounds; an event at round ``r``
    fires before the ``r``-th element is processed.  The plan is pure data
    (JSON round-trippable via :meth:`to_json` / :meth:`from_json`) and
    carries no randomness of its own — all stochasticity in a faulted run
    still comes from the deployment's seeded substreams.
    """

    crashes: tuple[SiteCrash, ...] = ()
    stale_windows: tuple[StaleWindow, ...] = ()
    reshards: tuple[Reshard, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "stale_windows", tuple(self.stale_windows))
        object.__setattr__(self, "reshards", tuple(self.reshards))
        self._validate_outages()

    def _validate_outages(self) -> None:
        by_site: dict[int, list[SiteCrash]] = {}
        for crash in self.crashes:
            by_site.setdefault(crash.site, []).append(crash)
        for site, crashes in by_site.items():
            crashes = sorted(crashes, key=lambda crash: crash.round)
            for previous, current in zip(crashes, crashes[1:]):
                if previous.recovery_round is None:
                    raise ConfigurationError(
                        f"site {site} crashes at round {current.round} but never "
                        f"recovered from its crash at round {previous.round}"
                    )
                if current.round < previous.recovery_round:
                    raise ConfigurationError(
                        f"site {site} crashes at round {current.round} while "
                        f"still down from round {previous.round}"
                    )
        # Resharding shifts site indices, which would desynchronise a pending
        # recovery's stored index — forbid topology changes during an outage.
        for crash in self.crashes:
            end = crash.recovery_round
            for reshard in self.reshards:
                if crash.round < reshard.round and (end is None or reshard.round <= end):
                    raise ConfigurationError(
                        f"reshard at round {reshard.round} falls inside the outage "
                        f"of site {crash.site} (rounds {crash.round}.."
                        f"{'inf' if end is None else end}); reshard outside outages"
                    )

    # ------------------------------------------------------------------
    # Compilation / queries
    # ------------------------------------------------------------------
    def transitions(self) -> list[FaultTransition]:
        """All state changes, sorted by (round, recover < crash < reshard)."""
        compiled: list[tuple[int, int, int, FaultTransition]] = []
        for order, crash in enumerate(self.crashes):
            compiled.append(
                (
                    crash.round,
                    _KIND_ORDER["crash"],
                    order,
                    FaultTransition(crash.round, "crash", crash.site, loss=crash.loss),
                )
            )
            if crash.recovery_round is not None:
                compiled.append(
                    (
                        crash.recovery_round,
                        _KIND_ORDER["recover"],
                        order,
                        FaultTransition(crash.recovery_round, "recover", crash.site),
                    )
                )
        for order, reshard in enumerate(self.reshards):
            compiled.append(
                (
                    reshard.round,
                    _KIND_ORDER[reshard.op],
                    order,
                    FaultTransition(
                        reshard.round,
                        reshard.op,
                        reshard.site,
                        other=reshard.other,
                        strategy=reshard.strategy,
                    ),
                )
            )
        compiled.sort(key=lambda item: item[:3])
        return [transition for *_, transition in compiled]

    def is_stale(self, round_index: int) -> bool:
        """Whether coordinator reads at this round serve the cached view."""
        return any(window.covers(round_index) for window in self.stale_windows)

    def __bool__(self) -> bool:
        return bool(self.crashes or self.stale_windows or self.reshards)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {}
        if self.crashes:
            payload["crashes"] = [
                {
                    "site": crash.site,
                    "round": crash.round,
                    "recovery_rounds": crash.recovery_rounds,
                    "loss": crash.loss,
                }
                for crash in self.crashes
            ]
        if self.stale_windows:
            payload["stale_windows"] = [
                {"round": window.round, "duration": window.duration}
                for window in self.stale_windows
            ]
        if self.reshards:
            payload["reshards"] = [
                {
                    "round": reshard.round,
                    "op": reshard.op,
                    "site": reshard.site,
                    **({"other": reshard.other} if reshard.other is not None else {}),
                    **(
                        {"strategy": reshard.strategy}
                        if reshard.strategy is not None
                        else {}
                    ),
                }
                for reshard in self.reshards
            ]
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        unknown = set(payload) - {"crashes", "stale_windows", "reshards"}
        if unknown:
            raise ConfigurationError(
                f"unknown fault plan fields: {', '.join(sorted(unknown))}"
            )
        return cls(
            crashes=tuple(
                _build_event(SiteCrash, entry, "crash")
                for entry in payload.get("crashes", ())
            ),
            stale_windows=tuple(
                _build_event(StaleWindow, entry, "stale window")
                for entry in payload.get("stale_windows", ())
            ),
            reshards=tuple(
                _build_event(Reshard, entry, "reshard")
                for entry in payload.get("reshards", ())
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


def _resolve_rounds(
    entry: Mapping[str, Any],
    key: str,
    stream_length: int,
    label: str,
    *,
    required: bool = True,
    fraction_key: str | None = None,
) -> int | None:
    """Resolve a ``key`` / ``key_fraction`` pair into an absolute round count.

    Fractions are resolved against ``stream_length`` (so a plan spec scales
    with the scenario and survives ``replace(stream_length=...)``) and
    clamped to at least one round.  Exactly one of the two forms may be
    given; with ``required=False``, neither may be (returns ``None``).
    """
    fraction_key = fraction_key or f"{key}_fraction"
    has_absolute = key in entry
    has_fraction = fraction_key in entry
    if has_absolute and has_fraction:
        raise ConfigurationError(
            f"{label} sets both {key!r} and {fraction_key!r}; pick one"
        )
    if not has_absolute and not has_fraction:
        if required:
            raise ConfigurationError(
                f"{label} needs either {key!r} or {fraction_key!r}"
            )
        return None
    if has_absolute:
        return int(entry[key])
    fraction = float(entry[fraction_key])
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError(
            f"{label} {fraction_key} must lie in (0, 1], got {fraction}"
        )
    return max(1, int(round(fraction * stream_length)))


#: Allowed fields per event list of a faults spec (see compile_fault_spec).
_SPEC_FIELDS = {
    "crashes": {
        "site", "round", "round_fraction", "recovery_rounds",
        "recovery_fraction", "loss",
    },
    "stale_windows": {"round", "round_fraction", "duration", "duration_fraction"},
    "reshards": {"round", "round_fraction", "op", "site", "other", "strategy"},
}


def compile_fault_spec(
    spec: Mapping[str, Any], stream_length: int
) -> FaultPlan:
    """Compile a scenario ``faults`` spec into an absolute-round :class:`FaultPlan`.

    The spec mirrors the plan's structure but may give any round knob as a
    stream-length fraction instead of an absolute round (``round_fraction``,
    ``recovery_fraction``, ``duration_fraction``), exactly like the other
    fraction-or-absolute scenario knobs.  The fault schedule therefore
    depends only on the stream length — never on the attack budget or the
    realised stream — which is what keeps faulted scenarios budget-monotone.
    """
    if not isinstance(spec, Mapping):
        raise ConfigurationError(
            f"faults spec must be a mapping, got {type(spec).__name__}"
        )
    unknown = set(spec) - set(_SPEC_FIELDS)
    if unknown:
        raise ConfigurationError(
            f"unknown faults spec fields: {', '.join(sorted(unknown))}"
        )
    for key in _SPEC_FIELDS:
        entries = spec.get(key, ())
        if not isinstance(entries, (list, tuple)):
            raise ConfigurationError(
                f"faults spec {key!r} must be a list, got {type(entries).__name__}"
            )
        for index, entry in enumerate(entries):
            if not isinstance(entry, Mapping):
                raise ConfigurationError(
                    f"faults spec {key}[{index}] must be a mapping, "
                    f"got {type(entry).__name__}"
                )
            bad = set(entry) - _SPEC_FIELDS[key]
            if bad:
                raise ConfigurationError(
                    f"unknown fields in faults spec {key}[{index}]: "
                    f"{', '.join(sorted(bad))}"
                )
    crashes = []
    for index, entry in enumerate(spec.get("crashes", ())):
        label = f"faults crash #{index}"
        if "site" not in entry:
            raise ConfigurationError(f"{label} needs a 'site'")
        crashes.append(
            SiteCrash(
                site=int(entry["site"]),
                round=_resolve_rounds(entry, "round", stream_length, label),
                recovery_rounds=_resolve_rounds(
                    entry,
                    "recovery_rounds",
                    stream_length,
                    label,
                    required=False,
                    fraction_key="recovery_fraction",
                ),
                loss=entry.get("loss", "drop"),
            )
        )
    windows = []
    for index, entry in enumerate(spec.get("stale_windows", ())):
        label = f"faults stale window #{index}"
        windows.append(
            StaleWindow(
                round=_resolve_rounds(entry, "round", stream_length, label),
                duration=_resolve_rounds(entry, "duration", stream_length, label),
            )
        )
    reshards = []
    for index, entry in enumerate(spec.get("reshards", ())):
        label = f"faults reshard #{index}"
        if "op" not in entry or "site" not in entry:
            raise ConfigurationError(f"{label} needs an 'op' and a 'site'")
        reshards.append(
            Reshard(
                round=_resolve_rounds(entry, "round", stream_length, label),
                op=str(entry["op"]),
                site=int(entry["site"]),
                other=int(entry["other"]) if "other" in entry else None,
                strategy=entry.get("strategy"),
            )
        )
    return FaultPlan(
        crashes=tuple(crashes),
        stale_windows=tuple(windows),
        reshards=tuple(reshards),
    )


def _build_event(kind: type, entry: Mapping[str, Any], label: str) -> Any:
    if not isinstance(entry, Mapping):
        raise ConfigurationError(
            f"each {label} must be a mapping, got {type(entry).__name__}"
        )
    try:
        return kind(**dict(entry))
    except TypeError as exc:
        raise ConfigurationError(f"invalid {label} spec {dict(entry)!r}: {exc}") from exc


@dataclass
class MessageCostLedger:
    """Message/payload accounting for site↔coordinator exchanges.

    Every exchange is recorded under a ``kind`` (``"merge"`` — coordinator
    pulling site states for a rebuild; ``"recovery"`` — replay-buffer flush
    into a re-admitted site; ``"reshard_split"`` / ``"reshard_merge"`` —
    state transfer during a topology change; ``"crash"`` — a zero-message
    marker event) with its message count and payload in stored elements.

    The [CTW16] coordinator shape this lets benches assert: each merge
    rebuild costs exactly one message per live site, with payload bounded
    by the sites' summary capacities — so a deployment answering ``Q``
    distinct-state queries over ``K`` sites of capacity ``k`` spends
    ``Q * K`` messages and at most ``Q * K * k`` payload, and a memoised
    coordinator spends strictly less when queries repeat between advances.
    """

    _events: dict[str, list[int]] = field(default_factory=dict)

    def record(self, kind: str, *, messages: int = 0, payload: int = 0) -> None:
        """Record one exchange of ``messages`` messages carrying ``payload`` elements."""
        if messages < 0 or payload < 0:
            raise ConfigurationError(
                f"messages and payload must be >= 0, got {messages}/{payload}"
            )
        entry = self._events.setdefault(kind, [0, 0, 0])
        entry[0] += 1
        entry[1] += int(messages)
        entry[2] += int(payload)

    def events(self, kind: str) -> int:
        """Number of recorded exchanges of this kind."""
        return self._events.get(kind, [0, 0, 0])[0]

    def messages(self, kind: str) -> int:
        """Total messages recorded under this kind."""
        return self._events.get(kind, [0, 0, 0])[1]

    def payload(self, kind: str) -> int:
        """Total payload elements recorded under this kind."""
        return self._events.get(kind, [0, 0, 0])[2]

    @property
    def total_messages(self) -> int:
        return sum(entry[1] for entry in self._events.values())

    @property
    def total_payload(self) -> int:
        return sum(entry[2] for entry in self._events.values())

    def to_dict(self) -> dict[str, dict[str, int]]:
        return {
            kind: {"events": entry[0], "messages": entry[1], "payload": entry[2]}
            for kind, entry in sorted(self._events.items())
        }

    def reset(self) -> None:
        self._events = {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MessageCostLedger(messages={self.total_messages}, "
            f"payload={self.total_payload})"
        )
