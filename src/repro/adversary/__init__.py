"""Adversaries and game runners for the adaptive sampling model (Section 2).

Game runners:

* :func:`run_adaptive_game` — Figure 1's ``AdaptiveGame``,
* :func:`run_continuous_game` — Figure 2's ``ContinuousAdaptiveGame``,
* :class:`BatchGameRunner` — batched ``(sampler × adversary × seed)`` sweeps
  of either game across worker processes.

Adaptive adversaries:

* :class:`BisectionAdversary` — the introduction's attack on ``[0, 1]``,
* :class:`ThresholdAttackAdversary` — the Figure-3 attack (Theorem 1.3),
* :class:`MedianAttackAdversary` — discrete bisection targeting quantiles,
* :class:`GreedyDensityAdversary` — one-step greedy density-gap attack
  (:class:`MixingGreedyDensityAdversary` breaks cold-start ties by mixing),
* :class:`SwitchingSingletonAdversary` — heavy-hitter false-negative attack,
* :class:`EvictionChaserAdversary` — reservoir-schedule-aware attack.

Static (oblivious) adversaries:

* :class:`StaticAdversary`, :class:`GeneratorAdversary`,
  :class:`UniformAdversary`, :class:`SortedAdversary`, :class:`ZipfAdversary`.
"""

from .base import (
    Adversary,
    BlockCadence,
    CadencedAdversary,
    ObliviousAdversary,
    apply_decision_period,
)
from .campaign import CampaignAdversary, phase_start_rounds
from .batch import (
    BatchCellStats,
    BatchGameRunner,
    TrialOutcome,
    run_monte_carlo,
)
from .bisection import BisectionAdversary
from .game import (
    DEFAULT_CHUNK_SIZE,
    ContinuousGameResult,
    GameResult,
    KnowledgeModel,
    normalize_checkpoints,
    reset_fallback_warnings,
    run_adaptive_game,
    run_continuous_game,
)
from .heavy_hitter_attack import SwitchingSingletonAdversary
from .prefix_attack import GreedyDensityAdversary, MixingGreedyDensityAdversary
from .quantile_attack import MedianAttackAdversary
from .reservoir_attack import EvictionChaserAdversary
from .static import (
    GeneratorAdversary,
    SortedAdversary,
    StaticAdversary,
    UniformAdversary,
    ZipfAdversary,
)
from .threshold import (
    ThresholdAttackAdversary,
    recommended_universe_size,
    sufficient_universe_size,
)

__all__ = [
    "Adversary",
    "BatchCellStats",
    "BlockCadence",
    "BatchGameRunner",
    "CadencedAdversary",
    "CampaignAdversary",
    "DEFAULT_CHUNK_SIZE",
    "BisectionAdversary",
    "ContinuousGameResult",
    "EvictionChaserAdversary",
    "GameResult",
    "GeneratorAdversary",
    "GreedyDensityAdversary",
    "KnowledgeModel",
    "MedianAttackAdversary",
    "MixingGreedyDensityAdversary",
    "ObliviousAdversary",
    "SortedAdversary",
    "StaticAdversary",
    "SwitchingSingletonAdversary",
    "ThresholdAttackAdversary",
    "TrialOutcome",
    "UniformAdversary",
    "ZipfAdversary",
    "apply_decision_period",
    "normalize_checkpoints",
    "phase_start_rounds",
    "recommended_universe_size",
    "reset_fallback_warnings",
    "run_adaptive_game",
    "run_continuous_game",
    "run_monte_carlo",
    "sufficient_universe_size",
]
