"""Batched execution of adaptive-game trials across worker processes.

Every robustness experiment in the library boils down to the same shape of
work: play the adaptive game (Figure 1) or the continuous adaptive game
(Figure 2) for a grid of ``(sampler, adversary)`` configurations, many
Monte-Carlo trials each, and aggregate the per-trial errors.  The seed code
ran those trials one ``process()`` call at a time on a single core; this
module is the engine that makes the sweep batchable:

* :class:`BatchGameRunner` — sweeps a ``(sampler × adversary × seed)`` grid,
  optionally across a process pool, and returns per-cell
  :class:`BatchCellStats` aggregates built from slim per-trial
  :class:`TrialOutcome` records (full :class:`~repro.adversary.game.GameResult`
  objects, with their streams and update logs, never cross a process
  boundary);
* :func:`run_monte_carlo` — the generic trial executor behind
  :func:`repro.experiments.runner.monte_carlo`, with the same
  ``spawn_generators`` seeding semantics as the serial seed path so existing
  experiment outputs are unchanged.

Determinism is independent of scheduling: each trial's sampler and adversary
generators are derived via :func:`repro.rng.derive_substream` from the master
seed and the trial's ``(index, label, role)`` coordinates, so a grid run with
``workers=8`` reproduces a ``workers=1`` run bit for bit.

Worker processes require the trial payload to be picklable (module-level
factories rather than closures).  Payloads that cannot be pickled — and
environments where no pool can be spawned — degrade gracefully to in-process
execution with a warning, so callers never have to special-case either.
"""

from __future__ import annotations

import math
import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Mapping, Sequence
from typing import Any, TypeVar

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import RandomState, collapse_seed, derive_substream, spawn_generators
from ..samplers.base import StreamSampler
from ..setsystems.base import SetSystem
from .base import Adversary, apply_decision_period
from .game import (
    KnowledgeModel,
    normalize_checkpoints,
    run_adaptive_game,
    run_continuous_game,
)

T = TypeVar("T")

SamplerFactory = Callable[[np.random.Generator], StreamSampler]
AdversaryFactory = Callable[[np.random.Generator], Adversary]

__all__ = [
    "AdversaryFactory",
    "BatchCellStats",
    "BatchGameRunner",
    "SamplerFactory",
    "TrialOutcome",
    "default_worker_count",
    "run_monte_carlo",
]


def default_worker_count() -> int:
    """Worker count used when callers pass ``workers=None``.

    Reads the ``REPRO_WORKERS`` environment variable (default 1, i.e. serial
    in-process execution — the safe choice for closures and small grids).
    """
    try:
        return max(1, int(os.environ.get("REPRO_WORKERS", "1")))
    except ValueError:
        return 1


@dataclass(frozen=True)
class TrialOutcome:
    """Slim, picklable summary of one played game.

    Carries everything the aggregation layer needs while leaving the stream
    and the per-round update log behind in the worker, which keeps the
    inter-process traffic proportional to the number of trials rather than
    the number of stream elements.
    """

    sampler: str
    adversary: str
    trial_index: int
    stream_length: int
    sample_size: int
    error: float | None
    succeeded: bool | None
    checkpoint_errors: tuple[float, ...] = ()

    @property
    def max_checkpoint_error(self) -> float | None:
        if not self.checkpoint_errors:
            return None
        return max(self.checkpoint_errors)


@dataclass
class BatchCellStats:
    """Aggregate game statistics for one ``(sampler, adversary)`` grid cell."""

    sampler: str
    adversary: str
    trials: int
    errors: list[float] = field(default_factory=list)
    mean_error: float | None = None
    max_error: float | None = None
    std_error: float | None = None
    #: Fraction of trials whose *endpoint* error exceeds epsilon.
    failure_rate: float | None = None
    #: Fraction of trials whose game verdict is failure — for continuous
    #: games this counts mid-stream checkpoint violations the endpoint-based
    #: ``failure_rate`` cannot see.  ``None`` without an epsilon.
    violation_rate: float | None = None
    mean_sample_size: float = 0.0
    mean_max_checkpoint_error: float | None = None
    worst_checkpoint_error: float | None = None

    @classmethod
    def from_outcomes(
        cls,
        outcomes: Sequence[TrialOutcome],
        epsilon: float | None = None,
    ) -> "BatchCellStats":
        if not outcomes:
            raise ConfigurationError("cannot aggregate an empty list of outcomes")
        sampler = outcomes[0].sampler
        adversary = outcomes[0].adversary
        errors = [o.error for o in outcomes if o.error is not None]
        stats = cls(
            sampler=sampler,
            adversary=adversary,
            trials=len(outcomes),
            errors=errors,
            mean_sample_size=float(np.mean([o.sample_size for o in outcomes])),
        )
        if errors:
            stats.mean_error = float(np.mean(errors))
            stats.max_error = float(np.max(errors))
            stats.std_error = float(np.std(errors))
            if epsilon is not None:
                stats.failure_rate = sum(e > epsilon for e in errors) / len(errors)
        verdicts = [o.succeeded for o in outcomes if o.succeeded is not None]
        if verdicts:
            stats.violation_rate = sum(not v for v in verdicts) / len(verdicts)
        maxima = [o.max_checkpoint_error for o in outcomes if o.checkpoint_errors]
        if maxima:
            stats.mean_max_checkpoint_error = float(np.mean(maxima))
            stats.worst_checkpoint_error = float(np.max(maxima))
        return stats


@dataclass(frozen=True)
class _TrialPayload:
    """Everything a worker needs to play one trial, in picklable form."""

    sampler_factory: SamplerFactory
    adversary_factory: AdversaryFactory
    sampler_label: str
    adversary_label: str
    trial_index: int
    base_seed: int
    stream_length: int
    set_system: SetSystem | None
    epsilon: float | None
    knowledge: KnowledgeModel
    continuous: bool
    checkpoints: tuple[int, ...] | None
    checkpoint_ratio: float | None
    incremental: bool
    chunk_size: int | None
    decision_period: int | None = None


def _execute_trial(payload: _TrialPayload) -> TrialOutcome:
    """Play one trial (runs in a worker process or inline)."""
    sampler_rng = derive_substream(
        payload.base_seed, payload.trial_index, payload.sampler_label, "sampler"
    )
    adversary_rng = derive_substream(
        payload.base_seed, payload.trial_index, payload.adversary_label, "adversary"
    )
    sampler = payload.sampler_factory(sampler_rng)
    adversary = payload.adversary_factory(adversary_rng)
    if payload.decision_period is not None:
        # Cadence is a property of the *strategy*: the runner re-declares it
        # on cadence-capable adversaries (a no-op for oblivious ones, which
        # have no decision points to space out).
        apply_decision_period(adversary, payload.decision_period)
    if payload.continuous:
        assert payload.set_system is not None
        result = run_continuous_game(
            sampler,
            adversary,
            payload.stream_length,
            set_system=payload.set_system,
            epsilon=payload.epsilon,
            checkpoints=payload.checkpoints,
            checkpoint_ratio=payload.checkpoint_ratio,
            knowledge=payload.knowledge,
            incremental=payload.incremental,
            # Aggregation reads only the slim TrialOutcome fields, so the
            # per-round record is never materialised in workers.
            keep_updates=False,
            chunk_size=payload.chunk_size,
        )
        checkpoint_errors = tuple(result.checkpoint_errors)
        # The paper's ContinuousAdaptiveGame outputs 1 only when *no*
        # checkpoint is violated; the endpoint verdict would overstate it.
        succeeded = result.continuously_succeeded
    else:
        result = run_adaptive_game(
            sampler,
            adversary,
            payload.stream_length,
            set_system=payload.set_system,
            epsilon=payload.epsilon,
            knowledge=payload.knowledge,
            keep_updates=False,
            chunk_size=payload.chunk_size,
        )
        checkpoint_errors = ()
        succeeded = result.succeeded
    return TrialOutcome(
        sampler=payload.sampler_label,
        adversary=payload.adversary_label,
        trial_index=payload.trial_index,
        stream_length=result.stream_length,
        sample_size=result.sample_size,
        error=result.error,
        succeeded=succeeded,
        checkpoint_errors=checkpoint_errors,
    )


def _is_picklable(item: Any) -> bool:
    try:
        pickle.dumps(item)
        return True
    except Exception:
        return False


def _execute_all(
    task: Callable[[Any], T], payloads: Sequence[Any], workers: int
) -> list[T]:
    """Run ``task`` over ``payloads``, in a process pool when possible.

    Falls back to in-process execution (with a warning) when the payloads
    cannot be pickled or no pool can be spawned; results are always returned
    in payload order.
    """
    if workers > 1 and len(payloads) > 1:
        # Probe only the first payload (cheap, and catches the common
        # all-closures case with a precise message); a grid that mixes
        # picklable and unpicklable payloads surfaces as a pickle failure
        # from the pool itself (PicklingError, or TypeError for objects like
        # locks and sockets) and takes the same fallback.  Trials are pure,
        # so discarding any partial pool results and re-running is safe; a
        # genuine TypeError from a trial simply re-raises on the serial pass.
        if _is_picklable((task, payloads[0])):
            chunksize = max(1, math.ceil(len(payloads) / (workers * 4)))
            try:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    return list(pool.map(task, payloads, chunksize=chunksize))
            except (pickle.PicklingError, TypeError, AttributeError) as exc:
                # PicklingError is unambiguous; TypeError/AttributeError may
                # come from pickling exotic payloads *or* from the trial
                # itself, so the message stays neutral — a genuine trial
                # error re-raises on the serial pass below either way.
                if isinstance(exc, pickle.PicklingError):
                    message = f"trial payload is not picklable ({exc})"
                else:
                    message = f"process-pool execution failed ({exc})"
                warnings.warn(
                    f"{message}; re-running trials in-process",
                    RuntimeWarning,
                    stacklevel=3,
                )
            except (OSError, PermissionError) as exc:  # pragma: no cover - env-specific
                warnings.warn(
                    f"process pool unavailable ({exc}); running trials in-process",
                    RuntimeWarning,
                    stacklevel=3,
                )
        else:
            warnings.warn(
                "trial payload is not picklable (closures cannot cross process "
                "boundaries); running trials in-process",
                RuntimeWarning,
                stacklevel=3,
            )
    return [task(payload) for payload in payloads]


class BatchGameRunner:
    """Sweep ``(sampler × adversary × seed)`` grids of adaptive-game trials.

    Parameters
    ----------
    stream_length:
        Number of rounds ``n`` per game.
    set_system / epsilon / knowledge:
        Passed through to the game runner (see
        :func:`~repro.adversary.game.run_adaptive_game`).
    continuous:
        Play the ContinuousAdaptiveGame of Figure 2 instead of the endpoint
        game; requires ``set_system``.
    checkpoints / checkpoint_ratio / incremental:
        Checkpoint schedule and tracker toggle for continuous games.
    seed:
        Master seed for the whole sweep.  Each trial derives independent
        sampler and adversary generators from it via
        :func:`repro.rng.derive_substream`, keyed by trial index and grid
        labels, so results do not depend on execution order or worker count.
    workers:
        Number of worker processes (``None`` reads ``REPRO_WORKERS``; 1 runs
        in-process).  Factories must be picklable (module-level callables)
        for the pool to be used; otherwise the runner transparently executes
        in-process.
    chunk_size:
        Maximum segment length for chunked game execution (see
        :func:`~repro.adversary.game.run_adaptive_game`); ``None`` uses the
        default, ``1`` forces the per-element path.
    decision_period:
        When set, re-declares the decision cadence of every constructed
        adversary that supports one
        (:func:`~repro.adversary.base.apply_decision_period`) before its
        game starts — the sweep-level knob for reaction-cadence grids.
        Oblivious adversaries and adversaries without a cadence protocol
        are unaffected.

    Examples
    --------
    >>> from repro.adversary.batch import BatchGameRunner
    >>> from repro.samplers import ReservoirSampler
    >>> from repro.adversary import UniformAdversary
    >>> from repro.setsystems import PrefixSystem
    >>> runner = BatchGameRunner(500, set_system=PrefixSystem(64), epsilon=0.3, seed=7)
    >>> cells = runner.run_grid(
    ...     samplers={"reservoir-32": lambda rng: ReservoirSampler(32, seed=rng)},
    ...     adversaries={"uniform": lambda rng: UniformAdversary(64, seed=rng)},
    ...     trials=4,
    ... )
    >>> cells[0].trials
    4
    """

    def __init__(
        self,
        stream_length: int,
        *,
        set_system: SetSystem | None = None,
        epsilon: float | None = None,
        knowledge: KnowledgeModel = "full",
        continuous: bool = False,
        checkpoints: Iterable[int] | None = None,
        checkpoint_ratio: float | None = None,
        incremental: bool = True,
        seed: RandomState = None,
        workers: int | None = None,
        chunk_size: int | None = None,
        decision_period: int | None = None,
    ) -> None:
        if stream_length < 1:
            raise ConfigurationError(f"stream length must be >= 1, got {stream_length}")
        if decision_period is not None and int(decision_period) < 1:
            raise ConfigurationError(
                f"decision period must be >= 1, got {decision_period}"
            )
        if continuous and set_system is None:
            raise ConfigurationError("the continuous game requires a set system")
        if not continuous and (checkpoints is not None or checkpoint_ratio is not None):
            raise ConfigurationError(
                "checkpoints/checkpoint_ratio only apply to the continuous game; "
                "pass continuous=True"
            )
        if epsilon is not None and set_system is None:
            raise ConfigurationError("judging against epsilon requires a set system")
        self.stream_length = int(stream_length)
        self.set_system = set_system
        self.epsilon = epsilon
        self.knowledge = knowledge
        self.continuous = continuous
        # Normalise the schedule once here instead of per trial: every game
        # of the grid replays the identical schedule, and pre-normalised
        # tuples pass through run_continuous_game untouched.  Invalid
        # checkpoints therefore fail at construction, not inside a worker.
        if continuous:
            self.checkpoints: tuple[int, ...] | None = normalize_checkpoints(
                tuple(int(c) for c in checkpoints) if checkpoints is not None else None,
                self.stream_length,
                epsilon=epsilon,
                checkpoint_ratio=checkpoint_ratio,
            )
        else:
            self.checkpoints = None
        self.checkpoint_ratio = checkpoint_ratio
        self.incremental = incremental
        self.chunk_size = chunk_size
        self.decision_period = None if decision_period is None else int(decision_period)
        self.base_seed = collapse_seed(seed)
        self.workers = default_worker_count() if workers is None else max(1, int(workers))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _payloads(
        self,
        samplers: Mapping[str, SamplerFactory],
        adversaries: Mapping[str, AdversaryFactory],
        trials: int,
    ) -> list[_TrialPayload]:
        if trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {trials}")
        if not samplers or not adversaries:
            raise ConfigurationError("the grid needs at least one sampler and one adversary")
        return [
            _TrialPayload(
                sampler_factory=sampler_factory,
                adversary_factory=adversary_factory,
                sampler_label=sampler_label,
                adversary_label=adversary_label,
                trial_index=trial_index,
                base_seed=self.base_seed,
                stream_length=self.stream_length,
                set_system=self.set_system,
                epsilon=self.epsilon,
                knowledge=self.knowledge,
                continuous=self.continuous,
                checkpoints=self.checkpoints,
                checkpoint_ratio=self.checkpoint_ratio,
                incremental=self.incremental,
                chunk_size=self.chunk_size,
                decision_period=self.decision_period,
            )
            for sampler_label, sampler_factory in samplers.items()
            for adversary_label, adversary_factory in adversaries.items()
            for trial_index in range(trials)
        ]

    def run_trials(
        self,
        sampler_factory: SamplerFactory,
        adversary_factory: AdversaryFactory,
        trials: int,
        sampler_label: str = "sampler",
        adversary_label: str = "adversary",
    ) -> list[TrialOutcome]:
        """Play ``trials`` games of a single ``(sampler, adversary)`` pair."""
        payloads = self._payloads(
            {sampler_label: sampler_factory}, {adversary_label: adversary_factory}, trials
        )
        return _execute_all(_execute_trial, payloads, self.workers)

    def run_grid_outcomes(
        self,
        samplers: Mapping[str, SamplerFactory],
        adversaries: Mapping[str, AdversaryFactory],
        trials: int,
    ) -> dict[tuple[str, str], list[TrialOutcome]]:
        """Play every cell and return the raw per-trial outcomes by cell.

        The full grid is flattened into one task list before dispatch, so a
        process pool load-balances across cells rather than within one cell
        at a time.  Use this instead of :meth:`run_grid` when the caller
        needs trial-level data (e.g. per-checkpoint error trajectories);
        trials within each cell are in trial-index order.
        """
        payloads = self._payloads(samplers, adversaries, trials)
        outcomes = _execute_all(_execute_trial, payloads, self.workers)
        by_cell: dict[tuple[str, str], list[TrialOutcome]] = {
            (sampler_label, adversary_label): []
            for sampler_label in samplers
            for adversary_label in adversaries
        }
        for outcome in outcomes:
            by_cell[(outcome.sampler, outcome.adversary)].append(outcome)
        return by_cell

    def run_grid(
        self,
        samplers: Mapping[str, SamplerFactory],
        adversaries: Mapping[str, AdversaryFactory],
        trials: int,
    ) -> list[BatchCellStats]:
        """Play every ``(sampler, adversary)`` cell for ``trials`` trials each.

        Cells come back in ``samplers × adversaries`` order; see
        :meth:`run_grid_outcomes` for the trial-level form.
        """
        by_cell = self.run_grid_outcomes(samplers, adversaries, trials)
        return [
            BatchCellStats.from_outcomes(outcomes, self.epsilon)
            for outcomes in by_cell.values()
        ]


# ----------------------------------------------------------------------
# Generic Monte-Carlo execution (the engine behind experiments.runner)
# ----------------------------------------------------------------------
def _call_trial(payload: tuple[Callable[[np.random.Generator, int], T], np.random.Generator, int]) -> T:
    trial, generator, index = payload
    return trial(generator, index)


def run_monte_carlo(
    trial: Callable[[np.random.Generator, int], T],
    trials: int,
    seed: RandomState = None,
    workers: int | None = None,
) -> list[T]:
    """Run ``trial(rng, index)`` for ``trials`` independent generators.

    Seeding is identical to the historical serial runner (one
    :func:`repro.rng.spawn_generators` child per trial), so serial results
    are unchanged and a parallel run returns exactly the serial results in
    the same order.  ``trial`` must be picklable for the pool to engage;
    closures fall back to in-process execution with a ``RuntimeWarning``
    (emitted once per call site under the default warning filter).
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    workers = default_worker_count() if workers is None else max(1, int(workers))
    generators = spawn_generators(seed, trials)
    payloads = [(trial, generator, index) for index, generator in enumerate(generators)]
    return _execute_all(_call_trial, payloads, workers)
