"""Adaptive attacks against sample-based heavy-hitter detection.

The heavy-hitters algorithm of Corollary 1.6 reports every element whose
density in the *sample* exceeds ``alpha - eps'``.  An adaptive adversary can
try to create either

* **false negatives** — an element that is genuinely heavy in the stream but
  under-represented in the sample, or
* **false positives** — an element that is light in the stream but
  over-represented in the sample.

:class:`SwitchingSingletonAdversary` pursues false negatives: it keeps
submitting one target value for as long as that value is absent from the
sample, and the moment the value is stored it abandons it and switches to a
fresh value.  Stream mass therefore accumulates on values the sample missed.
Against Bernoulli sampling with rate ``p``, a value survives about ``1/p``
submissions before being caught, so the heaviest uncaught value has stream
density about ``1 / (p n)`` — below the heavy-hitter threshold whenever the
sample is sized per Corollary 1.6, which is what experiment E8 confirms.

Decision cadence: with ``decision_period=p`` the adversary floods the
current target for a whole ``p``-round block before reading the outcome —
exactly the behaviour of a prober whose feedback (e.g. a published top-k
report) refreshes every ``p`` rounds.  A caught target is only abandoned at
the block boundary; ``p=1`` is the historical per-round switcher.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from ..exceptions import ConfigurationError
from ..samplers.base import SampleUpdate, UpdateBatch
from .base import CadencedAdversary


class SwitchingSingletonAdversary(CadencedAdversary):
    """Concentrate stream mass on values that the sampler has failed to store.

    Parameters
    ----------
    universe_size:
        Values are drawn from ``{1, ..., universe_size}``; the adversary
        consumes them in increasing order as targets get "burnt" (stored).
    revisit_evicted:
        When ``True``, a previously burnt target whose copies have all been
        evicted from the sample again (reservoir sampling evicts) becomes the
        preferred target once more.  This is the reservoir-aware refinement.
    decision_period:
        Rounds between decision points; each block floods one target.
    """

    name = "switching-singleton-attack"

    def __init__(
        self,
        universe_size: int,
        revisit_evicted: bool = False,
        decision_period: int = 1,
    ) -> None:
        super().__init__(decision_period)
        if universe_size < 2:
            raise ConfigurationError(f"universe size must be >= 2, got {universe_size}")
        self.universe_size = int(universe_size)
        self.revisit_evicted = bool(revisit_evicted)
        # The revisit refinement reads the sample at decision points; the
        # plain switcher needs only the per-round acceptance records.
        self.decision_needs = "both" if self.revisit_evicted else "updates"
        self._current_target = 1
        self._next_fresh = 2
        self._burnt: list[int] = []

    # ------------------------------------------------------------------
    # Cadence interface
    # ------------------------------------------------------------------
    def plan_block(
        self, round_index: int, count: int, observed_sample: Sequence[Any] | None
    ) -> list[int]:
        if self.revisit_evicted and observed_sample is not None and self._burnt:
            sample_values = set(observed_sample)
            for value in self._burnt:
                if value not in sample_values:
                    # A previously caught value has been flushed out of the
                    # sample; piling more mass on it is cheaper than starting
                    # a fresh target.
                    self._current_target = value
                    break
        return [self._current_target] * count

    def observe_block(self, updates: Sequence[SampleUpdate]) -> None:
        # Replay the per-round switching rule over the block's records: only
        # the first acceptance of the block's target can burn it (later
        # records carry the old — already abandoned — value).
        if isinstance(updates, UpdateBatch):
            # Columnar fast path: a block floods one value, so nothing can
            # change unless some copy was accepted — one vectorised check
            # skips most blocks outright.
            if not updates.accepted.any():
                return
            for offset in np.flatnonzero(updates.accepted):
                if updates.elements[int(offset)] == self._current_target:
                    self._burn_current_target()
                    break
            return
        for update in updates:
            if update.element == self._current_target and update.accepted:
                self._burn_current_target()

    def _burn_current_target(self) -> None:
        if self._current_target not in self._burnt:
            self._burnt.append(self._current_target)
        self._current_target = self._next_fresh
        if self._next_fresh < self.universe_size:
            self._next_fresh += 1

    def reset(self) -> None:
        super().reset()
        self._current_target = 1
        self._next_fresh = 2
        self._burnt = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def burnt_targets(self) -> list[int]:
        """Values the adversary abandoned because the sampler stored them."""
        return list(self._burnt)

    @property
    def current_target(self) -> int:
        """The value currently being pushed into the stream."""
        return self._current_target
