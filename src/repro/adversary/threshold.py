"""The Figure-3 attack: the discrete-universe lower bound of Theorem 1.3.

The adversary works over the well-ordered universe ``U = {1, ..., N}`` with
the prefix set system ``R = {[1, b] : b in U}`` (VC dimension 1, cardinality
``N``).  It keeps a working range ``[a_i, b_i]`` and in round ``i`` submits

    ``x_i = floor(a_i + (1 - p') (b_i - a_i))``

where ``p' = max(p, ln n / n)``.  If ``x_i`` is stored it sets
``a_{i+1} = x_i``; otherwise ``b_{i+1} = x_i``.  Exactly as in the bisection
attack, every sampled element ends up below every non-sampled element, so the
prefix ending at the largest sampled element has density 1 in the sample but
only ``|S| / n`` in the stream — the sample is maximally unrepresentative.

The asymmetric split (by ``1 - p'`` rather than ``1/2``) is what lets the
attack survive ``n`` rounds inside a universe of size only
``N >= n^{6 ln n}``: sampled rounds are rare (probability ``~p'``) and consume
little of the range, non-sampled rounds are common but shrink the range by
only a ``(1 - p')`` factor.

Python's arbitrary-precision integers let the implementation use the paper's
universe sizes exactly (``N ~ n^{6 ln n}`` easily fits in a few hundred
bits), so no precision substitution is needed for the discrete attack.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import Any

from ..exceptions import ConfigurationError
from ..samplers.base import SampleUpdate
from .base import CadencedAdversary, block_outcome_for_element


def recommended_universe_size(stream_length: int, clamp_to_float: bool = True) -> int:
    """Return the smallest universe size for which Theorem 1.3 applies.

    The theorem requires ``n^{6 ln n} <= N <= 2^{n / 2}``; this returns
    ``ceil(n^{6 ln n})`` (the smallest admissible ``N``).  When
    ``clamp_to_float`` is set, the value is additionally capped at ``2^900``
    so that elements can still be converted to IEEE doubles where convenient;
    the library's discrepancy computations handle arbitrary integers either
    way, and the cap only binds for stream lengths above ~10^4.
    """
    if stream_length < 3:
        raise ConfigurationError(f"stream length must be >= 3, got {stream_length}")
    exponent = 6.0 * math.log(stream_length) * math.log(stream_length)
    # n^{6 ln n} = exp(6 (ln n)^2); build it as an integer power to stay exact.
    size = int(math.ceil(math.exp(min(exponent, 700.0))))
    if exponent > 700.0:
        size = 2**900 if clamp_to_float else int(stream_length) ** int(
            math.ceil(6.0 * math.log(stream_length))
        )
    if clamp_to_float:
        size = min(size, 2**900)
    return max(size, stream_length + 2)


def sufficient_universe_size(
    expected_accepted: float, stream_length: int, step_fraction: float
) -> int:
    """Universe size large enough for the Figure-3 attack to survive ``n`` rounds.

    Claim 5.1's induction shows the working range stays non-trivial as long as

        ``ln N >= |S| ln(1/p') + 3 n p' + ln n``

    where ``|S|`` is the number of accepted rounds and ``p'`` the step
    fraction.  This helper returns ``2**bits`` with ``bits`` chosen from that
    inequality (with a 25% safety margin), which lets experiments attack
    samplers *above* the strict ``n^{6 ln n}``-regime of Theorem 1.3 while
    preserving the attack's invariant.  The returned value is an exact Python
    integer; all library components accept such universes.
    """
    if stream_length < 3:
        raise ConfigurationError(f"stream length must be >= 3, got {stream_length}")
    if not 0.0 < step_fraction < 1.0:
        raise ConfigurationError(f"step fraction must lie in (0, 1), got {step_fraction}")
    if expected_accepted < 0:
        raise ConfigurationError(
            f"expected accepted rounds must be >= 0, got {expected_accepted}"
        )
    nats = (
        2.0 * expected_accepted * math.log(1.0 / step_fraction)
        + 3.0 * stream_length * step_fraction
        + math.log(stream_length)
    )
    bits = int(math.ceil(1.25 * nats / math.log(2.0))) + 16
    return 2**bits


class ThresholdAttackAdversary(CadencedAdversary):
    """The adaptive attack of Figure 3 against Bernoulli / reservoir sampling.

    Parameters
    ----------
    universe_size:
        ``N``; the attack submits integers in ``{1, ..., N}``.
    stream_length:
        ``n``, used to compute the default step fraction.
    step_fraction:
        The value ``p'`` used for the asymmetric split.  Use the factory
        methods :meth:`for_bernoulli` / :meth:`for_reservoir` to obtain the
        paper's choices.
    decision_period:
        Rounds between decision points; each block repeats one split point
        and the range moves up iff *any* copy was stored (a stored copy is
        what pins the split point below the sampled suffix).  ``1`` — the
        default — is Figure 3 verbatim.
    """

    name = "figure3-attack"
    decision_needs = "updates"

    def __init__(
        self,
        universe_size: int,
        stream_length: int,
        step_fraction: float,
        decision_period: int = 1,
    ) -> None:
        super().__init__(decision_period)
        if universe_size < 3:
            raise ConfigurationError(f"universe size must be >= 3, got {universe_size}")
        if stream_length < 1:
            raise ConfigurationError(f"stream length must be >= 1, got {stream_length}")
        if not 0.0 < step_fraction < 1.0:
            raise ConfigurationError(
                f"step fraction must lie in (0, 1), got {step_fraction}"
            )
        self.universe_size = int(universe_size)
        self.stream_length = int(stream_length)
        self.step_fraction = float(step_fraction)
        self._low = 1
        self._high = int(universe_size)
        self._last_element: int | None = None
        #: Round at which the working range collapsed (attack failure), if any.
        self.range_exhausted_at: int | None = None

    # ------------------------------------------------------------------
    # Factories matching the paper's parameter choices
    # ------------------------------------------------------------------
    @classmethod
    def for_bernoulli(
        cls,
        probability: float,
        stream_length: int,
        universe_size: int | None = None,
        decision_period: int = 1,
    ) -> "ThresholdAttackAdversary":
        """Attack configured against ``BernoulliSample(p)``: ``p' = max(p, ln n / n)``."""
        if universe_size is None:
            universe_size = recommended_universe_size(stream_length)
        step = max(probability, math.log(max(stream_length, 3)) / stream_length)
        step = min(step, 0.999999)
        return cls(universe_size, stream_length, step, decision_period=decision_period)

    @classmethod
    def for_reservoir(
        cls,
        reservoir_size: int,
        stream_length: int,
        universe_size: int | None = None,
        decision_period: int = 1,
    ) -> "ThresholdAttackAdversary":
        """Attack configured against ``ReservoirSample(k)``.

        The reservoir accepts about ``k (1 + ln(n/k))`` elements over the
        whole stream (the paper's ``k'``), so the step fraction is set so that
        the accepted count stays below ``2 n p'`` (Claim 5.1's condition),
        floored at ``ln n / n`` as in Figure 3.  When ``universe_size`` is not
        given it is chosen via :func:`sufficient_universe_size` so the working
        range provably survives all ``n`` rounds.
        """
        log_n = math.log(max(stream_length, 3))
        expected_accepted = reservoir_size * (
            1.0 + max(0.0, math.log(stream_length / max(reservoir_size, 1)))
        )
        step = max(expected_accepted / stream_length, log_n / stream_length)
        step = min(step, 0.75)
        if universe_size is None:
            universe_size = sufficient_universe_size(expected_accepted, stream_length, step)
        return cls(universe_size, stream_length, step, decision_period=decision_period)

    # ------------------------------------------------------------------
    # Cadence interface
    # ------------------------------------------------------------------
    def plan_block(
        self, round_index: int, count: int, observed_sample: Sequence[Any] | None
    ) -> list[int]:
        span = self._high - self._low
        if span < 2:
            # The working range has collapsed: Claim 5.1 guarantees this does
            # not happen under the theorem's parameters, but an experiment may
            # deliberately run the attack outside them.  Keep submitting the
            # lower endpoint and record the failure round.
            if self.range_exhausted_at is None:
                self.range_exhausted_at = round_index
            self._last_element = self._low
            return [self._low] * count
        # Exact integer arithmetic: the span may be thousands of bits wide, so
        # the (1 - p') scaling is done with an integer rational approximation
        # of p' rather than float multiplication.
        keep_numerator = int(round((1.0 - self.step_fraction) * 10**9))
        offset = span * keep_numerator // 10**9
        offset = min(max(offset, 1), span - 1)
        element = self._low + offset
        self._last_element = element
        return [element] * count

    def observe_block(self, updates: Sequence[SampleUpdate]) -> None:
        if self._last_element is None:
            return
        stored = block_outcome_for_element(updates, self._last_element)
        if stored is None:
            return
        if stored:
            self._low = self._last_element
        else:
            self._high = self._last_element

    def reset(self) -> None:
        super().reset()
        self._low = 1
        self._high = self.universe_size
        self._last_element = None
        self.range_exhausted_at = None

    @property
    def working_range(self) -> tuple[int, int]:
        """The current working range ``[a_i, b_i]``."""
        return (self._low, self._high)

    @property
    def attack_failed(self) -> bool:
        """True when the working range collapsed before the stream ended."""
        return self.range_exhausted_at is not None
