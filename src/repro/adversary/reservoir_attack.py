"""An attack heuristic tailored to reservoir sampling's decaying acceptance rate.

Reservoir sampling accepts round ``i``'s element with probability ``k / i``,
so an adaptive adversary knows *when* its submissions are likely to be
reflected in the sample (early rounds) and when they are likely to be ignored
(late rounds).  :class:`EvictionChaserAdversary` exploits that schedule and
the observed sample jointly:

* while the acceptance probability is still high it submits elements
  *outside* its target range, so that whatever gets stored is out-of-range
  mass;
* once the acceptance probability drops below a threshold it floods the
  stream with *in-range* elements, which now rarely make it into the sample
  (and when they do, the adversary notices and briefly switches back).

The result, if the reservoir is small, is a stream whose target-range density
is high while the sample's is low.  Theorem 1.2 predicts the trick stops
working once ``k`` reaches ``2 (ln|R| + ln(2/delta)) / eps^2``; the E2/E3
ablations run this adversary alongside the Figure-3 attack to confirm neither
beats a properly sized reservoir.

Decision cadence: the acceptance schedule ``k / i`` is *known in advance*,
so a whole block's early/late phase split is computed in one vectorised
mask; only the one-round back-off after a noticed in-range acceptance is
feedback-driven, and with ``decision_period=p`` that notice arrives at block
boundaries.  ``p=1`` reproduces the historical per-round chaser exactly.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from ..exceptions import ConfigurationError
from ..samplers.base import SampleUpdate, UpdateBatch
from .base import CadencedAdversary


class EvictionChaserAdversary(CadencedAdversary):
    """Schedule-aware attack against a target range, designed for reservoir sampling.

    Parameters
    ----------
    target_range:
        Range whose sample density the adversary tries to suppress.
    in_range_element / out_range_element:
        Fixed elements (or zero-argument callables) inside / outside the range.
    reservoir_size:
        The reservoir capacity ``k`` the adversary believes the sampler uses
        (the paper's adversary knows the sampling algorithm and parameters).
    switch_threshold:
        Acceptance probability ``k / i`` below which the adversary switches
        from out-of-range to in-range submissions; defaults to 0.5.
    decision_period:
        Rounds between decision points; the phase schedule inside a block is
        precomputed, feedback (the back-off trigger) lands at boundaries.
    """

    name = "eviction-chaser"
    decision_needs = "updates"

    def __init__(
        self,
        target_range: Any,
        in_range_element: Any | Callable[[], Any],
        out_range_element: Any | Callable[[], Any],
        reservoir_size: int,
        switch_threshold: float = 0.5,
        decision_period: int = 1,
    ) -> None:
        super().__init__(decision_period)
        if reservoir_size < 1:
            raise ConfigurationError(f"reservoir size must be >= 1, got {reservoir_size}")
        if not 0.0 < switch_threshold <= 1.0:
            raise ConfigurationError(
                f"switch threshold must lie in (0, 1], got {switch_threshold}"
            )
        self.target_range = target_range
        self._in_supplier = in_range_element if callable(in_range_element) else (
            lambda: in_range_element
        )
        self._out_supplier = out_range_element if callable(out_range_element) else (
            lambda: out_range_element
        )
        self.reservoir_size = int(reservoir_size)
        self.switch_threshold = float(switch_threshold)
        self._recent_in_range_accepted = False

    # ------------------------------------------------------------------
    # Cadence interface
    # ------------------------------------------------------------------
    def plan_block(
        self, round_index: int, count: int, observed_sample: Sequence[Any] | None
    ) -> list[Any]:
        # The early/late phase of every round in the block is known up front:
        # acceptance probability k / i against the switch threshold, in one
        # vectorised comparison.
        rounds = np.arange(round_index, round_index + count)
        # Same float expression as the historical per-round rule, so the
        # phase boundary lands on exactly the same round.
        acceptance = np.minimum(1.0, self.reservoir_size / np.maximum(rounds, 1))
        early = acceptance >= self.switch_threshold
        elements: list[Any] = []
        backoff = self._recent_in_range_accepted
        for is_early in early:
            if is_early:
                # Early phase: whatever we submit is likely stored, so keep
                # the stored mass out of the target range.
                elements.append(self._out_supplier())
            elif backoff:
                # Our last in-range submission slipped into the sample; back
                # off for one round to avoid feeding the sample more in-range
                # mass while the density gap recovers.
                backoff = False
                self._recent_in_range_accepted = False
                elements.append(self._out_supplier())
            else:
                elements.append(self._in_supplier())
        return elements

    def observe_block(self, updates: Sequence[SampleUpdate]) -> None:
        if isinstance(updates, UpdateBatch):
            # Columnar fast path: only the (rare, late-phase) accepted rounds
            # need the in-range membership test.
            for offset in np.flatnonzero(updates.accepted):
                if updates.elements[int(offset)] in self.target_range:
                    self._recent_in_range_accepted = True
                    return
            return
        if any(u.accepted and u.element in self.target_range for u in updates):
            self._recent_in_range_accepted = True

    def reset(self) -> None:
        super().reset()
        self._recent_in_range_accepted = False
