"""Game runners realising Figures 1 and 2 of the paper.

:func:`run_adaptive_game` plays the ``AdaptiveGame`` of Figure 1: the
adversary submits ``n`` elements one by one, observing the sampler's state
after every round, and the final sample is judged against the full stream.

:func:`run_continuous_game` plays the ``ContinuousAdaptiveGame`` of Figure 2:
the sample is additionally judged against every prefix of the stream (at a
configurable set of checkpoints; evaluating literally every prefix is
supported but quadratic).

Both runners support three *knowledge models* for the ablation experiments:

* ``"full"`` — the paper's model: the adversary sees the entire sample and the
  per-round update;
* ``"updates"`` — the adversary only learns, per round, whether its element
  was accepted and what was evicted (sufficient for the Figure-3 attack);
* ``"oblivious"`` — the adversary learns nothing (the static setting).

Chunked execution
-----------------
The game is sequential only at the adversary's *decision points*; between
them the stream is fixed and the sampler can consume it in bulk.  Both
runners therefore segment the stream: each iteration asks the adversary (via
:meth:`~repro.adversary.base.Adversary.next_elements`) for up to
``chunk_size`` elements it commits to without further feedback, feeds the
segment through the sampler's vectorised ``extend`` kernel, and records the
outcome as a columnar :class:`~repro.samplers.base.UpdateBatch`.  Adaptive
adversaries with a declared decision cadence
(:class:`~repro.adversary.base.CadencedAdversary`) emit one block per
decision point, so segments align with the points where the adversary
genuinely observes the sampler; the runner also skips materialising the
sample view for adversaries whose ``decision_needs`` exclude it.  Fully
adaptive adversaries (which never override ``next_elements``) and
``chunk_size=1`` take the per-element path, which reproduces the historical
loop exactly — the runner emits a one-time informational warning when an
adaptive adversary forces that fallback under requested chunking.  In the
continuous game segments additionally break at checkpoint boundaries, so
the sample is judged at exactly the same rounds as the per-element game.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence
from typing import Any, Literal

from ..core.approximation import geometric_checkpoints
from ..exceptions import ConfigurationError, TrackerUnsupportedError
from ..samplers.base import SampleUpdate, StreamSampler, UpdateBatch
from ..setsystems.base import SetSystem
from .base import Adversary

KnowledgeModel = Literal["full", "updates", "oblivious"]

#: Default segment length for chunked execution.  Large enough that numpy
#: kernel launch overhead is negligible, small enough that the sampler state
#: the adversary observes between segments stays reasonably fresh for
#: coarse-grained semi-adaptive strategies.
DEFAULT_CHUNK_SIZE = 4096


@dataclass
class GameResult:
    """Outcome of one play of the adaptive game.

    Attributes
    ----------
    stream:
        The full adversarially chosen stream ``X``.
    sample:
        The sampler's final sample ``S`` (a tuple snapshot).
    error:
        ``sup_R |d_R(X) - d_R(S)|`` when a set system was supplied (``None``
        otherwise); an empty final sample counts as error 1.
    witness:
        A range achieving the error, when available.
    epsilon:
        The target epsilon the game was judged against (``None`` if not set).
    succeeded:
        ``True`` when the final sample is an epsilon-approximation (the
        paper's game outputs 1), ``None`` when no epsilon was supplied.
    updates:
        The per-round update record: a list of :class:`SampleUpdate` on the
        per-element path, a columnar
        :class:`~repro.samplers.base.UpdateBatch` (which behaves as a lazy
        sequence of :class:`SampleUpdate`) on the chunked path.
    sampler_name / adversary_name:
        Names for reporting.
    """

    stream: list[Any]
    sample: tuple[Any, ...]
    error: float | None
    witness: Any
    epsilon: float | None
    succeeded: bool | None
    updates: Sequence[SampleUpdate] = field(repr=False, default_factory=list)
    sampler_name: str = ""
    adversary_name: str = ""

    @property
    def stream_length(self) -> int:
        return len(self.stream)

    @property
    def sample_size(self) -> int:
        return len(self.sample)

    @property
    def total_accepted(self) -> int:
        """Total number of rounds whose element entered the sample (even if later evicted)."""
        if isinstance(self.updates, UpdateBatch):
            return self.updates.accepted_count
        return sum(1 for update in self.updates if update.accepted)


@dataclass
class ContinuousGameResult(GameResult):
    """Outcome of one play of the continuous adaptive game.

    In addition to the final-sample verdict it records, per checkpoint, the
    worst-range error of the sample against the stream prefix at that point.
    """

    checkpoints: list[int] = field(default_factory=list)
    checkpoint_errors: list[float] = field(default_factory=list)

    @property
    def max_checkpoint_error(self) -> float:
        return max(self.checkpoint_errors) if self.checkpoint_errors else 0.0

    @property
    def first_violation(self) -> int | None:
        """The first checkpoint at which the sample was not an epsilon-approximation."""
        if self.epsilon is None:
            return None
        for checkpoint, error in zip(self.checkpoints, self.checkpoint_errors):
            if error > self.epsilon:
                return checkpoint
        return None

    @property
    def continuously_succeeded(self) -> bool | None:
        """The paper's ContinuousAdaptiveGame output: 1 iff no checkpoint is violated."""
        if self.epsilon is None:
            return None
        return self.first_violation is None


def _observed_sample(
    sampler: StreamSampler, knowledge: KnowledgeModel, adversary: Adversary
) -> Sequence[Any] | None:
    """The sample view the adversary gets at this decision point.

    Materialised only under the full-knowledge model *and* when the
    adversary will actually read the view for this request
    (``will_observe_sample``, the per-request refinement of
    ``uses_observed_sample``) — observing the sample is an expensive fresh
    merge for sharded deployments, so update-driven attacks and cadenced
    adversaries mid-way through a committed block skip it.  Skipping is
    behaviourally invisible to the adversary (one that won't read the view
    makes identical decisions either way), and it keeps the *read pattern*
    — which exposure-driven defenses like sketch switching count —
    identical between the per-element and chunked execution paths, where
    segment requests already consult ``will_observe_sample``.
    """
    if knowledge == "full" and adversary.will_observe_sample():
        return sampler.sample
    return None


#: Adversaries already reported by :func:`_warn_per_element_fallback`, keyed
#: by (class name, instance name): one informational warning per distinct
#: adversary identity per process.  Keying by class alone hid the warning
#: for differently-named instances of a shared base (e.g. two campaign
#: members built from one family); keying by name alone would re-warn for
#: every instance of an unnamed ad-hoc subclass.
_FALLBACK_WARNED: set[tuple[str, str]] = set()


def reset_fallback_warnings() -> None:
    """Clear the per-process fallback-warning latch.

    The latch makes :func:`_warn_per_element_fallback` fire once per
    adversary identity per process; tests that assert on the warning (or
    that must not inherit another test's latched state) call this to get a
    fresh slate.  The test suite resets it automatically around every test.
    """
    _FALLBACK_WARNED.clear()


def _warn_per_element_fallback(adversary: Adversary) -> None:
    """One-time note that an adaptive adversary forced the per-element path.

    Adaptive adversaries without a declared decision cadence silently cost
    orders of magnitude more per round than cadence-declaring or oblivious
    ones, which makes sweep grid cells mysteriously slow.  Emitted only when
    chunked execution was requested (an explicit ``chunk_size=1`` is a
    deliberate choice and stays silent)."""
    key = (type(adversary).__name__, str(getattr(adversary, "name", "")))
    if key in _FALLBACK_WARNED:
        return
    _FALLBACK_WARNED.add(key)
    warnings.warn(
        f"adversary {adversary.name!r} ({key[0]}) declares no decision cadence "
        "(it never overrides next_elements / CadencedAdversary), so the game "
        "runs on the per-element path. Declare a cadence for chunked "
        "execution, or pass chunk_size=1 to make the per-element path explicit.",
        RuntimeWarning,
        stacklevel=4,
    )


def _is_normalized_checkpoints(checkpoints: Sequence[int]) -> bool:
    """Cheap check for a strictly increasing tuple of ints (no allocation)."""
    previous = 0
    for checkpoint in checkpoints:
        if not isinstance(checkpoint, int) or checkpoint <= previous:
            return False
        previous = checkpoint
    return True


def normalize_checkpoints(
    checkpoints: Iterable[int] | None,
    stream_length: int,
    *,
    epsilon: float | None = None,
    checkpoint_ratio: float | None = None,
) -> tuple[int, ...]:
    """Resolve a checkpoint schedule to a validated, strictly increasing tuple.

    ``None`` yields the geometric schedule used in the proof of Theorem 1.4
    with ratio ``epsilon / 4`` (or ``checkpoint_ratio``).  An already
    normalised tuple passes through untouched, so repeated callers — notably
    :class:`~repro.adversary.batch.BatchGameRunner`, which plays the same
    schedule for every trial of a grid — normalise once and reuse instead of
    re-deriving ``sorted(set(...))`` per game.
    """
    if checkpoints is None:
        ratio = checkpoint_ratio
        if ratio is None:
            ratio = (epsilon / 4.0) if epsilon is not None else 0.1
        checkpoints = geometric_checkpoints(1, stream_length, ratio)
    if isinstance(checkpoints, tuple) and _is_normalized_checkpoints(checkpoints):
        normalized = checkpoints
    else:
        normalized = tuple(sorted(set(int(c) for c in checkpoints)))
    if normalized and not (1 <= normalized[0] and normalized[-1] <= stream_length):
        offender = normalized[0] if normalized[0] < 1 else normalized[-1]
        raise ConfigurationError(
            f"checkpoint {offender} outside the stream range [1, {stream_length}]"
        )
    return normalized


def _resolve_chunk_size(chunk_size: int | None) -> int:
    if chunk_size is None:
        return DEFAULT_CHUNK_SIZE
    chunk = int(chunk_size)
    if chunk < 1:
        raise ConfigurationError(f"chunk size must be >= 1, got {chunk_size}")
    return chunk


def _is_segmented(adversary: Adversary) -> bool:
    """Whether the adversary declares coarser-than-per-round decision points."""
    return type(adversary).next_elements is not Adversary.next_elements


def _request_segment(
    adversary: Adversary,
    sampler: StreamSampler,
    knowledge: KnowledgeModel,
    round_index: int,
    budget: int,
) -> list[Any]:
    # will_observe_sample refines the static declaration per request: a
    # cadenced adversary mid-way through a committed block declines the view
    # it is guaranteed to ignore, so chunk sizes below the decision period
    # don't re-materialise the sample (a fresh merge on sharded deployments)
    # for every segment of one block.
    observed = (
        sampler.sample
        if knowledge == "full" and adversary.will_observe_sample()
        else None
    )
    segment = adversary.next_elements(round_index + 1, budget, observed)
    if not segment:
        raise ConfigurationError(
            f"{adversary.name!r} returned an empty segment at round {round_index + 1}"
        )
    if len(segment) > budget:
        raise ConfigurationError(
            f"{adversary.name!r} returned {len(segment)} elements for a segment "
            f"budget of {budget} at round {round_index + 1}"
        )
    return segment


class _UpdateLog:
    """Accumulates per-segment update records into one columnar batch.

    Singleton segments (adaptive decision points) append plain
    :class:`SampleUpdate` records; multi-element segments append whole
    :class:`UpdateBatch` columns.  ``collect`` stitches them into a single
    :class:`UpdateBatch` so downstream consumers see one sequence.
    """

    def __init__(self) -> None:
        self._batches: list[UpdateBatch] = []
        self._pending: list[SampleUpdate] = []

    def append_update(self, update: SampleUpdate) -> None:
        self._pending.append(update)

    def append_batch(self, batch: UpdateBatch) -> None:
        if self._pending:
            self._batches.append(UpdateBatch.from_updates(self._pending))
            self._pending = []
        self._batches.append(batch)

    def collect(self) -> UpdateBatch:
        if self._pending:
            self._batches.append(UpdateBatch.from_updates(self._pending))
            self._pending = []
        return UpdateBatch.concat(self._batches)


def _play_segment(
    sampler: StreamSampler,
    adversary: Adversary,
    knowledge: KnowledgeModel,
    keep_updates: bool,
    stream: list[Any],
    log: "_UpdateLog",
    round_index: int,
    budget: int,
) -> list[Any]:
    """Request one committed segment, ingest it, log and forward updates.

    The shared inner step of both chunked runners; returns the segment so
    the continuous runner can feed its tracker.  Singleton segments (an
    adaptive decision point) go through ``process`` directly — cheaper than
    a one-element ``extend`` — and multi-element segments through the
    sampler's vectorised kernel, with the update record materialised only
    when the caller keeps it or the adversary listens to this segment.
    """
    segment = _request_segment(adversary, sampler, knowledge, round_index, budget)
    feed = knowledge != "oblivious" and adversary.observes_updates(
        round_index + 1, round_index + len(segment)
    )
    if len(segment) == 1:
        update = sampler.process(segment[0])
        stream.append(segment[0])
        if keep_updates:
            log.append_update(update)
        if feed:
            adversary.observe_update(update)
    else:
        batch = sampler.extend(segment, updates=keep_updates or feed)
        stream.extend(segment)
        if keep_updates:
            log.append_batch(batch)
        if feed:
            # One columnar hand-off per segment; batch-aware adversaries
            # digest the columns directly, everyone else gets the lazy
            # per-round views from the default loop.
            adversary.observe_update_batch(batch)
    return segment


def run_adaptive_game(
    sampler: StreamSampler,
    adversary: Adversary,
    stream_length: int,
    set_system: SetSystem | None = None,
    epsilon: float | None = None,
    knowledge: KnowledgeModel = "full",
    keep_updates: bool = True,
    chunk_size: int | None = None,
) -> GameResult:
    """Play the AdaptiveGame of Figure 1 and judge the final sample.

    Parameters
    ----------
    sampler / adversary:
        Freshly constructed (or reset) players.
    stream_length:
        Number of rounds ``n``.
    set_system:
        If supplied, the final sample's worst-range error against the stream
        is computed with respect to it.
    epsilon:
        If supplied together with ``set_system``, the result's ``succeeded``
        flag reports whether the sample is an epsilon-approximation.
    knowledge:
        How much of the sampler's state the adversary observes (see module
        docstring).
    keep_updates:
        Set to ``False`` to drop the per-round update log (saves memory on
        very long streams).
    chunk_size:
        Maximum segment length for chunked execution (default
        :data:`DEFAULT_CHUNK_SIZE`).  ``1`` forces the historical per-element
        path; adversaries that never declare coarse decision points take
        that path regardless.
    """
    if stream_length < 1:
        raise ConfigurationError(f"stream length must be >= 1, got {stream_length}")
    if epsilon is not None and set_system is None:
        raise ConfigurationError("judging against epsilon requires a set system")
    chunk = _resolve_chunk_size(chunk_size)

    stream: list[Any] = []
    updates: Sequence[SampleUpdate]
    if chunk <= 1 or not _is_segmented(adversary):
        if chunk > 1:
            _warn_per_element_fallback(adversary)
        # Per-element path: a decision point every round.
        update_list: list[SampleUpdate] = []
        for round_index in range(1, stream_length + 1):
            element = adversary.next_element(
                round_index, _observed_sample(sampler, knowledge, adversary)
            )
            update = sampler.process(element)
            stream.append(element)
            if keep_updates:
                update_list.append(update)
            if knowledge != "oblivious":
                adversary.observe_update(update)
        updates = update_list
    else:
        log = _UpdateLog()
        round_index = 0
        while round_index < stream_length:
            budget = min(chunk, stream_length - round_index)
            segment = _play_segment(
                sampler, adversary, knowledge, keep_updates, stream, log, round_index, budget
            )
            round_index += len(segment)
        updates = log.collect() if keep_updates else []

    sample = sampler.snapshot()
    error: float | None = None
    witness: Any = None
    succeeded: bool | None = None
    if set_system is not None:
        if len(sample) == 0:
            error, witness = 1.0, None
        else:
            report = set_system.max_discrepancy(stream, sample)
            error, witness = report.error, report.witness
        if epsilon is not None:
            succeeded = error <= epsilon
    return GameResult(
        stream=stream,
        sample=sample,
        error=error,
        witness=witness,
        epsilon=epsilon,
        succeeded=succeeded,
        updates=updates,
        sampler_name=sampler.name,
        adversary_name=adversary.name,
    )


def run_continuous_game(
    sampler: StreamSampler,
    adversary: Adversary,
    stream_length: int,
    set_system: SetSystem,
    epsilon: float | None = None,
    checkpoints: Iterable[int] | None = None,
    checkpoint_ratio: float | None = None,
    knowledge: KnowledgeModel = "full",
    incremental: bool = True,
    keep_updates: bool = True,
    chunk_size: int | None = None,
) -> ContinuousGameResult:
    """Play the ContinuousAdaptiveGame of Figure 2.

    Checkpoints default to the geometric schedule used in the proof of
    Theorem 1.4 with ratio ``epsilon / 4`` (or ``checkpoint_ratio``); pass an
    explicit iterable (e.g. ``range(1, n + 1)``) to check every prefix.
    Pre-normalised tuples (see :func:`normalize_checkpoints`) are reused
    as-is, so grid sweeps don't re-derive the schedule per trial.
    Unlike the game in the paper, the runner does not halt at the first
    violation — it records the error at every checkpoint so experiments can
    plot complete trajectories — but :attr:`ContinuousGameResult.first_violation`
    recovers the halting behaviour.

    When ``incremental`` is true (the default) and the set system provides an
    incremental tracker (:meth:`~repro.setsystems.base.SetSystem.make_tracker`),
    checkpoint errors are answered from the tracker's online state instead of
    re-sorting the stream prefix at every checkpoint; the reported errors are
    identical to the batch recomputation.  Systems without a tracker — or
    streams whose elements a tracker cannot index, such as the huge-integer
    universes of the Figure-3 attack — silently use the batch path.

    Segments of the chunked path (see module docstring; ``chunk_size=1``
    forces the per-element game) additionally break at checkpoint
    boundaries, so every checkpoint observes exactly the same sampler state
    as the per-element game.
    """
    if stream_length < 1:
        raise ConfigurationError(f"stream length must be >= 1, got {stream_length}")
    checkpoint_list = normalize_checkpoints(
        checkpoints, stream_length, epsilon=epsilon, checkpoint_ratio=checkpoint_ratio
    )
    chunk = _resolve_chunk_size(chunk_size)

    tracker = set_system.make_tracker(stream_length) if incremental else None

    stream: list[Any] = []

    def _judge(sample_now: tuple[Any, ...]) -> tuple[float, Any]:
        """Worst-range error (and witness) of a snapshot against the stream.

        Prefers the live tracker; a snapshot the tracker cannot index
        deactivates it, and this (and every later) judgement recomputes from
        the stream the runner keeps anyway.
        """
        nonlocal tracker
        if len(sample_now) == 0:
            return 1.0, None
        if tracker is not None:
            try:
                report = tracker.checkpoint(sample_now)
                return report.error, report.witness
            except TrackerUnsupportedError:
                tracker = None
        report = set_system.max_discrepancy(stream, sample_now)
        return report.error, report.witness

    def _track(elements: Sequence[Any]) -> None:
        nonlocal tracker
        if tracker is None:
            return
        try:
            if len(elements) == 1:
                tracker.add(elements[0])
            else:
                tracker.add_batch(elements)
        except TrackerUnsupportedError:
            tracker = None

    errors: list[float] = []
    next_checkpoint = 0
    updates: Sequence[SampleUpdate]
    if chunk <= 1 or not _is_segmented(adversary):
        if chunk > 1:
            _warn_per_element_fallback(adversary)
        update_list: list[SampleUpdate] = []
        for round_index in range(1, stream_length + 1):
            element = adversary.next_element(
                round_index, _observed_sample(sampler, knowledge, adversary)
            )
            update = sampler.process(element)
            stream.append(element)
            if keep_updates:
                update_list.append(update)
            _track((element,))
            if knowledge != "oblivious":
                adversary.observe_update(update)
            if (
                next_checkpoint < len(checkpoint_list)
                and round_index == checkpoint_list[next_checkpoint]
            ):
                errors.append(_judge(sampler.snapshot())[0])
                next_checkpoint += 1
        updates = update_list
    else:
        log = _UpdateLog()
        round_index = 0
        while round_index < stream_length:
            budget = min(chunk, stream_length - round_index)
            if next_checkpoint < len(checkpoint_list):
                budget = min(budget, checkpoint_list[next_checkpoint] - round_index)
            segment = _play_segment(
                sampler, adversary, knowledge, keep_updates, stream, log, round_index, budget
            )
            _track(segment)
            round_index += len(segment)
            if (
                next_checkpoint < len(checkpoint_list)
                and round_index == checkpoint_list[next_checkpoint]
            ):
                errors.append(_judge(sampler.snapshot())[0])
                next_checkpoint += 1
        updates = log.collect() if keep_updates else []

    sample = sampler.snapshot()
    final_error, witness = _judge(sample)
    succeeded = None if epsilon is None else final_error <= epsilon
    return ContinuousGameResult(
        stream=stream,
        sample=sample,
        error=final_error,
        witness=witness,
        epsilon=epsilon,
        succeeded=succeeded,
        updates=updates,
        sampler_name=sampler.name,
        adversary_name=adversary.name,
        checkpoints=list(checkpoint_list),
        checkpoint_errors=errors,
    )
