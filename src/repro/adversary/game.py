"""Game runners realising Figures 1 and 2 of the paper.

:func:`run_adaptive_game` plays the ``AdaptiveGame`` of Figure 1: the
adversary submits ``n`` elements one by one, observing the sampler's state
after every round, and the final sample is judged against the full stream.

:func:`run_continuous_game` plays the ``ContinuousAdaptiveGame`` of Figure 2:
the sample is additionally judged against every prefix of the stream (at a
configurable set of checkpoints; evaluating literally every prefix is
supported but quadratic).

Both runners support three *knowledge models* for the ablation experiments:

* ``"full"`` — the paper's model: the adversary sees the entire sample and the
  per-round update;
* ``"updates"`` — the adversary only learns, per round, whether its element
  was accepted and what was evicted (sufficient for the Figure-3 attack);
* ``"oblivious"`` — the adversary learns nothing (the static setting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Literal, Optional, Sequence

from ..core.approximation import geometric_checkpoints
from ..exceptions import ConfigurationError, TrackerUnsupportedError
from ..samplers.base import SampleUpdate, StreamSampler
from ..setsystems.base import SetSystem
from .base import Adversary

KnowledgeModel = Literal["full", "updates", "oblivious"]


@dataclass
class GameResult:
    """Outcome of one play of the adaptive game.

    Attributes
    ----------
    stream:
        The full adversarially chosen stream ``X``.
    sample:
        The sampler's final sample ``S`` (a tuple snapshot).
    error:
        ``sup_R |d_R(X) - d_R(S)|`` when a set system was supplied (``None``
        otherwise); an empty final sample counts as error 1.
    witness:
        A range achieving the error, when available.
    epsilon:
        The target epsilon the game was judged against (``None`` if not set).
    succeeded:
        ``True`` when the final sample is an epsilon-approximation (the
        paper's game outputs 1), ``None`` when no epsilon was supplied.
    updates:
        The per-round :class:`SampleUpdate` records.
    sampler_name / adversary_name:
        Names for reporting.
    """

    stream: list[Any]
    sample: tuple[Any, ...]
    error: Optional[float]
    witness: Any
    epsilon: Optional[float]
    succeeded: Optional[bool]
    updates: list[SampleUpdate] = field(repr=False, default_factory=list)
    sampler_name: str = ""
    adversary_name: str = ""

    @property
    def stream_length(self) -> int:
        return len(self.stream)

    @property
    def sample_size(self) -> int:
        return len(self.sample)

    @property
    def total_accepted(self) -> int:
        """Total number of rounds whose element entered the sample (even if later evicted)."""
        return sum(1 for update in self.updates if update.accepted)


@dataclass
class ContinuousGameResult(GameResult):
    """Outcome of one play of the continuous adaptive game.

    In addition to the final-sample verdict it records, per checkpoint, the
    worst-range error of the sample against the stream prefix at that point.
    """

    checkpoints: list[int] = field(default_factory=list)
    checkpoint_errors: list[float] = field(default_factory=list)

    @property
    def max_checkpoint_error(self) -> float:
        return max(self.checkpoint_errors) if self.checkpoint_errors else 0.0

    @property
    def first_violation(self) -> Optional[int]:
        """The first checkpoint at which the sample was not an epsilon-approximation."""
        if self.epsilon is None:
            return None
        for checkpoint, error in zip(self.checkpoints, self.checkpoint_errors):
            if error > self.epsilon:
                return checkpoint
        return None

    @property
    def continuously_succeeded(self) -> Optional[bool]:
        """The paper's ContinuousAdaptiveGame output: 1 iff no checkpoint is violated."""
        if self.epsilon is None:
            return None
        return self.first_violation is None


def _observed_sample(
    sampler: StreamSampler, knowledge: KnowledgeModel
) -> Optional[Sequence[Any]]:
    if knowledge == "full":
        return sampler.sample
    return None


def run_adaptive_game(
    sampler: StreamSampler,
    adversary: Adversary,
    stream_length: int,
    set_system: Optional[SetSystem] = None,
    epsilon: Optional[float] = None,
    knowledge: KnowledgeModel = "full",
    keep_updates: bool = True,
) -> GameResult:
    """Play the AdaptiveGame of Figure 1 and judge the final sample.

    Parameters
    ----------
    sampler / adversary:
        Freshly constructed (or reset) players.
    stream_length:
        Number of rounds ``n``.
    set_system:
        If supplied, the final sample's worst-range error against the stream
        is computed with respect to it.
    epsilon:
        If supplied together with ``set_system``, the result's ``succeeded``
        flag reports whether the sample is an epsilon-approximation.
    knowledge:
        How much of the sampler's state the adversary observes (see module
        docstring).
    keep_updates:
        Set to ``False`` to drop the per-round update log (saves memory on
        very long streams).
    """
    if stream_length < 1:
        raise ConfigurationError(f"stream length must be >= 1, got {stream_length}")
    if epsilon is not None and set_system is None:
        raise ConfigurationError("judging against epsilon requires a set system")

    stream: list[Any] = []
    updates: list[SampleUpdate] = []
    for round_index in range(1, stream_length + 1):
        element = adversary.next_element(
            round_index, _observed_sample(sampler, knowledge)
        )
        update = sampler.process(element)
        stream.append(element)
        if keep_updates:
            updates.append(update)
        if knowledge != "oblivious":
            adversary.observe_update(update)

    sample = sampler.snapshot()
    error: Optional[float] = None
    witness: Any = None
    succeeded: Optional[bool] = None
    if set_system is not None:
        if len(sample) == 0:
            error, witness = 1.0, None
        else:
            report = set_system.max_discrepancy(stream, sample)
            error, witness = report.error, report.witness
        if epsilon is not None:
            succeeded = error <= epsilon
    return GameResult(
        stream=stream,
        sample=sample,
        error=error,
        witness=witness,
        epsilon=epsilon,
        succeeded=succeeded,
        updates=updates,
        sampler_name=sampler.name,
        adversary_name=adversary.name,
    )


def run_continuous_game(
    sampler: StreamSampler,
    adversary: Adversary,
    stream_length: int,
    set_system: SetSystem,
    epsilon: Optional[float] = None,
    checkpoints: Optional[Iterable[int]] = None,
    checkpoint_ratio: Optional[float] = None,
    knowledge: KnowledgeModel = "full",
    incremental: bool = True,
) -> ContinuousGameResult:
    """Play the ContinuousAdaptiveGame of Figure 2.

    Checkpoints default to the geometric schedule used in the proof of
    Theorem 1.4 with ratio ``epsilon / 4`` (or ``checkpoint_ratio``); pass an
    explicit iterable (e.g. ``range(1, n + 1)``) to check every prefix.
    Unlike the game in the paper, the runner does not halt at the first
    violation — it records the error at every checkpoint so experiments can
    plot complete trajectories — but :attr:`ContinuousGameResult.first_violation`
    recovers the halting behaviour.

    When ``incremental`` is true (the default) and the set system provides an
    incremental tracker (:meth:`~repro.setsystems.base.SetSystem.make_tracker`),
    checkpoint errors are answered from the tracker's online state instead of
    re-sorting the stream prefix at every checkpoint; the reported errors are
    identical to the batch recomputation.  Systems without a tracker — or
    streams whose elements a tracker cannot index, such as the huge-integer
    universes of the Figure-3 attack — silently use the batch path.
    """
    if stream_length < 1:
        raise ConfigurationError(f"stream length must be >= 1, got {stream_length}")
    if checkpoints is None:
        ratio = checkpoint_ratio
        if ratio is None:
            ratio = (epsilon / 4.0) if epsilon is not None else 0.1
        checkpoints = geometric_checkpoints(1, stream_length, ratio)
    checkpoint_set = sorted(set(int(c) for c in checkpoints))
    for checkpoint in checkpoint_set:
        if not 1 <= checkpoint <= stream_length:
            raise ConfigurationError(
                f"checkpoint {checkpoint} outside the stream range [1, {stream_length}]"
            )

    tracker = set_system.make_tracker(stream_length) if incremental else None

    def _judge(sample_now: tuple[Any, ...]) -> tuple[float, Any]:
        """Worst-range error (and witness) of a snapshot against the stream.

        Prefers the live tracker; a snapshot the tracker cannot index
        deactivates it, and this (and every later) judgement recomputes from
        the stream the runner keeps anyway.
        """
        nonlocal tracker
        if len(sample_now) == 0:
            return 1.0, None
        if tracker is not None:
            try:
                report = tracker.checkpoint(sample_now)
                return report.error, report.witness
            except TrackerUnsupportedError:
                tracker = None
        report = set_system.max_discrepancy(stream, sample_now)
        return report.error, report.witness

    stream: list[Any] = []
    updates: list[SampleUpdate] = []
    errors: list[float] = []
    next_checkpoint = 0
    for round_index in range(1, stream_length + 1):
        element = adversary.next_element(
            round_index, _observed_sample(sampler, knowledge)
        )
        update = sampler.process(element)
        stream.append(element)
        updates.append(update)
        if tracker is not None:
            try:
                tracker.add(element)
            except TrackerUnsupportedError:
                tracker = None
        if knowledge != "oblivious":
            adversary.observe_update(update)
        if (
            next_checkpoint < len(checkpoint_set)
            and round_index == checkpoint_set[next_checkpoint]
        ):
            errors.append(_judge(sampler.snapshot())[0])
            next_checkpoint += 1

    sample = sampler.snapshot()
    final_error, witness = _judge(sample)
    succeeded = None if epsilon is None else final_error <= epsilon
    return ContinuousGameResult(
        stream=stream,
        sample=sample,
        error=final_error,
        witness=witness,
        epsilon=epsilon,
        succeeded=succeeded,
        updates=updates,
        sampler_name=sampler.name,
        adversary_name=adversary.name,
        checkpoints=checkpoint_set,
        checkpoint_errors=errors,
    )
