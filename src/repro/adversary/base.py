"""Adversary interface for the adaptive sampling game (Section 2 of the paper).

An adversary is a (possibly randomised) strategy that, given everything it has
observed so far — the elements it already submitted and the sampler's current
state — chooses the next stream element.  The game runner in
:mod:`repro.adversary.game` drives the interaction and controls exactly how
much of the sampler's state the adversary is allowed to see (the paper's model
is "full state"; restricted views are available for the knowledge-model
ablation).

Decision points and segmentation
--------------------------------
The game is only *inherently* sequential at the adversary's decision points:
between two points where the adversary actually reacts to feedback, the
stream is fixed and can be consumed in bulk by the sampler's vectorised
``extend`` kernels.  :meth:`Adversary.next_elements` is how an adversary
declares its decision granularity: the default commits to a single element
(fully adaptive — a decision point every round), while
:class:`ObliviousAdversary` commits to arbitrarily long segments (it never
looks at feedback at all).  Adaptive strategies with coarser decision points
(e.g. a budgeted attack that turns benign after round ``r``) override it to
return multi-element segments exactly where their strategy allows.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional, Sequence

from ..samplers.base import SampleUpdate


class Adversary(ABC):
    """A strategy for choosing the next stream element adaptively.

    The game runner calls :meth:`next_element` at the start of each round and
    :meth:`observe_update` right after the sampler has processed the element,
    giving the adversary the per-round outcome (accepted / evicted).  The full
    current sample is additionally passed to :meth:`next_element` under the
    default "full knowledge" model.
    """

    #: Human-readable name used in experiment tables.
    name: str = "adversary"

    @abstractmethod
    def next_element(
        self, round_index: int, observed_sample: Optional[Sequence[Any]]
    ) -> Any:
        """Return the element to submit in round ``round_index`` (1-based).

        ``observed_sample`` is the sampler's current sample ``S_{i-1}`` under
        the full-knowledge model, or ``None`` when the game runner withholds
        it (oblivious / update-only knowledge models).
        """

    def next_elements(
        self, round_index: int, count: int, observed_sample: Optional[Sequence[Any]]
    ) -> list[Any]:
        """Return between 1 and ``count`` elements the adversary commits to.

        The chunked game runner offers the adversary a segment of up to
        ``count`` rounds starting at ``round_index``; the adversary returns
        as many elements as it is willing to submit *without observing any
        further feedback*.  The default returns a single element — a decision
        point every round, the paper's fully adaptive model.  Subclasses with
        coarser decision points override this; returning more than ``count``
        elements is a contract violation the runner rejects.
        """
        return [self.next_element(round_index, observed_sample)]

    def observe_update(self, update: SampleUpdate) -> None:
        """Receive the outcome of the round just played.

        The default implementation ignores it; adversaries that only need to
        know whether their element was stored (the Figure-3 attack) override
        this instead of scanning the whole sample.
        """

    def observes_updates(self, first_round: int, last_round: int) -> bool:
        """Whether this adversary wants per-round updates for a segment.

        The chunked game runner skips materialising and forwarding per-round
        :class:`SampleUpdate` views for segments where the adversary would
        ignore them anyway.  The default reports ``True`` iff the class
        overrides :meth:`observe_update`; adversaries that stop listening
        after a known round (budgeted attacks) refine this per segment.
        """
        return type(self).observe_update is not Adversary.observe_update

    def reset(self) -> None:
        """Forget all per-game state so the adversary can be reused."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ObliviousAdversary(Adversary):
    """Base class for adversaries that never look at the sampler's state.

    These realise the *static* setting of the paper: the stream they produce
    is independent of the sampler's coin flips, so the classical VC bounds
    apply to them.  Having no decision points at all, they commit to whole
    segments: :meth:`next_elements` fills any requested count.
    """

    name = "oblivious"

    def next_elements(
        self, round_index: int, count: int, observed_sample: Optional[Sequence[Any]]
    ) -> list[Any]:
        # Element choices cannot depend on feedback, so the whole segment is
        # generated up front; per-element generators are called in round
        # order, keeping seeded streams identical to the per-round game.
        return [self.next_element(round_index + offset, None) for offset in range(count)]

    def observe_update(self, update: SampleUpdate) -> None:  # pragma: no cover
        # Explicitly ignore all feedback.
        return

    def observes_updates(self, first_round: int, last_round: int) -> bool:
        return False
