"""Adversary interface for the adaptive sampling game (Section 2 of the paper).

An adversary is a (possibly randomised) strategy that, given everything it has
observed so far — the elements it already submitted and the sampler's current
state — chooses the next stream element.  The game runner in
:mod:`repro.adversary.game` drives the interaction and controls exactly how
much of the sampler's state the adversary is allowed to see (the paper's model
is "full state"; restricted views are available for the knowledge-model
ablation).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional, Sequence

from ..samplers.base import SampleUpdate


class Adversary(ABC):
    """A strategy for choosing the next stream element adaptively.

    The game runner calls :meth:`next_element` at the start of each round and
    :meth:`observe_update` right after the sampler has processed the element,
    giving the adversary the per-round outcome (accepted / evicted).  The full
    current sample is additionally passed to :meth:`next_element` under the
    default "full knowledge" model.
    """

    #: Human-readable name used in experiment tables.
    name: str = "adversary"

    @abstractmethod
    def next_element(
        self, round_index: int, observed_sample: Optional[Sequence[Any]]
    ) -> Any:
        """Return the element to submit in round ``round_index`` (1-based).

        ``observed_sample`` is the sampler's current sample ``S_{i-1}`` under
        the full-knowledge model, or ``None`` when the game runner withholds
        it (oblivious / update-only knowledge models).
        """

    def observe_update(self, update: SampleUpdate) -> None:
        """Receive the outcome of the round just played.

        The default implementation ignores it; adversaries that only need to
        know whether their element was stored (the Figure-3 attack) override
        this instead of scanning the whole sample.
        """

    def reset(self) -> None:
        """Forget all per-game state so the adversary can be reused."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ObliviousAdversary(Adversary):
    """Base class for adversaries that never look at the sampler's state.

    These realise the *static* setting of the paper: the stream they produce
    is independent of the sampler's coin flips, so the classical VC bounds
    apply to them.
    """

    name = "oblivious"

    def observe_update(self, update: SampleUpdate) -> None:  # pragma: no cover
        # Explicitly ignore all feedback.
        return
