"""Adversary interface for the adaptive sampling game (Section 2 of the paper).

An adversary is a (possibly randomised) strategy that, given everything it has
observed so far — the elements it already submitted and the sampler's current
state — chooses the next stream element.  The game runner in
:mod:`repro.adversary.game` drives the interaction and controls exactly how
much of the sampler's state the adversary is allowed to see (the paper's model
is "full state"; restricted views are available for the knowledge-model
ablation).

Decision points and segmentation
--------------------------------
The game is only *inherently* sequential at the adversary's decision points:
between two points where the adversary actually reacts to feedback, the
stream is fixed and can be consumed in bulk by the sampler's vectorised
``extend`` kernels.  :meth:`Adversary.next_elements` is how an adversary
declares its decision granularity: the default commits to a single element
(fully adaptive — a decision point every round), while
:class:`ObliviousAdversary` commits to arbitrarily long segments (it never
looks at feedback at all).  Adaptive strategies with coarser decision points
(e.g. a budgeted attack that turns benign after round ``r``) override it to
return multi-element segments exactly where their strategy allows.

Decision cadence
----------------
:class:`CadencedAdversary` is the middle ground the attack adversaries live
on: a genuinely adaptive strategy that declares *how often* it actually
needs to observe the sampler (``decision_period`` — one decision every ``p``
rounds) and *what* it needs at those decision points (``decision_needs`` —
per-round update records, the current sample, both, or nothing).  At each
decision point the strategy plans a whole block of elements
(:meth:`CadencedAdversary.plan_block`), commits to it without further
feedback, and digests the block's buffered update records in one call
(:meth:`CadencedAdversary.observe_block`) once the block has fully played
out.  ``decision_period=1`` reproduces the historical per-round attack
exactly — plan one element, observe one update — while larger periods model
a reaction-rate-limited attacker and let the game runners feed whole blocks
through the samplers' vectorised kernels.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from typing import Any, Literal, Protocol, runtime_checkable

from ..exceptions import ConfigurationError
from ..samplers.base import SampleUpdate

#: What a cadenced adversary needs at its decision points.
DecisionNeeds = Literal["updates", "sample", "both", "none"]


@runtime_checkable
class BlockCadence(Protocol):
    """Structural form of the decision-cadence contract.

    Anything that declares a ``decision_period`` must also implement both
    block hooks — planning a block and digesting its outcomes are two halves
    of one protocol, and implementing only one silently reintroduces
    chunking-dependent games (the PR 7 bug class; the ``analyze`` PRO002
    rule enforces the same pairing statically).  :class:`CadencedAdversary`
    is the canonical implementation; wrappers that forward the cadence
    (budgeted attacks, composed campaigns) satisfy the protocol structurally
    without inheriting from it.
    """

    decision_period: int

    def plan_block(
        self, round_index: int, count: int, observed_sample: Sequence[Any] | None
    ) -> list[Any]: ...

    def observe_block(self, updates: Sequence[SampleUpdate]) -> None: ...


class Adversary(ABC):
    """A strategy for choosing the next stream element adaptively.

    The game runner calls :meth:`next_element` at the start of each round and
    :meth:`observe_update` right after the sampler has processed the element,
    giving the adversary the per-round outcome (accepted / evicted).  The full
    current sample is additionally passed to :meth:`next_element` under the
    default "full knowledge" model.
    """

    #: Human-readable name used in experiment tables.
    name: str = "adversary"

    #: Whether :meth:`next_element` / :meth:`next_elements` actually read the
    #: ``observed_sample`` argument.  The game runners skip materialising the
    #: sampler's sample (an expensive merge for sharded deployments) for
    #: adversaries that declare they never look at it; the conservative
    #: default is ``True``.
    uses_observed_sample: bool = True

    def will_observe_sample(self) -> bool:
        """Whether the *next* ``next_elements`` call will read the sample view.

        A per-request refinement of :attr:`uses_observed_sample`: the
        chunked runner asks before materialising the sample for each segment
        request, so adversaries that know they are mid-way through a
        committed block (the cadence protocol) can decline the view they are
        guaranteed to ignore.  The default is the static declaration.
        """
        return self.uses_observed_sample

    @abstractmethod
    def next_element(
        self, round_index: int, observed_sample: Sequence[Any] | None
    ) -> Any:
        """Return the element to submit in round ``round_index`` (1-based).

        ``observed_sample`` is the sampler's current sample ``S_{i-1}`` under
        the full-knowledge model, or ``None`` when the game runner withholds
        it (oblivious / update-only knowledge models).
        """

    def next_elements(
        self, round_index: int, count: int, observed_sample: Sequence[Any] | None
    ) -> list[Any]:
        """Return between 1 and ``count`` elements the adversary commits to.

        The chunked game runner offers the adversary a segment of up to
        ``count`` rounds starting at ``round_index``; the adversary returns
        as many elements as it is willing to submit *without observing any
        further feedback*.  The default returns a single element — a decision
        point every round, the paper's fully adaptive model.  Subclasses with
        coarser decision points override this; returning more than ``count``
        elements is a contract violation the runner rejects.
        """
        return [self.next_element(round_index, observed_sample)]

    def observe_update(self, update: SampleUpdate) -> None:
        """Receive the outcome of the round just played.

        The default implementation ignores it; adversaries that only need to
        know whether their element was stored (the Figure-3 attack) override
        this instead of scanning the whole sample.
        """

    def observe_update_batch(self, updates: Sequence[SampleUpdate]) -> None:
        """Receive one segment's outcomes (usually a columnar ``UpdateBatch``).

        The chunked game runner forwards whole segments through this hook so
        batch-aware adversaries (the cadence protocol below) can digest the
        columnar record directly instead of paying one lazy
        :class:`SampleUpdate` view per round.  The default simply loops
        :meth:`observe_update`, so per-round adversaries are unaffected.
        """
        for update in updates:
            self.observe_update(update)

    def observes_updates(self, first_round: int, last_round: int) -> bool:
        """Whether this adversary wants per-round updates for a segment.

        The chunked game runner skips materialising and forwarding per-round
        :class:`SampleUpdate` views for segments where the adversary would
        ignore them anyway.  The default reports ``True`` iff the class
        overrides :meth:`observe_update`; adversaries that stop listening
        after a known round (budgeted attacks) refine this per segment.
        """
        return type(self).observe_update is not Adversary.observe_update

    def reset(self) -> None:
        """Forget all per-game state so the adversary can be reused."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ObliviousAdversary(Adversary):
    """Base class for adversaries that never look at the sampler's state.

    These realise the *static* setting of the paper: the stream they produce
    is independent of the sampler's coin flips, so the classical VC bounds
    apply to them.  Having no decision points at all, they commit to whole
    segments: :meth:`next_elements` fills any requested count.
    """

    name = "oblivious"

    def next_elements(
        self, round_index: int, count: int, observed_sample: Sequence[Any] | None
    ) -> list[Any]:
        # Element choices cannot depend on feedback, so the whole segment is
        # generated up front; per-element generators are called in round
        # order, keeping seeded streams identical to the per-round game.
        return [self.next_element(round_index + offset, None) for offset in range(count)]

    def observe_update(self, update: SampleUpdate) -> None:  # pragma: no cover
        # Explicitly ignore all feedback.
        return

    def observes_updates(self, first_round: int, last_round: int) -> bool:
        return False


class CadencedAdversary(Adversary):
    """Adaptive adversary with a declared decision cadence.

    Subclasses implement the *strategy* as two block-level hooks and inherit
    the serving machinery that keeps both game paths (per-element and
    chunked) bit-identical:

    * :meth:`plan_block` — called at each decision point with the current
      observed state; returns the next ``count`` elements the strategy
      commits to without further feedback.  This is where the
      element-construction loop lives, and where subclasses vectorise.
    * :meth:`observe_block` — called once per fully played block with the
      block's buffered :class:`SampleUpdate` records (in round order);
      this is where the strategy's state moves.

    ``decision_period=1`` (the default everywhere) is the paper's fully
    adaptive model: every block is a single element, every update is
    digested immediately, and the realised games are exactly the historical
    per-round attacks.  Larger periods model a reaction-rate-limited
    attacker — the adversary's *decision sequence* then no longer depends on
    how the runner chunks the stream, so chunked and ``chunk_size=1`` games
    agree wherever the sampler's kernels are bit-identical.

    ``decision_needs`` declares what the strategy reads at decision points:

    * ``"updates"`` — per-round update records (via :meth:`observe_block`),
    * ``"sample"`` — the observed sample passed to :meth:`plan_block`,
    * ``"both"`` — both of the above,
    * ``"none"`` — nothing (the strategy is effectively oblivious).

    The game runners use it to skip materialising whichever feedback channel
    the adversary would ignore (update records, or the sample view — an
    expensive merge for sharded deployments).
    """

    #: What this adversary reads at its decision points (see class docs).
    decision_needs: DecisionNeeds = "updates"

    def __init__(self, decision_period: int = 1) -> None:
        period = int(decision_period)
        if period < 1:
            raise ConfigurationError(f"decision period must be >= 1, got {decision_period}")
        self.decision_period = period
        self._block_elements: list[Any] = []
        self._block_served = 0
        # Buffered feedback for the current block: single SampleUpdate
        # records and/or whole segment UpdateBatch pieces, flushed to
        # observe_block once the block has fully played out.
        self._pending_updates: list[Any] = []
        self._pending_count = 0

    # ------------------------------------------------------------------
    # Strategy hooks (subclasses implement these)
    # ------------------------------------------------------------------
    @abstractmethod
    def plan_block(
        self, round_index: int, count: int, observed_sample: Sequence[Any] | None
    ) -> list[Any]:
        """Plan the next decision block of up to ``count`` elements.

        Called exactly once per decision point, with ``round_index`` the
        1-based round of the block's first element and ``observed_sample``
        the sampler's current sample (``None`` when withheld by the
        knowledge model or skipped because ``decision_needs`` excludes it).
        """

    def observe_block(self, updates: Sequence[SampleUpdate]) -> None:
        """Digest the update records of one fully played block (in order).

        ``updates`` is a sequence of :class:`SampleUpdate`; when the block
        was fed by the chunked runner in one piece it is the columnar
        :class:`~repro.samplers.base.UpdateBatch` itself, so implementations
        can take vectorised fast paths over its ``accepted`` / ``elements``
        columns (see the attack adversaries).
        """

    # ------------------------------------------------------------------
    # Cadence protocol
    # ------------------------------------------------------------------
    @property
    def uses_observed_sample(self) -> bool:  # type: ignore[override]
        return self.decision_needs in ("sample", "both")

    def will_observe_sample(self) -> bool:
        if type(self).next_element is not CadencedAdversary.next_element:
            # Per-round fallback for subclasses overriding the per-round
            # hook: the override may read the view every round.
            return self.uses_observed_sample
        # Mid-block requests serve from the committed buffer and never read
        # the view; only a fresh decision point does.
        return self.uses_observed_sample and self._block_served >= len(self._block_elements)

    def observes_updates(self, first_round: int, last_round: int) -> bool:
        return self.decision_needs in ("updates", "both")

    def set_decision_period(self, decision_period: int) -> None:
        """Re-declare the cadence (validated; only safe between games)."""
        period = int(decision_period)
        if period < 1:
            raise ConfigurationError(f"decision period must be >= 1, got {decision_period}")
        if self._block_served < len(self._block_elements):
            raise ConfigurationError("cannot change the decision period mid-block")
        self.decision_period = period

    # ------------------------------------------------------------------
    # Serving machinery (shared by both game paths)
    # ------------------------------------------------------------------
    def _start_block(
        self, round_index: int, observed_sample: Sequence[Any] | None
    ) -> None:
        block = list(self.plan_block(round_index, self.decision_period, observed_sample))
        if not block:
            raise ConfigurationError(
                f"{self.name!r} planned an empty decision block at round {round_index}"
            )
        self._block_elements = block
        self._block_served = 0
        self._pending_updates = []
        self._pending_count = 0

    def next_element(
        self, round_index: int, observed_sample: Sequence[Any] | None
    ) -> Any:
        if self._block_served >= len(self._block_elements):
            self._start_block(round_index, observed_sample)
        element = self._block_elements[self._block_served]
        self._block_served += 1
        return element

    def next_elements(
        self, round_index: int, count: int, observed_sample: Sequence[Any] | None
    ) -> list[Any]:
        if type(self).next_element is not CadencedAdversary.next_element:
            # A subclass overrode the per-round hook; honour it (and the live
            # state view it may read) by reverting to per-round decisions —
            # the same protection the static adversaries' kernels apply.
            return Adversary.next_elements(self, round_index, count, observed_sample)
        if self._block_served >= len(self._block_elements):
            self._start_block(round_index, observed_sample)
        take = min(count, len(self._block_elements) - self._block_served)
        segment = self._block_elements[self._block_served : self._block_served + take]
        self._block_served += take
        return segment

    def observe_update(self, update: SampleUpdate) -> None:
        if not self._block_elements:
            # Direct use without a planned block (hand-driven loops, tests):
            # treat the update as its own completed block.
            self.observe_block([update])
            return
        self._pending_updates.append(update)
        self._pending_count += 1
        self._maybe_flush_block()

    def observe_update_batch(self, updates: Sequence[SampleUpdate]) -> None:
        if len(updates) == 0:
            return
        if not self._block_elements:
            self.observe_block(updates)
            return
        self._pending_updates.append(updates)
        self._pending_count += len(updates)
        self._maybe_flush_block()

    def _maybe_flush_block(self) -> None:
        if (
            self._block_served < len(self._block_elements)
            or self._pending_count < self._block_served
        ):
            return
        pieces, self._pending_updates = self._pending_updates, []
        self._pending_count = 0
        if len(pieces) == 1 and not isinstance(pieces[0], SampleUpdate):
            # The whole block arrived as one segment: hand the columnar
            # record straight to the strategy, no per-round views.
            self.observe_block(pieces[0])
            return
        flat: list[SampleUpdate] = []
        for piece in pieces:
            if isinstance(piece, SampleUpdate):
                flat.append(piece)
            else:
                flat.extend(piece)
        self.observe_block(flat)

    def reset(self) -> None:
        """Forget cadence state; subclasses must chain via ``super().reset()``."""
        self._block_elements = []
        self._block_served = 0
        self._pending_updates = []
        self._pending_count = 0


def block_outcome_for_element(
    updates: Sequence[SampleUpdate], element: Any
) -> bool | None:
    """Whether any of a block's records for ``element`` was accepted.

    Returns ``None`` when the block carries no record for ``element`` (the
    feedback was withheld or foreign), else the any-copy-accepted verdict.
    This is the shared digest of the split-point attacks (bisection and the
    Figure-3 threshold family): a block repeats one probe element, and the
    working range moves up iff *any* copy was stored.  Takes a columnar
    fast path over an :class:`~repro.samplers.base.UpdateBatch`'s raw
    ``elements``/``accepted`` columns (no per-round views), short-circuiting
    on the first stored copy.
    """
    # Imported lazily at call time would be circular-import-safe but slow;
    # duck-type on the columnar attributes instead.
    accepted_column = getattr(updates, "accepted", None)
    elements_column = getattr(updates, "elements", None)
    if accepted_column is not None and elements_column is not None:
        seen = False
        for offset, candidate in enumerate(elements_column):
            if candidate == element:
                seen = True
                if accepted_column[offset]:
                    return True
        return False if seen else None
    seen = False
    for update in updates:
        if update.element == element:
            seen = True
            if update.accepted:
                return True
    return False if seen else None


def apply_decision_period(adversary: Adversary, decision_period: int) -> bool:
    """Re-declare an adversary's decision cadence, if it supports one.

    Returns ``True`` when the adversary (or, for wrappers such as the
    scenario layer's ``BudgetedAdversary``, its inner attack) accepted the
    cadence, ``False`` when it declares none — oblivious adversaries have no
    decision points to space out, and fully adaptive strategies without a
    cadence protocol stay per-round.
    """
    setter = getattr(adversary, "set_decision_period", None)
    if setter is None:
        return False
    result = setter(int(decision_period))
    # Wrapper setters report whether the inner attack accepted; the
    # CadencedAdversary setter returns None, meaning "applied".
    return True if result is None else bool(result)
