"""Greedy density-gap adversary against an arbitrary target range.

The Figure-3 attack is tailored to prefix systems over huge universes.  For
moderate universes (where Theorem 1.2 says the samplers *are* robust) the
natural strongest simple opponent is a greedy adversary that fixes a target
range ``R`` and, in every round, submits whichever element — one inside ``R``
or one outside it — pushes the current density gap ``d_R(X) - d_R(S)``
further from zero.  Because it conditions on the realised sample it is a
genuinely adaptive strategy; because the gap process is a martingale
(Claims 4.2/4.3), Theorem 1.2 predicts it still cannot beat a properly sized
sample, which is exactly what experiments E1/E2 verify.

Decision cadence: the strategy reads only the observed sample (never
per-round update records — ``decision_needs = "sample"``), so with
``decision_period=p`` it re-reads the sample every ``p`` rounds, commits the
greedy direction for the whole block, and keeps its stream-density
bookkeeping in one vectorised step per block.  ``p=1`` is the historical
per-round greedy, decision for decision.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

from ..exceptions import ConfigurationError
from .base import CadencedAdversary


class GreedyDensityAdversary(CadencedAdversary):
    """One-step-greedy adversary maximising ``|d_R(stream) - d_R(sample)|``.

    Parameters
    ----------
    target_range:
        Any object supporting ``element in target_range`` (all
        :class:`repro.setsystems.base.Range` implementations qualify).
    in_range_element:
        A fixed element of the target range, or a zero-argument callable
        producing one (called each time an in-range element is submitted).
    out_range_element:
        Same, for elements outside the target range.
    widen:
        When ``True`` (default) the adversary pushes the gap away from zero in
        whichever direction it already points; when ``False`` it always tries
        to make the range *over-represented in the stream* (gap positive),
        which is the one-sided variant used by the heavy-hitters attack.
    decision_period:
        Rounds between decision points: the sample is observed (and the
        greedy direction re-decided) once per block.
    """

    name = "greedy-density"
    decision_needs = "sample"

    def __init__(
        self,
        target_range: Any,
        in_range_element: Any | Callable[[], Any],
        out_range_element: Any | Callable[[], Any],
        widen: bool = True,
        decision_period: int = 1,
    ) -> None:
        super().__init__(decision_period)
        self.target_range = target_range
        self._in_supplier = self._as_supplier(in_range_element, expected_inside=True)
        self._out_supplier = self._as_supplier(out_range_element, expected_inside=False)
        self.widen = widen
        self._stream_hits = 0
        self._stream_length = 0

    def _as_supplier(
        self, spec: Any | Callable[[], Any], expected_inside: bool
    ) -> Callable[[], Any]:
        if callable(spec):
            return spec
        inside = spec in self.target_range
        if inside != expected_inside:
            raise ConfigurationError(
                f"element {spec!r} is {'inside' if inside else 'outside'} the target "
                f"range but was supplied as the {'in' if expected_inside else 'out'}-range element"
            )
        return lambda: spec

    # ------------------------------------------------------------------
    # Cadence interface
    # ------------------------------------------------------------------
    def plan_block(
        self, round_index: int, count: int, observed_sample: Sequence[Any] | None
    ) -> list[Any]:
        gap = self._current_gap(observed_sample)
        if self.widen:
            send_in_range = gap >= 0.0
        else:
            # One-sided mode: keep pushing stream mass into the range as long
            # as the sample has not caught up.
            send_in_range = gap >= 0.0 or self._sample_density(observed_sample) == 0.0
        return self._submit_block(send_in_range, count)

    def _submit_block(self, send_in_range: bool, count: int) -> list[Any]:
        """Draw the block's elements and keep the stream-density bookkeeping."""
        supplier = self._in_supplier if send_in_range else self._out_supplier
        elements = [supplier() for _ in range(count)]
        self._stream_length += count
        self._stream_hits += sum(1 for element in elements if element in self.target_range)
        return elements

    def reset(self) -> None:
        super().reset()
        self._stream_hits = 0
        self._stream_length = 0

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _stream_density(self) -> float:
        if self._stream_length == 0:
            return 0.0
        return self._stream_hits / self._stream_length

    def _sample_density(self, observed_sample: Sequence[Any] | None) -> float:
        if not observed_sample:
            return 0.0
        hits = sum(1 for element in observed_sample if element in self.target_range)
        return hits / len(observed_sample)

    def _current_gap(self, observed_sample: Sequence[Any] | None) -> float:
        """The density gap ``d_R(X_{i-1}) - d_R(S_{i-1})`` the adversary reacts to.

        When the game runner withholds the sample (restricted knowledge
        models) the adversary falls back to assuming the sample is
        representative, i.e. a zero gap, which degrades it to an essentially
        static strategy — the behaviour the knowledge ablation measures.
        """
        if observed_sample is None:
            return 0.0
        return self._stream_density() - self._sample_density(observed_sample)


class MixingGreedyDensityAdversary(GreedyDensityAdversary):
    """Greedy density-gap adversary that alternates on an exactly zero gap.

    The plain greedy strategy is degenerate from a cold start: with the gap
    at exactly zero it keeps submitting in-range elements, the stream becomes
    100% in-range, the sample (a subsequence) matches it, and the gap stays
    pinned at zero forever.  This variant breaks exact ties by alternating
    in-range / out-of-range with the round parity, which seeds the balanced
    stream the greedy dynamic needs; as soon as sampling noise opens a real
    gap (which, for a size-``k`` sample, happens at the ``1/k``
    quantisation immediately), the strategy reverts to pure greedy widening.
    The scenario layer uses this as its default ``greedy_density`` attack.

    On a tie a cadenced block alternates within itself (each round keeps its
    own parity), so ``decision_period=1`` reproduces the historical per-round
    mixing exactly and longer blocks still seed a balanced stream.
    """

    name = "mixing-greedy-density"

    def plan_block(
        self, round_index: int, count: int, observed_sample: Sequence[Any] | None
    ) -> list[Any]:
        if self._current_gap(observed_sample) == 0.0 and self.widen:
            elements = []
            for offset in range(count):
                elements.extend(self._submit_block((round_index + offset) % 2 == 1, 1))
            return elements
        return super().plan_block(round_index, count, observed_sample)
