"""The introduction's bisection attack on the continuous universe ``[0, 1]``.

The adversary keeps a working range ``[a, b]`` (initially ``[0, 1]``) and
always submits its midpoint.  If the midpoint is stored by the sampler, the
working range moves up to ``[mid, b]``; otherwise it moves down to ``[a, mid]``.
Every submitted element is therefore larger than all currently sampled
elements and smaller than all non-sampled ones, so at the end of the stream
the sampled set consists of exactly the smallest sampled elements — the "most
unrepresentative" subset possible, and in particular the sample median is
wildly off.

The paper stresses that this attack needs precision exponential in the stream
length: after about 53 halvings IEEE doubles cannot represent the midpoint
distinctly any more.  The implementation exposes that breakdown explicitly
(:attr:`BisectionAdversary.precision_exhausted_at`), which experiment E4
reports as part of reproducing the paper's "theoretical only" discussion.

Decision cadence: with ``decision_period=p`` the adversary submits each
midpoint ``p`` times before reading the outcome; the range moves up if *any*
copy of the block's midpoint was stored, down otherwise (a stored copy is
what pins the midpoint below the sampled suffix, however many probes it
took).  ``p=1`` is the paper's per-round attack, bit for bit.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from ..exceptions import ConfigurationError
from ..samplers.base import SampleUpdate
from .base import CadencedAdversary, block_outcome_for_element


class BisectionAdversary(CadencedAdversary):
    """Adaptive midpoint-splitting attack over the real interval ``[low, high]``.

    Parameters
    ----------
    low / high:
        The initial working range (the paper uses ``[0, 1]``).
    decision_period:
        Rounds between decision points; each block repeats one midpoint.
    """

    name = "bisection-attack"
    decision_needs = "updates"

    def __init__(
        self, low: float = 0.0, high: float = 1.0, decision_period: int = 1
    ) -> None:
        super().__init__(decision_period)
        if not low < high:
            raise ConfigurationError(f"need low < high, got [{low}, {high}]")
        self._initial = (float(low), float(high))
        self._low, self._high = self._initial
        self._last_element: float | None = None
        #: Round at which floating-point precision ran out (midpoint equal to
        #: an endpoint), or ``None`` if it never did.
        self.precision_exhausted_at: int | None = None

    def plan_block(
        self, round_index: int, count: int, observed_sample: Sequence[Any] | None
    ) -> list[float]:
        midpoint = (self._low + self._high) / 2.0
        if midpoint <= self._low or midpoint >= self._high:
            # The working range can no longer be split with float precision;
            # keep submitting the boundary (the attack has stalled).
            if self.precision_exhausted_at is None:
                self.precision_exhausted_at = round_index
            midpoint = self._low
        self._last_element = midpoint
        return [midpoint] * count

    def observe_block(self, updates: Sequence[SampleUpdate]) -> None:
        if self._last_element is None:
            return
        stored = block_outcome_for_element(updates, self._last_element)
        if stored is None:
            return
        if stored:
            self._low = self._last_element
        else:
            self._high = self._last_element

    def reset(self) -> None:
        super().reset()
        self._low, self._high = self._initial
        self._last_element = None
        self.precision_exhausted_at = None

    @property
    def working_range(self) -> tuple[float, float]:
        """The current working range ``[a_i, b_i]`` of the attack."""
        return (self._low, self._high)
