"""Multi-adversary campaigns: several attacks composed over one stream.

The paper's game has a single adversary, but the follow-up threat models
([BJWY20], [HKMMS20]) assume attackers that *phase* their attacks (spam to
fill the sample, then poison a target range), *probe* before striking, or
*collude* — several strategies splitting the round budget between them.
:class:`CampaignAdversary` composes existing adversaries into those shapes
behind the ordinary :class:`~repro.adversary.base.Adversary` interface, so
every game runner, knowledge model and budget wrapper applies unchanged.

Two composition modes:

* **phased** — the stream is cut at fixed fractions into consecutive
  phases, one member per phase (``spam`` for the first half, ``poison`` for
  the second).  The members share the attack timeline: one finishes, the
  next begins.
* **interleaved** — round-robin over fixed-length slots of ``stride``
  rounds: member ``i`` plays slots ``i, i+k, i+2k, ...``.  This is the
  colluding model — ``k`` adversaries splitting the round budget evenly,
  each seeing only its own substream's feedback.

Local round indices
-------------------
Members are written against a stream of their own: round indices are
semantic for several attacks (the sorted adversary returns the index, the
eviction chaser arranges probes around it, cadence blocks align to it).  A
campaign therefore presents each member with its **local** substream — the
member sees rounds ``1, 2, 3, ...`` of its own contiguous play, and update
records are translated back to those local indices before forwarding.  The
round -> member map depends only on the round index and the configured
schedule, never on the realised stream or the attack budget, which is what
keeps campaign scenarios budget-monotone: a larger budget extends each
member's local stream, it never alters its beginning.

Segmentation
------------
:meth:`CampaignAdversary.next_elements` never lets a served segment straddle
an ownership boundary (a phase start, or a slot edge in interleaved mode):
the requested count is capped at the current member's run end, so the
chunked game runners keep their vectorised fast paths and every member's
cadence machinery sees exactly the substream it owns.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import replace as dataclass_replace
from collections.abc import Sequence
from typing import Any

import numpy as np

from ..exceptions import ConfigurationError
from ..samplers.base import SampleUpdate, UpdateBatch
from .base import Adversary, apply_decision_period

__all__ = ["CampaignAdversary", "phase_start_rounds"]

#: Campaign composition modes.
CAMPAIGN_MODES = ("phased", "interleaved")


def phase_start_rounds(starts: Sequence[float], stream_length: int) -> tuple[int, ...]:
    """Resolve phase start fractions to 1-based first rounds.

    The fractions are validated to produce a usable schedule *at this stream
    length*: the first phase must begin at round 1, every phase must own at
    least one round after rounding (tiny streams can collapse two close
    fractions onto the same round), and no phase may start beyond the
    stream.
    """
    if not starts:
        raise ConfigurationError("a phased campaign needs at least one phase start")
    rounds = [int(round(float(start) * stream_length)) + 1 for start in starts]
    if rounds[0] != 1:
        raise ConfigurationError(
            f"the first campaign phase must start at fraction 0.0, got {starts[0]}"
        )
    for earlier, later in zip(rounds, rounds[1:]):
        if later <= earlier:
            raise ConfigurationError(
                f"campaign phase starts {list(starts)} collapse at stream length "
                f"{stream_length}: rounds {rounds} must be strictly increasing"
            )
    if rounds[-1] > stream_length:
        raise ConfigurationError(
            f"campaign phase start {starts[-1]} lies beyond the stream "
            f"(round {rounds[-1]} of {stream_length})"
        )
    return tuple(rounds)


class CampaignAdversary(Adversary):
    """Compose member adversaries over one stream (phased or interleaved).

    Parameters
    ----------
    members:
        The member adversaries, in schedule order.  Members are plain
        adversaries (never budget-wrapped themselves); the scenario layer
        wraps the whole campaign in its ``BudgetedAdversary``.
    mode:
        ``"phased"`` (consecutive phases, requires ``phase_starts``) or
        ``"interleaved"`` (round-robin slots of ``stride`` rounds).
    phase_starts:
        Phased mode only: the 1-based first round of each phase (from
        :func:`phase_start_rounds`); the first must be 1 and the sequence
        strictly increasing.  The last phase extends to the end of the
        stream.
    stride:
        Interleaved mode only: slot length in rounds (default 16).
    name:
        Display name; defaults to ``campaign(<member names>)``.
    """

    def __init__(
        self,
        members: Sequence[Adversary],
        mode: str = "phased",
        phase_starts: Sequence[int] | None = None,
        stride: int = 16,
        name: str | None = None,
    ) -> None:
        if not members:
            raise ConfigurationError("a campaign needs at least one member adversary")
        if mode not in CAMPAIGN_MODES:
            raise ConfigurationError(
                f"unknown campaign mode {mode!r}; expected one of {CAMPAIGN_MODES}"
            )
        self.members = list(members)
        self.mode = mode
        if mode == "phased":
            if phase_starts is None or len(phase_starts) != len(self.members):
                raise ConfigurationError(
                    "a phased campaign needs one phase start per member, got "
                    f"{phase_starts!r} for {len(self.members)} members"
                )
            starts = [int(start) for start in phase_starts]
            if starts[0] != 1 or any(b <= a for a, b in zip(starts, starts[1:])):
                raise ConfigurationError(
                    f"phase starts must begin at 1 and strictly increase, got {starts}"
                )
            self._phase_starts = starts
            self.stride = int(stride)
        else:
            if phase_starts is not None:
                raise ConfigurationError(
                    "an interleaved campaign takes a stride, not phase starts"
                )
            if int(stride) < 1:
                raise ConfigurationError(f"campaign stride must be >= 1, got {stride}")
            self._phase_starts = []
            self.stride = int(stride)
        self.name = name or f"campaign({'+'.join(m.name for m in self.members)})"
        self._next_round = 1

    # ------------------------------------------------------------------
    # Schedule arithmetic (pure functions of the global round index)
    # ------------------------------------------------------------------
    def _owner(self, round_index: int) -> int:
        """Index of the member that owns global round ``round_index``."""
        if self.mode == "phased":
            return bisect_right(self._phase_starts, round_index) - 1
        return ((round_index - 1) // self.stride) % len(self.members)

    def _local(self, round_index: int, member_index: int) -> int:
        """The member-local 1-based round for global round ``round_index``."""
        if self.mode == "phased":
            return round_index - self._phase_starts[member_index] + 1
        slot = (round_index - 1) // self.stride
        within = (round_index - 1) % self.stride
        return (slot // len(self.members)) * self.stride + within + 1

    def _run_end(self, round_index: int, member_index: int) -> int | None:
        """Last global round of the owner's contiguous run containing
        ``round_index`` (``None`` when the run is unbounded — the final
        phase)."""
        if self.mode == "phased":
            if member_index + 1 < len(self.members):
                return self._phase_starts[member_index + 1] - 1
            return None
        slot = (round_index - 1) // self.stride
        return (slot + 1) * self.stride

    def _owners_of(self, round_indices: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`_owner` over a column of global round indices."""
        if self.mode == "phased":
            starts = np.asarray(self._phase_starts, dtype=np.int64)
            return np.searchsorted(starts, round_indices, side="right") - 1
        return ((round_indices - 1) // self.stride) % len(self.members)

    def _locals_of(self, round_indices: np.ndarray, member_index: int) -> np.ndarray:
        """Vectorised :meth:`_local` for rounds all owned by one member."""
        if self.mode == "phased":
            return round_indices - self._phase_starts[member_index] + 1
        slots = (round_indices - 1) // self.stride
        within = (round_indices - 1) % self.stride
        return (slots // len(self.members)) * self.stride + within + 1

    # ------------------------------------------------------------------
    # Adversary interface
    # ------------------------------------------------------------------
    @property
    def uses_observed_sample(self) -> bool:  # type: ignore[override]
        return any(member.uses_observed_sample for member in self.members)

    def will_observe_sample(self) -> bool:
        # Per-request refinement: only the member about to play can read the
        # view, so its appetite (including mid-block declines under the
        # cadence protocol) is the campaign's.
        return self.members[self._owner(self._next_round)].will_observe_sample()

    def next_element(
        self, round_index: int, observed_sample: Sequence[Any] | None
    ) -> Any:
        return self.next_elements(round_index, 1, observed_sample)[0]

    def next_elements(
        self, round_index: int, count: int, observed_sample: Sequence[Any] | None
    ) -> list[Any]:
        """Serve a segment from the member owning ``round_index``.

        The count is capped at the owner's run end so a served segment never
        straddles an ownership boundary; within the run the member's own
        decision granularity applies (per-round for fully adaptive members,
        whole cadence blocks otherwise).
        """
        member_index = self._owner(round_index)
        member = self.members[member_index]
        end = self._run_end(round_index, member_index)
        take = count if end is None else min(count, end - round_index + 1)
        elements = member.next_elements(
            self._local(round_index, member_index), take, observed_sample
        )
        if len(elements) > take:
            raise ConfigurationError(
                f"campaign member {member.name!r} returned {len(elements)} elements "
                f"for a segment of at most {take}"
            )
        self._next_round = round_index + len(elements)
        return elements

    def observe_update(self, update: SampleUpdate) -> None:
        member_index = self._owner(update.round_index)
        self.members[member_index].observe_update(
            dataclass_replace(
                update, round_index=self._local(update.round_index, member_index)
            )
        )

    def observe_update_batch(self, updates: Sequence[SampleUpdate]) -> None:
        if len(updates) == 0:
            return
        if not isinstance(updates, UpdateBatch):
            for update in updates:
                self.observe_update(update)
            return
        # Split the columnar record into runs of constant ownership and
        # forward each run with member-local round indices; acceptance flags
        # and sparse evictions are re-sliced, never copied per element.
        owners = self._owners_of(updates.round_indices)
        cuts = [0, *(np.flatnonzero(owners[1:] != owners[:-1]) + 1).tolist(), len(owners)]
        for low, high in zip(cuts, cuts[1:]):
            member_index = int(owners[low])
            piece = updates if high - low == len(updates) else updates[low:high]
            self.members[member_index].observe_update_batch(
                UpdateBatch(
                    self._locals_of(piece.round_indices, member_index),
                    piece.elements,
                    piece.accepted,
                    piece.evictions,
                )
            )

    def observes_updates(self, first_round: int, last_round: int) -> bool:
        # Conservative OR over the members owning rounds in the segment.
        # The global bounds are forwarded as-is: no member implementation
        # conditions on the bounds (they are budget-free attacks), so this
        # only ever errs towards materialising updates a member ignores.
        k = len(self.members)
        if self.mode == "phased":
            owners: Sequence[int] = range(
                self._owner(first_round), self._owner(last_round) + 1
            )
        else:
            first_slot = (first_round - 1) // self.stride
            last_slot = (last_round - 1) // self.stride
            if last_slot - first_slot + 1 >= k:
                owners = range(k)
            else:
                owners = sorted({slot % k for slot in range(first_slot, last_slot + 1)})
        return any(
            self.members[m].observes_updates(first_round, last_round) for m in owners
        )

    def set_decision_period(self, decision_period: int) -> bool:
        """Forward a cadence re-declaration to every member.

        Returns ``True`` when any member accepted — the contract
        :func:`~repro.adversary.base.apply_decision_period` expects from
        wrapper setters; members without a cadence protocol are unaffected.
        """
        applied = [
            apply_decision_period(member, decision_period) for member in self.members
        ]
        return any(applied)

    def reset(self) -> None:
        for member in self.members:
            member.reset()
        self._next_round = 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        schedule = (
            f"phase_starts={self._phase_starts}"
            if self.mode == "phased"
            else f"stride={self.stride}"
        )
        return (
            f"CampaignAdversary(mode={self.mode!r}, members={len(self.members)}, "
            f"{schedule})"
        )
