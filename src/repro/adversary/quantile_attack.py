"""Median / quantile attack over a discrete ordered universe.

Corollary 1.5 turns an epsilon-approximation with respect to prefixes into a
robust quantile sketch.  The natural attack against quantile estimation is the
bisection strategy of the introduction, played over the *discrete* universe
``{1, ..., N}``: the adversary always submits the midpoint of its working
range, so the sampled elements end up being exactly the smallest elements of
the stream and every sampled quantile collapses towards the stream minimum.

This is the Figure-3 attack with step fraction ``1/2``; it needs a universe of
size only ``2^n`` rather than ``n^{6 ln n}`` to survive ``n`` rounds, but it
is the most aggressive variant per round and the one used by the quantile
experiment (E7) to stress the corollary's sample sizes.
"""

from __future__ import annotations



from ..exceptions import ConfigurationError
from .threshold import ThresholdAttackAdversary


class MedianAttackAdversary(ThresholdAttackAdversary):
    """Discrete bisection attack targeting quantile estimates.

    Parameters
    ----------
    stream_length:
        Number of rounds ``n``.
    universe_size:
        Universe size ``N``; defaults to ``2^min(n, 900)`` so the working
        range can be halved once per round without collapsing (capped so that
        elements stay within IEEE-double ordering fidelity for the downstream
        discrepancy computations).
    decision_period:
        Rounds between decision points (see
        :class:`~repro.adversary.threshold.ThresholdAttackAdversary`).
    """

    name = "median-attack"

    def __init__(
        self,
        stream_length: int,
        universe_size: int | None = None,
        decision_period: int = 1,
    ) -> None:
        if stream_length < 1:
            raise ConfigurationError(f"stream length must be >= 1, got {stream_length}")
        if universe_size is None:
            universe_size = 2 ** min(stream_length + 2, 900)
        super().__init__(
            universe_size=universe_size,
            stream_length=stream_length,
            step_fraction=0.5,
            decision_period=decision_period,
        )
