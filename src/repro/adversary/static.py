"""Static (non-adaptive) adversaries.

These realise the classical setting the paper contrasts against: the stream is
fixed before the game starts (or generated independently of the sampler's
behaviour), so the classical VC-dimension bounds apply.  They serve as the
baseline opponents in the static-vs-adaptive gap experiment (E6) and as
workload generators for the application benchmarks.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from typing import Any

from ..exceptions import ConfigurationError, StreamExhaustedError
from ..rng import RandomState, ensure_generator
from .base import Adversary, ObliviousAdversary


def _per_round_fallback(
    adversary: Adversary,
    owner: type,
    round_index: int,
    count: int,
    observed_sample: Sequence[Any] | None,
) -> list[Any] | None:
    """Per-round segment when a subclass overrode ``next_element``.

    The vectorised ``next_elements`` kernels below generate whole segments
    without calling ``next_element`` — which would silently bypass a
    subclass's override of that documented per-round hook.  Each kernel
    therefore checks whether ``next_element`` still belongs to ``owner``
    (the class whose kernel is running); if not, the adversary reverts to
    per-round decision points, which honour both the override and the live
    state view it may read.  Returns ``None`` when the vectorised path is
    safe.
    """
    if type(adversary).next_element is not owner.next_element:
        return Adversary.next_elements(adversary, round_index, count, observed_sample)
    return None


class StaticAdversary(ObliviousAdversary):
    """Submit a fixed, pre-specified stream (the fully static setting)."""

    name = "static-fixed"

    def __init__(self, stream: Iterable[Any]) -> None:
        self._stream = list(stream)
        if not self._stream:
            raise ConfigurationError("a static adversary needs a non-empty stream")
        self._cursor = 0

    def next_element(
        self, round_index: int, observed_sample: Sequence[Any] | None
    ) -> Any:
        if self._cursor >= len(self._stream):
            raise StreamExhaustedError(
                f"static stream of length {len(self._stream)} exhausted at round {round_index}"
            )
        element = self._stream[self._cursor]
        self._cursor += 1
        return element

    def next_elements(
        self, round_index: int, count: int, observed_sample: Sequence[Any] | None
    ) -> list[Any]:
        fallback = _per_round_fallback(
            self, StaticAdversary, round_index, count, observed_sample
        )
        if fallback is not None:
            return fallback
        if self._cursor >= len(self._stream):
            raise StreamExhaustedError(
                f"static stream of length {len(self._stream)} exhausted at round {round_index}"
            )
        segment = self._stream[self._cursor : self._cursor + count]
        self._cursor += len(segment)
        return segment

    def reset(self) -> None:
        self._cursor = 0

    @property
    def remaining(self) -> int:
        """Number of elements the adversary can still submit."""
        return len(self._stream) - self._cursor


class GeneratorAdversary(ObliviousAdversary):
    """Submit elements produced by a callable ``generate(round_index, rng)``.

    The callable must not depend on the sampler's behaviour — this class
    deliberately never passes it any feedback — which makes it a convenient
    adapter for the workload generators in :mod:`repro.streams.generators`.
    """

    name = "static-generator"

    def __init__(
        self,
        generate: Callable[[int, Any], Any],
        seed: RandomState = None,
    ) -> None:
        self._generate = generate
        self._seed = seed
        self._rng = ensure_generator(seed)

    def next_element(
        self, round_index: int, observed_sample: Sequence[Any] | None
    ) -> Any:
        return self._generate(round_index, self._rng)

    def reset(self) -> None:
        self._rng = ensure_generator(self._seed)


class UniformAdversary(GeneratorAdversary):
    """Submit i.i.d. uniform elements from the discrete universe ``{1, ..., N}``."""

    name = "static-uniform"

    def __init__(self, universe_size: int, seed: RandomState = None) -> None:
        if universe_size < 1:
            raise ConfigurationError(f"universe size must be >= 1, got {universe_size}")
        self.universe_size = int(universe_size)
        super().__init__(
            lambda _round, rng: int(rng.integers(1, self.universe_size + 1)), seed
        )

    def next_elements(
        self, round_index: int, count: int, observed_sample: Sequence[Any] | None
    ) -> list[Any]:
        fallback = _per_round_fallback(
            self, GeneratorAdversary, round_index, count, observed_sample
        )
        if fallback is not None:
            return fallback
        # One batched draw; numpy's bounded-integer sampling consumes the bit
        # stream exactly like `count` scalar draws, so segments reproduce the
        # per-round game bit for bit.
        return [int(value) for value in self._rng.integers(1, self.universe_size + 1, size=count)]


class SortedAdversary(ObliviousAdversary):
    """Submit ``1, 2, 3, ...`` — a deterministic, sorted, duplicate-free stream.

    Sorted streams are a classically "hard-looking" but static input for
    samplers; they are used as a sanity baseline in the gap experiment.
    """

    name = "static-sorted"

    def __init__(self, universe_size: int | None = None) -> None:
        self.universe_size = universe_size

    def next_element(
        self, round_index: int, observed_sample: Sequence[Any] | None
    ) -> Any:
        if self.universe_size is not None and round_index > self.universe_size:
            raise StreamExhaustedError(
                f"sorted stream exceeded the universe size {self.universe_size}"
            )
        return round_index

    def next_elements(
        self, round_index: int, count: int, observed_sample: Sequence[Any] | None
    ) -> list[Any]:
        fallback = _per_round_fallback(
            self, SortedAdversary, round_index, count, observed_sample
        )
        if fallback is not None:
            return fallback
        if self.universe_size is not None:
            if round_index > self.universe_size:
                raise StreamExhaustedError(
                    f"sorted stream exceeded the universe size {self.universe_size}"
                )
            count = min(count, self.universe_size - round_index + 1)
        return list(range(round_index, round_index + count))


class ZipfAdversary(GeneratorAdversary):
    """Submit i.i.d. Zipf-distributed elements over ``{1, ..., N}``.

    Heavy-tailed streams are the natural workload for the heavy-hitters
    application (E8) and for the load-balancing scenario (E12).
    """

    name = "static-zipf"

    def __init__(
        self, universe_size: int, exponent: float = 1.2, seed: RandomState = None
    ) -> None:
        if universe_size < 1:
            raise ConfigurationError(f"universe size must be >= 1, got {universe_size}")
        if exponent <= 1.0:
            raise ConfigurationError(f"zipf exponent must exceed 1, got {exponent}")
        self.universe_size = int(universe_size)
        self.exponent = float(exponent)

        def _draw(_round: int, rng: Any) -> int:
            # Rejection-free: draw until the value fits the universe (the
            # Zipf tail beyond N is folded back by re-drawing).
            while True:
                value = int(rng.zipf(self.exponent))
                if value <= self.universe_size:
                    return value

        super().__init__(_draw, seed)
