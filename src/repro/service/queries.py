"""Pure query kernels evaluated against a published :class:`Snapshot`.

The service layer separates *when* a view is taken (the snapshot store /
writer lock) from *what* is computed on it.  Everything here is a pure
function of an immutable sample tuple (plus, for discrepancy, the writer's
true-count array), so reader threads can evaluate queries with no lock held
and no torn state: once they hold a snapshot, nothing the writer does can
change the answer.

The discrepancy query is Definition 1.1 for the prefix system — the same
quantity the offline game engine scores — computed incrementally from a
counts vector rather than the raw stream, so the service never has to
retain the stream it ingested.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from typing import Any

import numpy as np
from numpy.typing import NDArray

from ..exceptions import ConfigurationError, EmptySampleError

__all__ = ["heavy_hitters", "prefix_discrepancy", "quantile"]


def quantile(sample: Sequence[Any], q: float) -> Any:
    """The empirical ``q``-quantile of the snapshot sample.

    The sample is a uniform-ish subsequence of the stream, so its empirical
    quantile estimates the stream quantile with the set-system guarantee of
    the interval family.  Lower empirical quantile: the element at rank
    ``floor(q * size)`` of the sorted sample.
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile q must lie in [0, 1], got {q}")
    if len(sample) == 0:
        raise EmptySampleError("quantile of an empty sample is undefined")
    ordered = sorted(sample)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def heavy_hitters(sample: Sequence[Any], k: int = 8) -> list[tuple[Any, int]]:
    """The ``k`` most frequent sample elements as ``(element, count)`` pairs.

    Ties are broken by element value so the answer is a pure function of the
    sample multiset (``Counter.most_common`` alone would leak insertion
    order into the report).
    """
    if k < 1:
        raise ConfigurationError(f"heavy_hitters k must be >= 1, got {k}")
    counts = Counter(sample)
    return sorted(counts.items(), key=lambda item: (-item[1], item[0]))[:k]


def prefix_discrepancy(sample: Sequence[int], counts: NDArray[np.int64]) -> float:
    """Worst prefix-density discrepancy between sample and true counts.

    ``counts[v]`` is the multiplicity of element ``v`` in the stream so far
    (index 0 unused for 1-based universes; any length covering the maximum
    element works).  This is Definition 1.1 for the prefix system
    ``{[1, t]}``, evaluated over every threshold at once via cumulative
    sums — O(universe + sample) per query.
    """
    if len(sample) == 0:
        raise EmptySampleError("an empty sample is never an epsilon-approximation")
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total <= 0:
        raise EmptySampleError("prefix discrepancy needs a non-empty stream")
    sample_counts = np.bincount(
        np.asarray(sample, dtype=np.int64), minlength=counts.shape[0]
    )
    if sample_counts.shape[0] > counts.shape[0]:
        counts = np.pad(counts, (0, sample_counts.shape[0] - counts.shape[0]))
    stream_density = np.cumsum(counts) / total
    sample_density = np.cumsum(sample_counts) / len(sample)
    return float(np.max(np.abs(stream_density - sample_density)))
