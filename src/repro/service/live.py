"""The always-on query service: ingestion never pauses, readers never block it.

Threading model (single-writer / reader-pool):

* **one writer** owns the sampler.  :meth:`QueryService.ingest` appends a
  chunk under the writer lock, maintains the true-count vector the
  discrepancy query needs, and — when the published snapshot has fallen
  more than ``staleness_rounds`` behind — refreshes and *publishes* a new
  immutable :class:`~repro.service.snapshots.Snapshot` (plus a counts copy)
  with a single attribute assignment;
* **N readers** answer quantile / heavy-hitter / discrepancy queries.  A
  reader whose freshness contract is met by the published snapshot touches
  no lock at all: it reads one attribute (atomic under the GIL), getting an
  immutable tuple that no writer action can mutate — there is no mid-merge
  state to tear.  Only a reader that *needs* a fresher view (the bound was
  exceeded, ``fresh=True``, or the deployment is exposure-tracked and every
  read must reach the sites) takes the lock and refreshes through the
  snapshot store, paying the merge the [CTW16] ledger accounts for.

The threaded service is wall-clock scheduled and therefore **not**
bit-reproducible; the deterministic facade the scenario engine uses is
:class:`~repro.service.served.ServedSampler`.  This module is the thing the
``repro-experiments serve`` CLI and the mixed read/write benchmarks drive.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

from ..exceptions import ConfigurationError, EmptySampleError
from ..samplers.base import StreamSampler
from .queries import heavy_hitters, prefix_discrepancy, quantile
from .snapshots import Snapshot, SnapshotStore

__all__ = ["QueryService", "ServiceReport", "percentile"]

#: Reader cadence (seconds slept between queries).  Benign clients back off
#: enough that the writer keeps the GIL most of the time; the adversarial
#: client hammers much harder *and* forces a fresh snapshot every read,
#: maximising both observed staleness churn and lock pressure.
_BENIGN_SLEEP = 2e-3
_ADVERSARY_SLEEP = 2e-4

_JOIN_TIMEOUT = 30.0


def percentile(latencies: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of a latency sample (``q`` in (0, 1])."""
    if not latencies:
        raise EmptySampleError("percentile of an empty latency sample is undefined")
    if not 0.0 < q <= 1.0:
        raise ConfigurationError(f"percentile q must lie in (0, 1], got {q}")
    ordered = sorted(latencies)
    return ordered[max(0, math.ceil(q * len(ordered)) - 1)]


@dataclass
class ServiceReport:
    """Outcome of one :meth:`QueryService.serve` run."""

    rounds: int
    ingest_seconds: float
    clients: int
    adversarial_clients: int
    queries: int
    query_p50: float | None
    query_p99: float | None
    staleness_rounds: int
    max_staleness_served: int
    snapshot_refreshes: int
    final_sample_size: int
    per_kind: dict[str, int] = field(default_factory=dict)

    @property
    def ingest_throughput(self) -> float:
        return self.rounds / self.ingest_seconds if self.ingest_seconds > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        payload = {
            "rounds": self.rounds,
            "ingest_seconds": round(self.ingest_seconds, 6),
            "ingest_throughput": round(self.ingest_throughput, 1),
            "clients": self.clients,
            "adversarial_clients": self.adversarial_clients,
            "queries": self.queries,
            "query_p50": None if self.query_p50 is None else round(self.query_p50, 6),
            "query_p99": None if self.query_p99 is None else round(self.query_p99, 6),
            "staleness_rounds": self.staleness_rounds,
            "max_staleness_served": self.max_staleness_served,
            "snapshot_refreshes": self.snapshot_refreshes,
            "final_sample_size": self.final_sample_size,
            "per_kind": dict(self.per_kind),
        }
        return payload

    def summary(self) -> str:
        p50 = "-" if self.query_p50 is None else f"{self.query_p50 * 1e3:.3f}ms"
        p99 = "-" if self.query_p99 is None else f"{self.query_p99 * 1e3:.3f}ms"
        return (
            f"served {self.queries} queries over {self.rounds} rounds "
            f"({self.ingest_throughput:,.0f} elem/s ingest, "
            f"{self.clients} clients, p50 {p50}, p99 {p99}, "
            f"max staleness {self.max_staleness_served} rounds)"
        )


class QueryService:
    """Concurrent read facade over one live sampler (or sharded deployment).

    ``universe_size`` enables the discrepancy query (the writer then
    maintains the true prefix counts); without it readers rotate between
    quantile and heavy-hitter queries only.
    """

    #: Query kinds a reader cycles through (discrepancy requires a universe).
    KINDS = ("quantile", "heavy_hitters", "discrepancy")

    def __init__(
        self,
        sampler: StreamSampler,
        staleness_rounds: int = 0,
        universe_size: int | None = None,
    ) -> None:
        if universe_size is not None and universe_size < 2:
            raise ConfigurationError(
                f"universe size must be >= 2, got {universe_size}"
            )
        self._lock = threading.Lock()
        self._store = SnapshotStore(sampler, staleness_rounds)  # guarded-by: _lock
        self._universe = universe_size
        self._counts = np.zeros(  # guarded-by: _lock
            1 if universe_size is None else universe_size + 1, dtype=np.int64
        )
        # One attribute, swapped atomically: (snapshot, counts-at-snapshot).
        self._published: tuple[Snapshot, np.ndarray] | None = None  # guarded-by: _lock
        # Best-effort max staleness observed on the lock-free read path (a
        # racing update may be lost; the metric only ever under-reports).
        self._max_published_staleness = 0

    @property
    def sampler(self) -> StreamSampler:
        return self._store.sampler

    @property
    def staleness_rounds(self) -> int:
        return self._store.staleness_rounds

    # ------------------------------------------------------------------
    # Writer path
    # ------------------------------------------------------------------
    def ingest(self, chunk: Sequence[Any]) -> None:
        """Append a chunk; republish the snapshot when the bound requires it."""
        with self._lock:
            self._store.sampler.extend(chunk, updates=False)
            if self._universe is not None:
                values = np.asarray(chunk, dtype=np.int64)
                self._counts += np.bincount(
                    values, minlength=self._counts.shape[0]
                )[: self._counts.shape[0]]
            published = self._published
            behind = (
                published is None
                or self._store.sampler.rounds_processed - published[0].round_index
                > self._store.staleness_rounds
            )
            if behind and not self._store.must_bypass():
                self._publish_locked()

    def _publish_locked(self) -> Snapshot:
        snapshot = self._store.refresh()
        self._published = (snapshot, self._counts.copy())
        return snapshot

    # ------------------------------------------------------------------
    # Reader path
    # ------------------------------------------------------------------
    def acquire(self, fresh: bool = False) -> tuple[Snapshot, np.ndarray]:
        """Get a consistent (snapshot, counts) pair to answer a query from.

        Lock-free when the published pair satisfies the staleness bound;
        takes the writer lock to refresh otherwise.
        """
        published = self._published
        if (
            not fresh
            and published is not None
            and not self._store.must_bypass()
        ):
            observed = (
                self._store.sampler.rounds_processed - published[0].round_index
            )
            if observed <= self._store.staleness_rounds:
                if observed > self._max_published_staleness:
                    self._max_published_staleness = observed
                return published
        with self._lock:
            snapshot = self._store.read(fresh=fresh)
            self._published = (snapshot, self._counts.copy())
            return self._published

    def query(self, kind: str, q: float = 0.5, k: int = 8, fresh: bool = False) -> Any:
        """Answer one query against a consistent snapshot."""
        snapshot, counts = self.acquire(fresh=fresh)
        if kind == "quantile":
            return quantile(snapshot.sample, q)
        if kind == "heavy_hitters":
            return heavy_hitters(snapshot.sample, k)
        if kind == "discrepancy":
            if self._universe is None:
                raise ConfigurationError(
                    "discrepancy queries need the service built with a universe_size"
                )
            return prefix_discrepancy(snapshot.sample, counts)
        raise ConfigurationError(
            f"unknown query kind {kind!r}; expected one of {self.KINDS}"
        )

    # ------------------------------------------------------------------
    # Mixed read/write harness
    # ------------------------------------------------------------------
    def serve(
        self,
        stream: Iterable[Any],
        chunk_size: int = 1024,
        clients: int = 4,
        adversarial_clients: int = 1,
    ) -> ServiceReport:
        """Ingest ``stream`` while a reader pool queries concurrently.

        The writer runs on the calling thread; ``clients`` benign readers
        rotate through the query kinds at a gentle cadence, and
        ``adversarial_clients`` readers play the query-timing adversary:
        they force a fresh snapshot on every read (worst-case lock and merge
        pressure) as fast as the scheduler lets them.  Returns the latency
        and staleness accounting as a :class:`ServiceReport`.
        """
        if chunk_size < 1:
            raise ConfigurationError(f"chunk size must be >= 1, got {chunk_size}")
        if clients < 0 or adversarial_clients < 0:
            raise ConfigurationError("client counts must be >= 0")
        data = list(stream)
        stop = threading.Event()
        latencies: list[list[float]] = []
        kind_counts: list[dict[str, int]] = []
        threads: list[threading.Thread] = []
        kinds = self.KINDS if self._universe is not None else self.KINDS[:2]
        for index in range(clients + adversarial_clients):
            adversarial = index >= clients
            bucket: list[float] = []
            counts: dict[str, int] = {}
            latencies.append(bucket)
            kind_counts.append(counts)
            thread = threading.Thread(
                target=self._client_loop,
                args=(stop, kinds, index, adversarial, bucket, counts),
                name=f"service-client-{index}",
                daemon=True,
            )
            threads.append(thread)
        for thread in threads:
            thread.start()
        start = time.perf_counter()
        try:
            for offset in range(0, len(data), chunk_size):
                self.ingest(data[offset : offset + chunk_size])
            ingest_seconds = time.perf_counter() - start
        finally:
            stop.set()
        for thread in threads:
            thread.join(timeout=_JOIN_TIMEOUT)
            if thread.is_alive():  # pragma: no cover - deadlock guard
                raise RuntimeError(f"service client {thread.name} failed to stop")
        all_latencies = [value for bucket in latencies for value in bucket]
        per_kind: dict[str, int] = {}
        for counts in kind_counts:
            for kind, count in counts.items():
                per_kind[kind] = per_kind.get(kind, 0) + count
        stats = self._store.stats()
        return ServiceReport(
            rounds=self._store.sampler.rounds_processed,
            ingest_seconds=ingest_seconds,
            clients=clients,
            adversarial_clients=adversarial_clients,
            queries=len(all_latencies),
            query_p50=percentile(all_latencies, 0.50) if all_latencies else None,
            query_p99=percentile(all_latencies, 0.99) if all_latencies else None,
            staleness_rounds=self._store.staleness_rounds,
            max_staleness_served=max(
                stats["max_staleness_served"], self._max_published_staleness
            ),
            snapshot_refreshes=stats["refreshes"],
            final_sample_size=len(self._store.sampler.sample),
            per_kind=per_kind,
        )

    def _client_loop(
        self,
        stop: threading.Event,
        kinds: Sequence[str],
        index: int,
        adversarial: bool,
        latencies: list[float],
        kind_counts: dict[str, int],
    ) -> None:
        cadence = _ADVERSARY_SLEEP if adversarial else _BENIGN_SLEEP
        issued = 0
        while not stop.is_set():
            kind = kinds[(index + issued) % len(kinds)]
            started = time.perf_counter()
            try:
                self.query(kind, fresh=adversarial)
            except EmptySampleError:
                # Nothing ingested yet (or the sample is transiently empty);
                # an unanswerable query is not a latency data point.
                time.sleep(cadence)
                continue
            latencies.append(time.perf_counter() - started)
            kind_counts[kind] = kind_counts.get(kind, 0) + 1
            issued += 1
            time.sleep(cadence)
