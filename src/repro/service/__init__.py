"""Always-on query service over live samplers (ROADMAP item 1).

Four pieces, composed bottom-up:

* :mod:`~repro.service.snapshots` — :class:`Snapshot` /
  :class:`SnapshotStore`: versioned immutable views with a bounded-staleness
  knob, reusing the sharded coordinator's version-memoised merge and
  preserving the fault layer's exposure / stale-window cache bypasses;
* :mod:`~repro.service.queries` — pure query kernels (quantile, heavy
  hitters, prefix discrepancy) evaluated on a snapshot with no lock held;
* :mod:`~repro.service.served` — :class:`ServedSampler`, the deterministic
  single-threaded facade the scenario engine and fuzzer drive (background
  clients on a round-indexed schedule; bit-reproducible);
* :mod:`~repro.service.live` — :class:`QueryService`, the actual threaded
  single-writer / reader-pool service behind ``repro-experiments serve``
  and the mixed read/write benchmarks.
"""

from .live import QueryService, ServiceReport, percentile
from .queries import heavy_hitters, prefix_discrepancy, quantile
from .served import ServedSampler
from .snapshots import Snapshot, SnapshotStore

__all__ = [
    "QueryService",
    "ServedSampler",
    "ServiceReport",
    "Snapshot",
    "SnapshotStore",
    "heavy_hitters",
    "percentile",
    "prefix_discrepancy",
    "quantile",
]
