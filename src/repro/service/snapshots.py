"""Versioned snapshots of a live sampler, with a bounded-staleness knob.

The always-on query service (ROADMAP item 1) must answer reads while
ingestion never pauses.  The expensive part of a read over a
:class:`~repro.distributed.sharded.ShardedSampler` is the coordinator merge;
PR 8 already memoises the merged view behind the deployment's version
counter, so a *fresh* read of an unchanged deployment is free.  What the
memoised view cannot do is serve a read while the deployment advances —
every shard advance invalidates it.  The :class:`SnapshotStore` adds the
missing degree of freedom: a ``staleness_rounds`` bound under which an
already-taken :class:`Snapshot` keeps being served even though ingestion
moved on, trading freshness for zero merge work (and zero [CTW16] messages)
on the read path.

Two behaviours from the fault layer are deliberately preserved by bypassing
the store's own cache:

* **exposure hooks** — samplers (or sharded sites) with an
  ``observe_exposure`` hook (sketch switching et al.) must see every read;
  the store never caches for them, so each :meth:`SnapshotStore.read`
  delegates to ``sampler.sample`` and the hooks fire exactly as they would
  on a direct read;
* **stale windows** — during a :class:`~repro.distributed.faults.FaultPlan`
  staleness window the deployment itself serves its memoised pre-window
  view; the store delegates there too, so the fault plan (not the service
  knob) decides what a read observes.

The store is deliberately not thread-safe: the single-threaded
:class:`~repro.service.served.ServedSampler` uses it directly, and the
threaded :class:`~repro.service.live.QueryService` guards it with the
writer lock and publishes immutable snapshots for lock-free reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..exceptions import ConfigurationError
from ..samplers.base import StreamSampler

__all__ = ["Snapshot", "SnapshotStore"]


@dataclass(frozen=True)
class Snapshot:
    """One immutable published view of a live sampler.

    ``version`` is the underlying deployment's change counter when the
    snapshot was taken (for a :class:`ShardedSampler` the per-advance
    ``version`` property; plain samplers fall back to ``rounds_processed``).
    ``round_index`` is the number of stream rounds the snapshot reflects —
    the quantity the snapshot-consistency property is stated in: for an
    exact-merge family, ``sample`` equals the offline merged view of the
    first ``round_index`` rounds.
    """

    version: int
    round_index: int
    sample: tuple[Any, ...]

    @property
    def size(self) -> int:
        return len(self.sample)


def _exposure_tracked(sampler: StreamSampler) -> bool:
    """True when reads of ``sampler`` have side effects that must not be
    absorbed by a cache (the ``observe_exposure`` contract from the defense
    wrappers, directly or on any sharded site)."""
    if getattr(sampler, "observe_exposure", None) is not None:
        return True
    return any(
        getattr(site, "observe_exposure", None) is not None
        for site in getattr(sampler, "sites", ())
    )


class SnapshotStore:
    """Bounded-staleness snapshot cache over one live sampler.

    ``staleness_rounds`` is the service-level freshness contract: a read may
    be served from the held snapshot as long as the sampler has advanced at
    most that many rounds past it.  ``0`` (the default) means every read
    reflects all rounds ingested so far — the store then only de-duplicates
    the tuple copy, never the underlying merge (which the deployment's own
    version-memoised view already de-duplicates).
    """

    def __init__(self, sampler: StreamSampler, staleness_rounds: int = 0) -> None:
        staleness_rounds = int(staleness_rounds)
        if staleness_rounds < 0:
            raise ConfigurationError(
                f"staleness_rounds must be >= 0, got {staleness_rounds}"
            )
        self.sampler = sampler
        self.staleness_rounds = staleness_rounds
        self._snapshot: Snapshot | None = None
        self._refreshes = 0
        self._reads = 0
        self._max_staleness_served = 0

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def read(self, fresh: bool = False) -> Snapshot:
        """Serve a snapshot, refreshing only when the staleness bound (or an
        exposure/stale-window bypass, or ``fresh=True``) requires it."""
        self._reads += 1
        held = self._snapshot
        if (
            fresh
            or held is None
            or self.must_bypass()
            or self.sampler.rounds_processed - held.round_index > self.staleness_rounds
        ):
            held = self.refresh()
        self._max_staleness_served = max(
            self._max_staleness_served,
            self.sampler.rounds_processed - held.round_index,
        )
        return held

    def refresh(self) -> Snapshot:
        """Unconditionally re-snapshot the sampler's current served view."""
        sampler = self.sampler
        snapshot = Snapshot(
            version=int(getattr(sampler, "version", sampler.rounds_processed)),
            round_index=sampler.rounds_processed,
            sample=tuple(sampler.sample),
        )
        self._snapshot = snapshot
        self._refreshes += 1
        return snapshot

    def must_bypass(self) -> bool:
        """True when reads must reach the sampler regardless of the bound
        (exposure-tracked deployments and active fault-plan stale windows)."""
        if _exposure_tracked(self.sampler):
            return True
        plan = getattr(self.sampler, "fault_plan", None)
        return plan is not None and plan.is_stale(self.sampler.rounds_processed)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def held(self) -> Snapshot | None:
        """The currently held snapshot (``None`` before the first read)."""
        return self._snapshot

    def invalidate(self) -> None:
        """Drop the held snapshot (next read refreshes unconditionally)."""
        self._snapshot = None

    def stats(self) -> dict[str, int]:
        """Read/refresh accounting for reports and tests."""
        return {
            "reads": self._reads,
            "refreshes": self._refreshes,
            "max_staleness_served": self._max_staleness_served,
        }

    def reset(self) -> None:
        """Forget the snapshot and the accounting (sampler is untouched)."""
        self._snapshot = None
        self._refreshes = 0
        self._reads = 0
        self._max_staleness_served = 0
