"""Deterministic single-threaded service wrapper for the scenario engine.

:class:`ServedSampler` is the service layer as the *game* sees it: every
read of :attr:`sample` goes through a :class:`SnapshotStore`, so the
adversary (and the checkpoint bookkeeping) observes the bounded-stale
served view rather than the live state — which is exactly the new attack
surface the query-timing scenarios probe.  A background client population
is simulated deterministically: every ``query_period`` rounds, each of
``clients`` clients performs one read.  For exposure-tracked deployments
(sketch switching et al.) those reads hit the sites' ``observe_exposure``
hooks, so a query flood genuinely drains the defense's switching budget.

Determinism contract (what keeps the registry-wide invariants green):

* the background read schedule is a pure function of the round index
  (reads fire after round ``r`` whenever ``r % query_period == 0``), never
  of the attack budget or the chunk size;
* :meth:`extend` segments batches at those tick rounds, so the chunked
  path performs byte-identical reads (and thus byte-identical merge-RNG
  consumption and exposure notifications) to the per-element path;
* snapshot refreshes are decided only by round arithmetic inside the
  store, so a fixed (seed, query schedule) pair replays bit-identically.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

from ..exceptions import ConfigurationError
from ..samplers.base import SampleUpdate, StreamSampler, UpdateBatch
from .snapshots import SnapshotStore

__all__ = ["ServedSampler"]


class ServedSampler(StreamSampler):
    """Wrap a sampler so reads are served from a bounded-stale snapshot store.

    ``staleness_rounds`` bounds how far the served view may lag ingestion;
    ``clients``/``query_period`` describe the deterministic background read
    load (``clients=0`` disables it).  The wrapper is picklable as long as
    the inner sampler is, and delegates all state accounting to it.
    """

    def __init__(
        self,
        inner: StreamSampler,
        staleness_rounds: int = 0,
        clients: int = 0,
        query_period: int = 32,
    ) -> None:
        super().__init__()
        clients = int(clients)
        query_period = int(query_period)
        if clients < 0:
            raise ConfigurationError(f"clients must be >= 0, got {clients}")
        if query_period < 1:
            raise ConfigurationError(f"query_period must be >= 1, got {query_period}")
        self._inner = inner
        self._clients = clients
        self._query_period = query_period
        self._store = SnapshotStore(inner, staleness_rounds)
        self._ticks = 0
        self.name = f"served-{inner.name}"

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------
    def process(self, element: Any) -> SampleUpdate:
        update = self._inner.process(element)
        self._round = self._inner.rounds_processed
        self._maybe_tick()
        return update

    def _process(self, element: Any) -> SampleUpdate:  # pragma: no cover
        raise NotImplementedError("ServedSampler overrides process() directly")

    def extend(
        self, elements: Iterable[Any], updates: bool = True
    ) -> UpdateBatch | None:
        if updates:
            # The columnar record needs per-element updates anyway, so the
            # per-element path (which ticks at exactly the right rounds) is
            # the natural implementation.
            return UpdateBatch.from_updates(
                self.process(element) for element in elements
            )
        items = list(elements)
        start = 0
        while start < len(items):
            # Segment the batch at the next background-query tick so the
            # chunked path reads (and consumes merge randomness / fires
            # exposure hooks) at byte-identical rounds to per-element.
            done = self._inner.rounds_processed
            next_tick = (done // self._query_period + 1) * self._query_period
            take = min(len(items) - start, next_tick - done)
            self._inner.extend(items[start : start + take], updates=False)
            start += take
            self._round = self._inner.rounds_processed
            self._maybe_tick()
        return None

    def _maybe_tick(self) -> None:
        if self._clients == 0:
            return
        if self._inner.rounds_processed % self._query_period != 0:
            return
        self._ticks += 1
        for _ in range(self._clients):
            self._store.read()

    # ------------------------------------------------------------------
    # Served state
    # ------------------------------------------------------------------
    @property
    def sample(self) -> tuple[Any, ...]:
        """The *served* sample: the store's bounded-stale snapshot view."""
        return self._store.read().sample

    @property
    def rounds_processed(self) -> int:
        return self._inner.rounds_processed

    @property
    def inner(self) -> StreamSampler:
        """The live sampler behind the service facade."""
        return self._inner

    @property
    def store(self) -> SnapshotStore:
        """The snapshot store (exposed for tests and reports)."""
        return self._store

    @property
    def version(self) -> int:
        """The inner deployment's change counter (rounds for plain samplers)."""
        return int(getattr(self._inner, "version", self._inner.rounds_processed))

    def service_report(self) -> dict[str, int]:
        """Background-load accounting: ticks plus the store's read stats."""
        report = dict(self._store.stats())
        report["ticks"] = self._ticks
        report["clients"] = self._clients
        report["query_period"] = self._query_period
        return report

    # ------------------------------------------------------------------
    # Delegated accounting
    # ------------------------------------------------------------------
    def memory_footprint(self) -> int:
        held = self._store.held
        return self._inner.memory_footprint() + (held.size if held is not None else 0)

    def degradation_report(self) -> dict[str, Any]:
        report = self._inner.degradation_report()
        report["service"] = self.service_report()
        return report

    def reset(self) -> None:
        self._inner.reset()
        self._store.reset()
        self._ticks = 0
        self._round = 0
