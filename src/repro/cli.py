"""Command-line interface: experiments, tables, and attack scenarios.

Examples
--------
Run one experiment with default parameters::

    repro-experiments run E3

Run everything at reduced scale and write Markdown tables to a directory::

    repro-experiments run-all --trials 5 --output-dir results/

List, run and sweep the declarative attack scenarios::

    repro-experiments scenario list
    repro-experiments scenario run prefix_flood --budget 0.5 --json
    repro-experiments scenario run --config my_scenario.json
    repro-experiments scenario sweep bisection_probe --budgets 0.25,0.5,1.0 --seeds 1,2
    repro-experiments scenario matrix --scenarios prefix_flood,bisection_probe --markdown
    repro-experiments scenario fuzz --count 50 --seed 7

Run the perf benchmark suite, write the machine-readable report, and check
it against the committed baseline::

    repro-experiments bench --mode smoke --check
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from collections.abc import Sequence

from .exceptions import ConfigurationError
from .experiments import EXPERIMENTS, ExperimentConfig, run_experiment
from .experiments.tables import ExperimentResult
from .scenarios import (
    ScenarioConfig,
    list_scenarios,
    run_config,
    run_scenario,
    sweep_config,
    sweep_scenario,
    sweep_table,
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro-experiments`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduction experiments for 'The Adversarial Robustness of Sampling'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list available experiments")
    list_parser.set_defaults(command="list")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment identifier, e.g. E3")
    _add_config_arguments(run_parser)

    run_all_parser = subparsers.add_parser("run-all", help="run every experiment")
    _add_config_arguments(run_all_parser)
    run_all_parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="directory to write per-experiment Markdown tables into",
    )

    scenario_parser = subparsers.add_parser(
        "scenario", help="declarative attack scenarios (list / run / sweep)"
    )
    scenario_subparsers = scenario_parser.add_subparsers(
        dest="scenario_command", required=True
    )

    scenario_list = scenario_subparsers.add_parser(
        "list", help="list registered scenarios"
    )
    scenario_list.add_argument("--json", action="store_true", help="emit JSON")

    scenario_run = scenario_subparsers.add_parser("run", help="run one scenario")
    scenario_run.add_argument(
        "name", nargs="?", default=None, help="scenario name, e.g. prefix_flood"
    )
    scenario_run.add_argument(
        "--config",
        type=Path,
        default=None,
        help="JSON ScenarioConfig file to run instead of a registered name",
    )
    _add_scenario_arguments(scenario_run)
    scenario_run.add_argument(
        "--budget", type=float, default=None, help="attack budget in [0, 1]"
    )

    scenario_sweep = scenario_subparsers.add_parser(
        "sweep", help="sweep one scenario over (budget x sampler x seed)"
    )
    scenario_sweep.add_argument(
        "name", nargs="?", default=None, help="scenario name, e.g. prefix_flood"
    )
    scenario_sweep.add_argument(
        "--config",
        type=Path,
        default=None,
        help="JSON ScenarioConfig file to sweep instead of a registered name",
    )
    _add_scenario_arguments(scenario_sweep)
    scenario_sweep.add_argument(
        "--budgets",
        type=_float_list,
        default=None,
        help="comma-separated attack budgets (default: the scenario's grid)",
    )
    scenario_sweep.add_argument(
        "--seeds",
        type=_int_list,
        default=None,
        help="comma-separated seeds (default: the scenario's base seed)",
    )

    scenario_matrix = scenario_subparsers.add_parser(
        "matrix",
        help="run the attack x defense grid and tabulate attacked peak discrepancies",
    )
    scenario_matrix.add_argument(
        "--scenarios",
        type=_str_list,
        default=None,
        help="comma-separated scenario names (default: every registered scenario)",
    )
    scenario_matrix.add_argument(
        "--defenses",
        type=_str_list,
        default=None,
        help=(
            "comma-separated defense columns "
            "(none, oversample, sketch_switching, dp_aggregate, difference_estimator)"
        ),
    )
    _add_scenario_arguments(scenario_matrix)
    scenario_matrix.add_argument(
        "--budget", type=float, default=None, help="attack budget in [0, 1]"
    )
    scenario_matrix.add_argument(
        "--endpoint",
        action="store_true",
        help=(
            "run every cell as an endpoint game (continuous=false): the "
            "tabulated value is the final-state error, free of the "
            "early-checkpoint small-sample noise that dominates "
            "continuous-game peaks at matched space"
        ),
    )

    scenario_fuzz = scenario_subparsers.add_parser(
        "fuzz",
        help="fuzz random scenario configs and check the registry-wide invariants",
    )
    scenario_fuzz.add_argument(
        "--count", type=int, default=25, help="number of random configs to check"
    )
    scenario_fuzz.add_argument(
        "--seed", type=int, default=0, help="base seed for the config draws"
    )
    scenario_fuzz.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    scenario_fuzz.add_argument(
        "--faults",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "include fault-plan knobs (crashes, stale coordinator windows, "
            "mid-stream reshards) in the sharded draws; --no-faults sweeps "
            "fault-free deployments only"
        ),
    )
    scenario_fuzz.add_argument(
        "--service",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "include query-service knobs (staleness bound, client count, "
            "query cadence) in the draws; --no-service sweeps serverless "
            "configs only"
        ),
    )

    bench_parser = subparsers.add_parser(
        "bench", help="run the perf benchmark suite and write a JSON report"
    )
    bench_parser.add_argument(
        "--mode",
        choices=("smoke", "full"),
        default="full",
        help="benchmark scale: 'smoke' for CI, 'full' for the real gates",
    )
    bench_parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON report (default: the canonical BENCH_*.json name)",
    )
    bench_parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "validate the fresh report against the committed baseline "
            "(schema + operation set); exits 1 on drift.  Without an "
            "explicit --output the fresh report is written as "
            "BENCH_*.fresh.json so the baseline is never overwritten"
        ),
    )
    bench_parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline report for --check (default: the canonical BENCH_*.json name)",
    )
    bench_parser.add_argument(
        "--markdown", action="store_true", help="also print the README perf table"
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help=(
            "run the always-on query service: ingest a synthetic stream into a "
            "sharded deployment while concurrent clients read snapshots"
        ),
    )
    _add_service_arguments(serve_parser)
    serve_parser.add_argument(
        "--clients", type=int, default=4, help="benign reader threads"
    )
    serve_parser.add_argument(
        "--adversarial-clients",
        type=int,
        default=1,
        help="reader threads that force fresh (cache-bypassing) snapshots",
    )
    serve_parser.add_argument(
        "--chunk-size", type=int, default=1024, help="ingest chunk size"
    )
    serve_parser.add_argument(
        "--json", action="store_true", help="emit the service report as JSON"
    )

    query_parser = subparsers.add_parser(
        "query",
        help=(
            "one-shot query against a service snapshot of a synthetic stream "
            "(no threads; the read path the serve clients exercise)"
        ),
    )
    _add_service_arguments(query_parser)
    query_parser.add_argument(
        "--kind",
        choices=("quantile", "heavy-hitters", "discrepancy"),
        default="quantile",
        help="query kind",
    )
    query_parser.add_argument(
        "--q", type=float, default=0.5, help="quantile rank for --kind quantile"
    )
    query_parser.add_argument(
        "--k", type=int, default=8, help="result count for --kind heavy-hitters"
    )
    query_parser.add_argument(
        "--fresh",
        action="store_true",
        help="force a fresh snapshot (bypass the staleness bound)",
    )
    query_parser.add_argument(
        "--json", action="store_true", help="emit the result as JSON"
    )

    analyze_parser = subparsers.add_parser(
        "analyze",
        help=(
            "run the project-invariant lint engine (RNG discipline, "
            "determinism, lock discipline, protocol contracts) over the "
            "package tree; exits 1 on findings"
        ),
    )
    analyze_parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="package tree to analyze (default: the installed repro package)",
    )
    analyze_parser.add_argument(
        "--tests",
        type=Path,
        default=None,
        help=(
            "test tree for cross-reference rules such as scenario coverage "
            "(default: the repo's tests/ directory when present)"
        ),
    )
    analyze_parser.add_argument(
        "--select",
        type=_str_list,
        default=[],
        metavar="RULES",
        help="comma-separated rule-id prefixes to run (e.g. RNG,DET001)",
    )
    analyze_parser.add_argument(
        "--ignore",
        type=_str_list,
        default=[],
        metavar="RULES",
        help="comma-separated rule-id prefixes to skip",
    )
    analyze_parser.add_argument(
        "--json", action="store_true", help="emit findings as JSON"
    )
    analyze_parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _add_service_arguments(parser: argparse.ArgumentParser) -> None:
    """Deployment knobs shared by ``serve`` and ``query``."""
    parser.add_argument("--n", type=int, default=100_000, help="stream length")
    parser.add_argument("--sites", type=int, default=4, help="shard count")
    parser.add_argument(
        "--capacity", type=int, default=256, help="per-site reservoir capacity"
    )
    parser.add_argument(
        "--universe-size", type=int, default=4_096, help="element universe size"
    )
    parser.add_argument("--seed", type=int, default=0, help="master random seed")
    parser.add_argument(
        "--staleness",
        type=int,
        default=0,
        help="bounded-staleness knob: serve a held snapshot up to this many rounds old",
    )


def _float_list(text: str) -> list[float]:
    return [float(part) for part in text.split(",") if part.strip()]


def _int_list(text: str) -> list[int]:
    return [int(part) for part in text.split(",") if part.strip()]


def _str_list(text: str) -> list[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trials", type=int, default=None, help="Monte-Carlo trials per row")
    parser.add_argument("--seed", type=int, default=None, help="master random seed")
    parser.add_argument("--epsilon", type=float, default=None, help="target approximation error")
    parser.add_argument("--delta", type=float, default=None, help="target failure probability")
    parser.add_argument("--stream-length", type=int, default=None, help="stream length n")
    parser.add_argument("--universe-size", type=int, default=None, help="ordered universe size")
    parser.add_argument(
        "--markdown", action="store_true", help="print tables as Markdown instead of text"
    )


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trials", type=int, default=None, help="Monte-Carlo trials per cell")
    parser.add_argument("--seed", type=int, default=None, help="master random seed")
    parser.add_argument("--epsilon", type=float, default=None, help="target approximation error")
    parser.add_argument("--stream-length", type=int, default=None, help="stream length n")
    parser.add_argument("--universe-size", type=int, default=None, help="ordered universe size")
    parser.add_argument("--workers", type=int, default=None, help="worker processes")
    parser.add_argument("--json", action="store_true", help="emit JSON instead of a table")
    parser.add_argument(
        "--markdown", action="store_true", help="print tables as Markdown instead of text"
    )


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    config = ExperimentConfig()
    overrides = {}
    for field_name, attribute in (
        ("trials", "trials"),
        ("seed", "seed"),
        ("epsilon", "epsilon"),
        ("delta", "delta"),
        ("stream_length", "stream_length"),
        ("universe_size", "universe_size"),
    ):
        value = getattr(args, attribute, None)
        if value is not None:
            overrides[field_name] = value
    if overrides:
        config = config.replace(**overrides)
    return config


def _scenario_overrides(args: argparse.Namespace) -> dict:
    overrides = {}
    for field_name in ("trials", "seed", "epsilon", "stream_length", "universe_size", "workers"):
        value = getattr(args, field_name, None)
        if value is not None:
            overrides[field_name] = value
    return overrides


def _emit(result: ExperimentResult, markdown: bool) -> str:
    if markdown:
        header = f"### {result.experiment_id}: {result.title}\n\n"
        notes = "".join(f"\n- {note}" for note in result.notes)
        return header + result.table().to_markdown() + ("\n" + notes if notes else "")
    return result.to_text()


def _load_scenario_config(path: Path) -> ScenarioConfig:
    """Read and validate a JSON ScenarioConfig file; every failure mode —
    unreadable file, malformed JSON, invalid fields — is a ConfigurationError
    so the CLI exits 2 with a message instead of a traceback."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigurationError(f"cannot read scenario config {path}: {exc}") from exc
    return ScenarioConfig.from_json(text)


def _resolve_scenario_source(args: argparse.Namespace) -> ScenarioConfig | None:
    """Enforce the name-xor-config contract shared by ``run`` and ``sweep``."""
    if args.name is not None and args.config is not None:
        raise ConfigurationError(
            "pass either a scenario name or --config, not both"
        )
    if args.name is None and args.config is None:
        raise ConfigurationError(
            "pass a scenario name (see 'scenario list') or --config FILE"
        )
    return None if args.config is None else _load_scenario_config(args.config)


def _run_scenario_command(args: argparse.Namespace) -> int:
    if args.scenario_command == "list":
        listing = list_scenarios()
        if args.json:
            print(json.dumps(listing, indent=2, sort_keys=True))
        else:
            for entry in listing:
                print(f"{entry['name']}: {entry['description']}")
        return 0

    if args.scenario_command == "fuzz":
        return _run_scenario_fuzz(args)

    if args.scenario_command == "matrix":
        # Imported lazily alongside run_matrix's registry walk.
        from .scenarios.matrix import run_matrix

        overrides = _scenario_overrides(args)
        if args.budget is not None:
            overrides["attack_budget"] = args.budget
        if args.endpoint:
            overrides["continuous"] = False
        matrix = run_matrix(
            scenarios=args.scenarios, defenses=args.defenses, **overrides
        )
        if args.json:
            print(matrix.to_json())
        elif args.markdown:
            print(matrix.to_markdown())
        else:
            print(matrix.to_text())
        return 0

    if args.scenario_command == "run":
        config = _resolve_scenario_source(args)
        overrides = _scenario_overrides(args)
        if args.budget is not None:
            overrides["attack_budget"] = args.budget
        if config is not None:
            result = run_config(config.replace(**overrides) if overrides else config)
        else:
            result = run_scenario(args.name, **overrides)
        if args.json:
            print(result.to_json())
        elif args.markdown:
            print(result.to_markdown())
        else:
            print(result.to_text())
        return 0

    # sweep
    config = _resolve_scenario_source(args)
    if config is not None:
        overrides = _scenario_overrides(args)
        results = sweep_config(
            config.replace(**overrides) if overrides else config,
            budgets=args.budgets,
            seeds=args.seeds,
        )
    else:
        results = sweep_scenario(
            args.name, budgets=args.budgets, seeds=args.seeds, **_scenario_overrides(args)
        )
    if args.json:
        print(json.dumps([result.to_dict() for result in results], indent=2, sort_keys=True))
    elif args.markdown:
        print(sweep_table(results).to_markdown())
    else:
        print(sweep_table(results).to_text())
    return 0


def _run_scenario_fuzz(args: argparse.Namespace) -> int:
    # Imported lazily: the fuzzer pulls in the sharded deployment layer,
    # which list/run/sweep don't need.
    from .scenarios.fuzz import fuzz

    if args.count < 1:
        raise ConfigurationError(f"--count must be >= 1, got {args.count}")
    report = fuzz(
        args.count,
        seed=args.seed,
        include_faults=args.faults,
        include_service=args.service,
    )
    if args.json:
        print(report.to_json())
    else:
        print(report.summary())
    return 0 if report.ok else 1


def _run_bench_command(args: argparse.Namespace) -> int:
    # Imported lazily: the bench module pulls in every sampler and both game
    # runners, which the other subcommands don't need.
    from .bench import (
        check_report,
        load_baseline,
        render_markdown_table,
        resolve_output,
        run_suite,
        write_report,
    )

    baseline = None
    if args.check:
        # The baseline is read *before* the fresh report is written: in CI
        # both default to the same canonical path, and the committed baseline
        # must be the one the fresh run is judged against.  load_baseline
        # raises ConfigurationError on a missing/corrupt file, which main()
        # surfaces as `error: ...` with exit code 2.
        _, baseline = load_baseline(args.baseline)
    report = run_suite(args.mode)
    # Checked runs compare against the committed baseline, so never clobber
    # it implicitly: without an explicit --output the fresh report lands
    # next to it as BENCH_*.fresh.json instead.
    output = resolve_output(args.output, checking=baseline is not None)
    path = write_report(report, output)
    print(f"wrote {path} ({len(report['results'])} records, mode={report['mode']})")
    if args.markdown:
        print()
        print(render_markdown_table(report))
    if baseline is not None:
        problems = check_report(report, baseline)
        if problems:
            for problem in problems:
                print(f"bench check: {problem}", file=sys.stderr)
            return 1
        print(f"bench check: ok ({len(report['results'])} records match the baseline op-set)")
    return 0


def _build_service(args: argparse.Namespace):
    """The canonical serve/query deployment: hash-routed reservoir shards.

    Returns ``(service, data)`` — a fresh :class:`~repro.service.QueryService`
    and the synthetic stream, both pure functions of the CLI knobs so a
    fixed ``(seed, schedule)`` reruns bit-identically.
    """
    # Imported lazily: the service layer pulls in the threaded runtime,
    # which the experiment subcommands don't need.
    import numpy as np

    from .distributed import ShardedSampler
    from .samplers import ReservoirSampler
    from .service import QueryService

    if args.n < 1:
        raise ConfigurationError(f"--n must be >= 1, got {args.n}")
    if args.sites < 1:
        raise ConfigurationError(f"--sites must be >= 1, got {args.sites}")
    if args.capacity < 1:
        raise ConfigurationError(f"--capacity must be >= 1, got {args.capacity}")
    if args.universe_size < 1:
        raise ConfigurationError(
            f"--universe-size must be >= 1, got {args.universe_size}"
        )
    if args.staleness < 0:
        raise ConfigurationError(f"--staleness must be >= 0, got {args.staleness}")

    capacity = args.capacity

    def site_factory(rng: "np.random.Generator") -> ReservoirSampler:
        return ReservoirSampler(capacity, seed=rng)

    deployment = ShardedSampler(
        args.sites, site_factory, strategy="hash", seed=args.seed
    )
    service = QueryService(
        deployment,
        staleness_rounds=args.staleness,
        universe_size=args.universe_size,
    )
    rng = np.random.default_rng(args.seed)
    data = [
        int(value) for value in rng.integers(1, args.universe_size + 1, size=args.n)
    ]
    return service, data


def _run_serve_command(args: argparse.Namespace) -> int:
    if args.clients < 0:
        raise ConfigurationError(f"--clients must be >= 0, got {args.clients}")
    if args.adversarial_clients < 0:
        raise ConfigurationError(
            f"--adversarial-clients must be >= 0, got {args.adversarial_clients}"
        )
    if args.chunk_size < 1:
        raise ConfigurationError(f"--chunk-size must be >= 1, got {args.chunk_size}")
    service, data = _build_service(args)
    report = service.serve(
        data,
        chunk_size=args.chunk_size,
        clients=args.clients,
        adversarial_clients=args.adversarial_clients,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    return 0


def _run_query_command(args: argparse.Namespace) -> int:
    service, data = _build_service(args)
    chunk = 4_096
    for start in range(0, len(data), chunk):
        service.ingest(data[start : start + chunk])
    kind = args.kind.replace("-", "_")
    result = service.query(kind, q=args.q, k=args.k, fresh=args.fresh)
    snapshot, _ = service.acquire(fresh=False)
    payload = {
        "kind": kind,
        "result": result,
        "rounds": snapshot.round_index,
        "snapshot_version": snapshot.version,
        "sample_size": snapshot.size,
        "staleness_rounds": args.staleness,
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(
            f"{kind} over {snapshot.size} sampled of {snapshot.round_index} rounds "
            f"(snapshot v{snapshot.version}): {result}"
        )
    return 0


def _run_analyze_command(args: argparse.Namespace) -> int:
    from .analysis import DEFAULT_RULES, AnalysisEngine

    if args.list_rules:
        for rule in DEFAULT_RULES:
            print(f"{rule.rule_id}  {rule.name}: {rule.description}")
        return 0
    package_root = args.root
    if package_root is None:
        package_root = Path(__file__).resolve().parent
    package_root = Path(package_root)
    if not package_root.is_dir():
        raise ConfigurationError(f"analysis root {package_root} is not a directory")
    tests_root = args.tests
    if tests_root is None:
        # src/repro layout: the repo's tests/ directory sits next to src/.
        candidate = package_root.parent.parent / "tests"
        tests_root = candidate if candidate.is_dir() else None
    elif not Path(tests_root).is_dir():
        raise ConfigurationError(f"tests root {tests_root} is not a directory")
    engine = AnalysisEngine(package_root, DEFAULT_RULES, tests_root=tests_root)
    project = engine.load()
    findings = engine.run(select=args.select, ignore=args.ignore, project=project)
    if args.json:
        payload = {
            "root": str(package_root),
            "checked_files": len(project.modules),
            "rules": [rule.rule_id for rule in DEFAULT_RULES],
            "select": args.select,
            "ignore": args.ignore,
            "findings": [finding.to_dict() for finding in findings],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.format())
        noun = "finding" if len(findings) == 1 else "findings"
        print(
            f"analyze: {len(findings)} {noun} across "
            f"{len(project.modules)} files"
        )
    return 1 if findings else 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        for identifier in EXPERIMENTS:
            print(identifier)
        return 0

    if args.command == "scenario":
        return _run_scenario_command(args)

    if args.command == "bench":
        return _run_bench_command(args)

    if args.command == "serve":
        return _run_serve_command(args)

    if args.command == "query":
        return _run_query_command(args)

    if args.command == "analyze":
        return _run_analyze_command(args)

    config = _config_from_args(args)
    if args.command == "run":
        result = run_experiment(args.experiment, config)
        print(_emit(result, args.markdown))
        return 0

    # run-all
    output_dir: Path | None = args.output_dir
    if output_dir is not None:
        output_dir.mkdir(parents=True, exist_ok=True)
    for identifier in EXPERIMENTS:
        result = run_experiment(identifier, config)
        rendered = _emit(result, args.markdown or output_dir is not None)
        if output_dir is not None:
            (output_dir / f"{identifier}.md").write_text(rendered + "\n", encoding="utf-8")
            print(f"wrote {output_dir / (identifier + '.md')}")
        else:
            print(rendered)
            print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
