"""Command-line interface: run the paper's experiments and print their tables.

Examples
--------
Run one experiment with default parameters::

    repro-experiments run E3

Run everything at reduced scale and write Markdown tables to a directory::

    repro-experiments run-all --trials 5 --output-dir results/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .experiments import EXPERIMENTS, ExperimentConfig, run_experiment
from .experiments.tables import ExperimentResult


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro-experiments`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduction experiments for 'The Adversarial Robustness of Sampling'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list available experiments")
    list_parser.set_defaults(command="list")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment identifier, e.g. E3")
    _add_config_arguments(run_parser)

    run_all_parser = subparsers.add_parser("run-all", help="run every experiment")
    _add_config_arguments(run_all_parser)
    run_all_parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="directory to write per-experiment Markdown tables into",
    )
    return parser


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trials", type=int, default=None, help="Monte-Carlo trials per row")
    parser.add_argument("--seed", type=int, default=None, help="master random seed")
    parser.add_argument("--epsilon", type=float, default=None, help="target approximation error")
    parser.add_argument("--delta", type=float, default=None, help="target failure probability")
    parser.add_argument("--stream-length", type=int, default=None, help="stream length n")
    parser.add_argument("--universe-size", type=int, default=None, help="ordered universe size")
    parser.add_argument(
        "--markdown", action="store_true", help="print tables as Markdown instead of text"
    )


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    config = ExperimentConfig()
    overrides = {}
    for field_name, attribute in (
        ("trials", "trials"),
        ("seed", "seed"),
        ("epsilon", "epsilon"),
        ("delta", "delta"),
        ("stream_length", "stream_length"),
        ("universe_size", "universe_size"),
    ):
        value = getattr(args, attribute, None)
        if value is not None:
            overrides[field_name] = value
    if overrides:
        config = config.replace(**overrides)
    return config


def _emit(result: ExperimentResult, markdown: bool) -> str:
    if markdown:
        header = f"### {result.experiment_id}: {result.title}\n\n"
        notes = "".join(f"\n- {note}" for note in result.notes)
        return header + result.table().to_markdown() + ("\n" + notes if notes else "")
    return result.to_text()


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for identifier in EXPERIMENTS:
            print(identifier)
        return 0

    config = _config_from_args(args)
    if args.command == "run":
        result = run_experiment(args.experiment, config)
        print(_emit(result, args.markdown))
        return 0

    # run-all
    output_dir: Path | None = args.output_dir
    if output_dir is not None:
        output_dir.mkdir(parents=True, exist_ok=True)
    for identifier in EXPERIMENTS:
        result = run_experiment(identifier, config)
        rendered = _emit(result, args.markdown or output_dir is not None)
        if output_dir is not None:
            (output_dir / f"{identifier}.md").write_text(rendered + "\n", encoding="utf-8")
            print(f"wrote {output_dir / (identifier + '.md')}")
        else:
            print(rendered)
            print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
