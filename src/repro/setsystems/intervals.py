"""Prefix and interval set systems over an ordered discrete universe.

These are the systems the paper works with most:

* the **prefix system** ``R = {[1, b] : b in U}`` over the well-ordered
  universe ``U = {1, ..., N}`` (used by the Figure-3 attack and the quantile
  application, Corollary 1.5); its VC dimension is 1 and ``|R| = N``;
* the **interval system** ``R = {[a, b] : a <= b in U}`` (the natural notion
  of "representative" for ordered data discussed in Section 1); its VC
  dimension is 2 and ``|R| = N (N + 1) / 2``.

Both systems admit near-linear worst-range discrepancy computations through a
Kolmogorov–Smirnov-style sweep over the cumulative density difference, which
is what makes the benchmark harness practical on streams of millions of
elements.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from collections.abc import Iterator, Sequence
from typing import Any

import numpy as np

from ..exceptions import ConfigurationError, EmptySampleError
from .base import DiscrepancyResult, Range, SetSystem


@dataclass(frozen=True)
class Prefix(Range):
    """The range ``[min_value, bound]`` (all universe elements ``<= bound``)."""

    bound: float

    def __contains__(self, element: Any) -> bool:
        return element <= self.bound

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Prefix(<= {self.bound})"


@dataclass(frozen=True)
class Interval(Range):
    """The closed range ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ConfigurationError(
                f"interval low endpoint {self.low} exceeds high endpoint {self.high}"
            )

    def __contains__(self, element: Any) -> bool:
        return self.low <= element <= self.high

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interval([{self.low}, {self.high}])"


def _cumulative_difference(
    stream: Sequence[Any], sample: Sequence[Any]
) -> tuple[list, np.ndarray]:
    """Return breakpoints and the cumulative density difference at each breakpoint.

    For each distinct value ``v`` appearing in the stream or the sample,
    computes ``F_stream(v) - F_sample(v)`` where ``F`` is the empirical CDF
    (fraction of elements ``<= v``).  The worst prefix discrepancy is the
    maximum absolute value of this array; the worst interval discrepancy is
    its maximum minus its minimum (also considering the implicit 0 before the
    smallest breakpoint).

    The computation only needs the *order* of the values, not their
    magnitudes: when elements are huge Python integers (the Figure-3 attack
    uses universes of thousands of bits) the fast numpy path would overflow,
    so a pure-Python bisection fallback is used instead.
    """
    if len(sample) == 0:
        raise EmptySampleError("an empty sample is never an epsilon-approximation")
    stream_sorted = sorted(stream)
    sample_sorted = sorted(sample)
    if _requires_exact_arithmetic(stream_sorted, sample_sorted):
        return _cumulative_difference_exact(stream_sorted, sample_sorted)
    try:
        stream_values = np.asarray(stream_sorted, dtype=float)
        sample_values = np.asarray(sample_sorted, dtype=float)
        if not (np.isfinite(stream_values).all() and np.isfinite(sample_values).all()):
            raise OverflowError("non-finite values after float conversion")
    except (OverflowError, ValueError):
        return _cumulative_difference_exact(stream_sorted, sample_sorted)
    breakpoints = np.unique(np.concatenate([stream_values, sample_values]))
    stream_cdf = np.searchsorted(stream_values, breakpoints, side="right") / len(stream_values)
    sample_cdf = np.searchsorted(sample_values, breakpoints, side="right") / len(sample_values)
    return list(breakpoints), stream_cdf - sample_cdf


def _requires_exact_arithmetic(stream_sorted: list, sample_sorted: list) -> bool:
    """True when elements are integers too large for IEEE doubles to keep distinct.

    Converting integers above ``2^53`` to floats can merge adjacent values,
    which would silently *understate* the discrepancy of attack streams; such
    data is routed to the exact (order-comparison) path instead.
    """
    extremes = (stream_sorted[0], stream_sorted[-1], sample_sorted[0], sample_sorted[-1])
    return any(isinstance(value, int) and abs(value) > 2**53 for value in extremes)


def _cumulative_difference_exact(stream_sorted: list, sample_sorted: list) -> tuple[list, np.ndarray]:
    """Order-based fallback of :func:`_cumulative_difference` for huge integers."""
    breakpoints: list = []
    for value in _merge_unique(stream_sorted, sample_sorted):
        breakpoints.append(value)
    stream_cdf = np.array(
        [bisect.bisect_right(stream_sorted, value) / len(stream_sorted) for value in breakpoints]
    )
    sample_cdf = np.array(
        [bisect.bisect_right(sample_sorted, value) / len(sample_sorted) for value in breakpoints]
    )
    return breakpoints, stream_cdf - sample_cdf


def _merge_unique(first: list, second: list) -> list:
    """Merge two sorted lists into a sorted list of distinct values."""
    merged: list = []
    i = j = 0
    while i < len(first) or j < len(second):
        if j >= len(second) or (i < len(first) and first[i] <= second[j]):
            candidate = first[i]
            i += 1
        else:
            candidate = second[j]
            j += 1
        if not merged or candidate != merged[-1]:
            merged.append(candidate)
    return merged


class PrefixSystem(SetSystem):
    """The one-sided interval (prefix) system ``{[1, b] : b in U}`` over ``U = [N]``.

    Parameters
    ----------
    universe_size:
        ``N``, the number of elements in the ordered universe ``{1, ..., N}``.
    """

    name = "prefixes"

    def __init__(self, universe_size: int) -> None:
        if universe_size < 1:
            raise ConfigurationError(f"universe size must be >= 1, got {universe_size}")
        self.universe_size = int(universe_size)

    def ranges(self) -> Iterator[Prefix]:
        for bound in range(1, self.universe_size + 1):
            yield Prefix(bound)

    def cardinality(self) -> int:
        return self.universe_size

    def vc_dimension(self) -> int:
        # Prefixes over a totally ordered universe shatter any single point but
        # no pair (the smaller point of a pair cannot be excluded while the
        # larger is included).
        return 1

    def contains_element(self, element: Any) -> bool:
        return 1 <= element <= self.universe_size and float(element).is_integer()

    def max_discrepancy(
        self, stream: Sequence[Any], sample: Sequence[Any]
    ) -> DiscrepancyResult:
        breakpoints, difference = _cumulative_difference(stream, sample)
        index = int(np.argmax(np.abs(difference)))
        return DiscrepancyResult(
            error=float(abs(difference[index])),
            witness=Prefix(breakpoints[index]),
            exact=True,
            ranges_examined=len(breakpoints),
        )

    def make_tracker(self, stream_length=None):
        from .tracker import DenseCountTracker, PrefixDiscrepancyTracker

        if not DenseCountTracker.supports_universe(self.universe_size, stream_length):
            return None
        return PrefixDiscrepancyTracker(self.universe_size)


class IntervalSystem(SetSystem):
    """The system of all closed intervals ``{[a, b] : a <= b in U}`` over ``U = [N]``."""

    name = "intervals"

    def __init__(self, universe_size: int) -> None:
        if universe_size < 1:
            raise ConfigurationError(f"universe size must be >= 1, got {universe_size}")
        self.universe_size = int(universe_size)

    def ranges(self) -> Iterator[Interval]:
        for low in range(1, self.universe_size + 1):
            for high in range(low, self.universe_size + 1):
                yield Interval(low, high)

    def cardinality(self) -> int:
        return self.universe_size * (self.universe_size + 1) // 2

    def vc_dimension(self) -> int:
        # Intervals shatter any two points but no three (the middle point of a
        # sorted triple cannot be excluded while the outer two are included).
        return 2 if self.universe_size >= 2 else 1

    def contains_element(self, element: Any) -> bool:
        return 1 <= element <= self.universe_size and float(element).is_integer()

    def max_discrepancy(
        self, stream: Sequence[Any], sample: Sequence[Any]
    ) -> DiscrepancyResult:
        breakpoints, difference = _cumulative_difference(stream, sample)
        # The density difference of the interval (a, b] equals D(b) - D(a)
        # where D is the cumulative difference (with D = 0 before the first
        # breakpoint).  The worst interval therefore spans from the minimiser
        # to the maximiser of D (in either order).
        padded = np.concatenate([[0.0], difference])
        max_index = int(np.argmax(padded))
        min_index = int(np.argmin(padded))
        error = float(padded[max_index] - padded[min_index])
        if error == 0.0:
            return DiscrepancyResult(
                error=0.0,
                witness=Prefix(breakpoints[0]),
                exact=True,
                ranges_examined=len(breakpoints) + 1,
            )

        def _bound(index: int) -> Any:
            # Index 0 corresponds to "before the smallest breakpoint".
            if index == 0:
                return None
            return breakpoints[index - 1]

        endpoints = sorted(
            (_bound(min_index), _bound(max_index)),
            key=lambda value: (value is not None, value),
        )
        left, right = endpoints
        if left is None:
            witness: Range = Prefix(right)
        else:
            # The witness interval opens just after `left`; integer universes
            # step by one, continuous data by the smallest representable step.
            open_left = left + 1 if isinstance(left, int) else np.nextafter(left, math.inf)
            witness = Interval(open_left, right)
        return DiscrepancyResult(
            error=error,
            witness=witness,
            exact=True,
            ranges_examined=len(breakpoints) + 1,
        )

    def make_tracker(self, stream_length=None):
        from .tracker import DenseCountTracker, IntervalDiscrepancyTracker

        if not DenseCountTracker.supports_universe(self.universe_size, stream_length):
            return None
        return IntervalDiscrepancyTracker(self.universe_size)


class ContinuousPrefixSystem(SetSystem):
    """Prefix system over the continuous universe ``[0, 1]``.

    This is the set system implicit in the introduction's bisection attack:
    the universe is the real interval ``[0, 1]`` and the ranges are all
    prefixes ``[0, b]``.  Its cardinality is infinite, so the adaptive bound
    of Theorem 1.2 is vacuous here — which is exactly the point of the
    introduction's example.  :meth:`cardinality` therefore raises; callers
    needing a finite surrogate should discretise via :class:`PrefixSystem`.
    """

    name = "continuous-prefixes"

    def __init__(self, low: float = 0.0, high: float = 1.0) -> None:
        if not low < high:
            raise ConfigurationError(f"need low < high, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def ranges(self) -> Iterator[Prefix]:
        raise ConfigurationError(
            "the continuous prefix system has uncountably many ranges; "
            "use max_discrepancy, which only needs data-defined breakpoints"
        )

    def cardinality(self) -> int:
        raise ConfigurationError("the continuous prefix system has infinite cardinality")

    def log_cardinality(self) -> float:
        return math.inf

    def vc_dimension(self) -> int:
        return 1

    def contains_element(self, element: Any) -> bool:
        return self.low <= element <= self.high

    def max_discrepancy(
        self, stream: Sequence[Any], sample: Sequence[Any]
    ) -> DiscrepancyResult:
        breakpoints, difference = _cumulative_difference(stream, sample)
        index = int(np.argmax(np.abs(difference)))
        return DiscrepancyResult(
            error=float(abs(difference[index])),
            witness=Prefix(breakpoints[index]),
            exact=True,
            ranges_examined=len(breakpoints),
        )
