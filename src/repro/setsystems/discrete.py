"""Explicitly enumerated set systems over small universes.

These are the workhorse of the test suite and of the exact VC-dimension
computations: every range is stored as a frozenset, so densities, shattering
and discrepancies can be verified by brute force and compared against the
structured systems' fast algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Collection, Iterable, Iterator, Sequence
from typing import Any

from ..exceptions import ConfigurationError
from .base import Range, SetSystem
from .vc import exact_vc_dimension


@dataclass(frozen=True)
class ExplicitRange(Range):
    """A range stored as an explicit frozenset of universe elements."""

    members: frozenset

    def __contains__(self, element: Any) -> bool:
        return element in self.members

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        preview = sorted(self.members, key=repr)[:6]
        suffix = ", ..." if len(self.members) > 6 else ""
        return f"ExplicitRange({{{', '.join(map(repr, preview))}{suffix}}})"


class ExplicitSetSystem(SetSystem):
    """A set system given by an explicit universe and an explicit range family.

    Parameters
    ----------
    universe:
        The universe ``U`` as an iterable of hashable elements.
    range_family:
        The family ``R`` as an iterable of element collections.  Duplicate
        ranges (as sets) are collapsed, matching the paper's set semantics of
        ``R ⊆ 2^U``.
    """

    name = "explicit"

    def __init__(
        self, universe: Iterable[Any], range_family: Iterable[Collection[Any]]
    ) -> None:
        self.universe = frozenset(universe)
        if not self.universe:
            raise ConfigurationError("the universe of a set system must be non-empty")
        ranges: set[frozenset] = set()
        for members in range_family:
            members_set = frozenset(members)
            if not members_set <= self.universe:
                extra = sorted(members_set - self.universe, key=repr)[:3]
                raise ConfigurationError(
                    f"range contains elements outside the universe: {extra}"
                )
            ranges.add(members_set)
        if not ranges:
            raise ConfigurationError("the range family of a set system must be non-empty")
        self._ranges = sorted(ranges, key=lambda r: (len(r), sorted(map(repr, r))))
        self._vc_dimension: int | None = None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def ranges(self) -> Iterator[ExplicitRange]:
        for members in self._ranges:
            yield ExplicitRange(members)

    def cardinality(self) -> int:
        return len(self._ranges)

    def vc_dimension(self) -> int:
        if self._vc_dimension is None:
            self._vc_dimension = exact_vc_dimension(self.universe, self._ranges)
        return self._vc_dimension

    def contains_element(self, element: Any) -> bool:
        return element in self.universe

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def prefixes(cls, universe_size: int) -> "ExplicitSetSystem":
        """Explicit prefix system over ``{1, ..., N}`` (for cross-checking)."""
        universe = range(1, universe_size + 1)
        family = [set(range(1, b + 1)) for b in range(1, universe_size + 1)]
        system = cls(universe, family)
        system.name = "explicit-prefixes"
        return system

    @classmethod
    def intervals(cls, universe_size: int) -> "ExplicitSetSystem":
        """Explicit interval system over ``{1, ..., N}`` (for cross-checking)."""
        universe = range(1, universe_size + 1)
        family = [
            set(range(a, b + 1))
            for a in range(1, universe_size + 1)
            for b in range(a, universe_size + 1)
        ]
        system = cls(universe, family)
        system.name = "explicit-intervals"
        return system

    @classmethod
    def singletons(cls, universe_size: int) -> "ExplicitSetSystem":
        """Explicit singleton system over ``{1, ..., N}`` (for cross-checking)."""
        universe = range(1, universe_size + 1)
        family = [{value} for value in universe]
        system = cls(universe, family)
        system.name = "explicit-singletons"
        return system

    @classmethod
    def power_set(cls, universe: Sequence[Any]) -> "ExplicitSetSystem":
        """The full power set of a (small) universe — maximal VC dimension."""
        elements = list(universe)
        if len(elements) > 16:
            raise ConfigurationError(
                "power_set is only supported for universes of at most 16 elements"
            )
        family = []
        for mask in range(1, 2 ** len(elements)):
            family.append({elements[i] for i in range(len(elements)) if mask >> i & 1})
        family.append(set())
        system = cls(elements, family)
        system.name = "power-set"
        return system
