"""Axis-aligned rectangle (box) set systems over the grid universe ``[m]^d``.

Section 1.2 of the paper discusses range queries: with ``R`` the family of
axis-parallel boxes over ``U = [m]^d``, ``ln |R| = O(d ln m)`` and a sample of
size ``O((d ln m + ln 1/delta) / eps^2)`` answers every box-counting query up
to additive error ``eps * n``, even against an adaptive adversary.

The number of boxes is ``(m (m + 1) / 2)^d``, so exhaustive enumeration is
infeasible beyond tiny grids.  The discrepancy computation therefore works
over the *coordinate-compressed* candidate set derived from the data: for
axis-aligned boxes the worst box can always be chosen with each face touching
a data point, so restricting corners to coordinates appearing in the stream or
sample loses nothing.  When even the compressed candidate set is too large the
computation falls back to a randomised subset and reports ``exact=False``.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from collections.abc import Iterator, Sequence
from typing import Any

import numpy as np

from ..exceptions import ConfigurationError, EmptySampleError
from ..rng import RandomState, ensure_generator
from .base import DiscrepancyResult, Range, SetSystem


@dataclass(frozen=True)
class Box(Range):
    """An axis-aligned closed box ``[lows[0], highs[0]] x ... x [lows[d-1], highs[d-1]]``."""

    lows: tuple[float, ...]
    highs: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.lows) != len(self.highs):
            raise ConfigurationError("box lows and highs must have the same dimension")
        for low, high in zip(self.lows, self.highs):
            if low > high:
                raise ConfigurationError(f"box low {low} exceeds high {high}")

    @property
    def dimension(self) -> int:
        return len(self.lows)

    def __contains__(self, element: Any) -> bool:
        point = tuple(element) if not isinstance(element, tuple) else element
        if len(point) != self.dimension:
            return False
        return all(
            low <= coordinate <= high
            for coordinate, low, high in zip(point, self.lows, self.highs)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sides = ", ".join(f"[{lo}, {hi}]" for lo, hi in zip(self.lows, self.highs))
        return f"Box({sides})"


class RectangleSystem(SetSystem):
    """All axis-aligned boxes over the grid universe ``[m]^d``.

    Parameters
    ----------
    side:
        Grid side length ``m``; coordinates range over ``{1, ..., m}``.
    dimension:
        Number of dimensions ``d``.
    max_exact_candidates:
        Cap on the number of candidate boxes the exact discrepancy sweep will
        enumerate; above it a randomised candidate subset is used and the
        result is flagged ``exact=False``.
    """

    name = "axis-aligned-boxes"

    def __init__(
        self,
        side: int,
        dimension: int,
        max_exact_candidates: int = 2_000_000,
        seed: RandomState = None,
    ) -> None:
        if side < 1:
            raise ConfigurationError(f"grid side must be >= 1, got {side}")
        if dimension < 1:
            raise ConfigurationError(f"dimension must be >= 1, got {dimension}")
        self.side = int(side)
        self.dimension = int(dimension)
        self.max_exact_candidates = int(max_exact_candidates)
        self._rng = ensure_generator(seed)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def ranges(self) -> Iterator[Box]:
        intervals_per_axis = [
            [(low, high) for low in range(1, self.side + 1) for high in range(low, self.side + 1)]
            for _ in range(self.dimension)
        ]
        for combination in itertools.product(*intervals_per_axis):
            lows = tuple(float(low) for low, _ in combination)
            highs = tuple(float(high) for _, high in combination)
            yield Box(lows, highs)

    def cardinality(self) -> int:
        per_axis = self.side * (self.side + 1) // 2
        return per_axis**self.dimension

    def log_cardinality(self) -> float:
        per_axis = self.side * (self.side + 1) // 2
        return self.dimension * math.log(per_axis)

    def vc_dimension(self) -> int:
        # Axis-aligned boxes in d dimensions have VC dimension exactly 2d
        # (for side >= 2; a single-point universe is degenerate).
        if self.side < 2:
            return 1
        return 2 * self.dimension

    def contains_element(self, element: Any) -> bool:
        try:
            point = tuple(element)
        except TypeError:
            return False
        if len(point) != self.dimension:
            return False
        return all(
            1 <= coordinate <= self.side and float(coordinate).is_integer()
            for coordinate in point
        )

    # ------------------------------------------------------------------
    # Discrepancy
    # ------------------------------------------------------------------
    def max_discrepancy(
        self, stream: Sequence[Any], sample: Sequence[Any]
    ) -> DiscrepancyResult:
        if len(sample) == 0:
            raise EmptySampleError("an empty sample is never an epsilon-approximation")
        stream_points = np.asarray([tuple(point) for point in stream], dtype=float)
        sample_points = np.asarray([tuple(point) for point in sample], dtype=float)

        candidate_axes: list[np.ndarray] = []
        for axis in range(self.dimension):
            values = np.unique(
                np.concatenate([stream_points[:, axis], sample_points[:, axis]])
            )
            candidate_axes.append(values)

        per_axis_intervals = [
            [(low, high) for i, low in enumerate(values) for high in values[i:]]
            for values in candidate_axes
        ]
        total_candidates = 1
        for intervals in per_axis_intervals:
            total_candidates *= len(intervals)

        exact = total_candidates <= self.max_exact_candidates
        if exact:
            candidates: Iterator[tuple[tuple[float, float], ...]] = itertools.product(
                *per_axis_intervals
            )
            examined_cap = total_candidates
        else:
            examined_cap = self.max_exact_candidates
            candidates = (
                tuple(
                    intervals[int(self._rng.integers(0, len(intervals)))]
                    for intervals in per_axis_intervals
                )
                for _ in range(examined_cap)
            )

        worst_error = -1.0
        worst_box: Box | None = None
        examined = 0
        for combination in candidates:
            examined += 1
            lows = tuple(low for low, _ in combination)
            highs = tuple(high for _, high in combination)
            stream_density = _box_density(stream_points, lows, highs)
            sample_density = _box_density(sample_points, lows, highs)
            error = abs(stream_density - sample_density)
            if error > worst_error:
                worst_error = error
                worst_box = Box(lows, highs)
        return DiscrepancyResult(
            error=max(worst_error, 0.0),
            witness=worst_box,
            exact=exact,
            ranges_examined=examined,
        )


def _box_density(
    points: np.ndarray, lows: tuple[float, ...], highs: tuple[float, ...]
) -> float:
    """Fraction of ``points`` (an ``(n, d)`` array) falling in the closed box."""
    if points.size == 0:
        return 0.0
    inside = np.ones(len(points), dtype=bool)
    for axis, (low, high) in enumerate(zip(lows, highs)):
        inside &= (points[:, axis] >= low) & (points[:, axis] <= high)
    return float(np.count_nonzero(inside)) / len(points)
