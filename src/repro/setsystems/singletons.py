"""The singleton set system, used by the heavy-hitters application.

For a universe ``U``, the singleton system is ``R = {{a} : a in U}``.  An
epsilon-approximation with respect to it preserves every element's relative
frequency up to an additive ``epsilon``, which is exactly what the
sample-and-count heavy-hitters algorithm of Corollary 1.6 needs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from collections.abc import Iterator, Sequence
from typing import Any

from ..exceptions import ConfigurationError, EmptySampleError
from .base import DiscrepancyResult, Range, SetSystem


@dataclass(frozen=True)
class Singleton(Range):
    """The range containing exactly one universe element."""

    value: Any

    def __contains__(self, element: Any) -> bool:
        return element == self.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Singleton({self.value!r})"


class SingletonSystem(SetSystem):
    """``R = {{a} : a in U}`` over the discrete universe ``U = {1, ..., N}``.

    The VC dimension of the singleton system is 1 (a single point is
    shattered; no pair is, because no singleton contains both points), while
    its cardinality is ``N`` — another instance of the gap the paper is about.
    """

    name = "singletons"

    def __init__(self, universe_size: int) -> None:
        if universe_size < 1:
            raise ConfigurationError(f"universe size must be >= 1, got {universe_size}")
        self.universe_size = int(universe_size)

    def ranges(self) -> Iterator[Singleton]:
        for value in range(1, self.universe_size + 1):
            yield Singleton(value)

    def cardinality(self) -> int:
        return self.universe_size

    def vc_dimension(self) -> int:
        return 1

    def contains_element(self, element: Any) -> bool:
        return 1 <= element <= self.universe_size and float(element).is_integer()

    def max_discrepancy(
        self, stream: Sequence[Any], sample: Sequence[Any]
    ) -> DiscrepancyResult:
        if len(sample) == 0:
            raise EmptySampleError("an empty sample is never an epsilon-approximation")
        stream_counts = Counter(stream)
        sample_counts = Counter(sample)
        worst_error = 0.0
        worst_value: Any = None
        examined = 0
        for value in stream_counts.keys() | sample_counts.keys():
            examined += 1
            stream_density = stream_counts.get(value, 0) / len(stream)
            sample_density = sample_counts.get(value, 0) / len(sample)
            error = abs(stream_density - sample_density)
            if error > worst_error or worst_value is None:
                worst_error = error
                worst_value = value
        return DiscrepancyResult(
            error=worst_error,
            witness=Singleton(worst_value),
            exact=True,
            ranges_examined=examined,
        )

    def make_tracker(self, stream_length=None):
        from .tracker import DenseCountTracker, SingletonDiscrepancyTracker

        if not DenseCountTracker.supports_universe(self.universe_size, stream_length):
            return None
        return SingletonDiscrepancyTracker(self.universe_size)
