"""Halfspace set systems, used by the center-point application (Section 1.2).

A *halfspace* in ``R^d`` is ``{x : <normal, x> >= offset}``.  A point ``c`` is
a ``beta``-center point of a point set ``X`` if every closed halfspace that
contains ``c`` contains at least ``beta * |X|`` points of ``X``.  The paper
(citing [CEM+96]) notes that an ``eps``-approximation with respect to
halfspaces lets one compute center points of the stream from the sample.

Exact worst-halfspace discrepancy is an expensive geometric computation in
high dimension; this module provides an exact sweep for ``d = 1`` and ``d = 2``
(where the candidate halfspaces are determined by single points resp. ordered
pairs of points) and a direction-sampling evaluation for higher dimensions,
flagged ``exact=False``.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from collections.abc import Iterator, Sequence
from typing import Any

import numpy as np

from ..exceptions import ConfigurationError, EmptySampleError
from ..rng import RandomState, ensure_generator
from .base import DiscrepancyResult, Range, SetSystem


@dataclass(frozen=True)
class Halfspace(Range):
    """The closed halfspace ``{x : <normal, x> >= offset}``."""

    normal: tuple[float, ...]
    offset: float

    def __contains__(self, element: Any) -> bool:
        point = tuple(element)
        if len(point) != len(self.normal):
            return False
        value = sum(n * x for n, x in zip(self.normal, point))
        return value >= self.offset - 1e-12

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Halfspace(normal={self.normal}, offset={self.offset})"


class HalfspaceSystem(SetSystem):
    """All closed halfspaces over a bounded grid universe ``[m]^d``.

    The system is formally infinite (any normal direction is allowed), but
    over a finite universe of ``m^d`` points only finitely many distinct
    subsets arise; by the Sauer–Shelah lemma their number is at most
    ``O((m^d)^(d+1))``, so ``ln |R| <= (d + 1) d ln m + O(1)``.  That is the
    cardinality surrogate :meth:`log_cardinality` reports, and it is the value
    the robust sample-size bound of Theorem 1.2 uses for this system.
    """

    name = "halfspaces"

    def __init__(
        self,
        side: int,
        dimension: int,
        directions: int = 64,
        seed: RandomState = None,
    ) -> None:
        if side < 1:
            raise ConfigurationError(f"grid side must be >= 1, got {side}")
        if dimension < 1:
            raise ConfigurationError(f"dimension must be >= 1, got {dimension}")
        if directions < 1:
            raise ConfigurationError(f"directions must be >= 1, got {directions}")
        self.side = int(side)
        self.dimension = int(dimension)
        self.directions = int(directions)
        self._rng = ensure_generator(seed)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def ranges(self) -> Iterator[Halfspace]:
        """Yield a representative grid of halfspaces (directions x thresholds).

        The true family is infinite; this enumeration is the finite
        representative family used for explicit-range computations and has
        the same order of log-cardinality.
        """
        for direction in self._direction_grid():
            projections = sorted(
                {
                    float(np.dot(direction, point))
                    for point in itertools.product(range(1, self.side + 1), repeat=self.dimension)
                }
            ) if self.side**self.dimension <= 4096 else list(
                np.linspace(-self.side * self.dimension, self.side * self.dimension, 65)
            )
            for offset in projections:
                yield Halfspace(tuple(float(x) for x in direction), float(offset))

    def cardinality(self) -> int:
        # Sauer–Shelah bound on the number of distinct halfspace subsets of a
        # universe of m^d points with VC dimension d + 1.
        points = self.side**self.dimension
        bound = sum(math.comb(points, i) for i in range(0, self.dimension + 2))
        return bound

    def log_cardinality(self) -> float:
        points = self.side**self.dimension
        # ln sum_{i<=d+1} C(points, i) <= (d+1) ln(points) + O(1); use the
        # exact sum when it is computable quickly.
        if points <= 10_000:
            return math.log(self.cardinality())
        return (self.dimension + 1) * math.log(points) + 1.0

    def vc_dimension(self) -> int:
        return self.dimension + 1

    def contains_element(self, element: Any) -> bool:
        try:
            point = tuple(element)
        except TypeError:
            return False
        if len(point) != self.dimension:
            return False
        return all(1 <= coordinate <= self.side for coordinate in point)

    # ------------------------------------------------------------------
    # Discrepancy
    # ------------------------------------------------------------------
    def max_discrepancy(
        self, stream: Sequence[Any], sample: Sequence[Any]
    ) -> DiscrepancyResult:
        if len(sample) == 0:
            raise EmptySampleError("an empty sample is never an epsilon-approximation")
        stream_points = np.asarray([tuple(point) for point in stream], dtype=float)
        sample_points = np.asarray([tuple(point) for point in sample], dtype=float)
        if stream_points.ndim == 1:
            stream_points = stream_points.reshape(-1, 1)
            sample_points = sample_points.reshape(-1, 1)

        worst_error = -1.0
        worst_witness: Halfspace | None = None
        examined = 0
        directions = self._direction_grid()
        for direction in directions:
            stream_projection = stream_points @ direction
            sample_projection = sample_points @ direction
            thresholds = np.unique(
                np.concatenate([stream_projection, sample_projection])
            )
            stream_sorted = np.sort(stream_projection)
            sample_sorted = np.sort(sample_projection)
            # Density of {x : <dir, x> >= t} is 1 - F(t^-); scanning the
            # breakpoints of both empirical CDFs covers every distinct subset
            # induced along this direction.
            stream_ge = 1.0 - np.searchsorted(stream_sorted, thresholds, side="left") / len(
                stream_sorted
            )
            sample_ge = 1.0 - np.searchsorted(sample_sorted, thresholds, side="left") / len(
                sample_sorted
            )
            errors = np.abs(stream_ge - sample_ge)
            index = int(np.argmax(errors))
            examined += len(thresholds)
            if errors[index] > worst_error:
                worst_error = float(errors[index])
                worst_witness = Halfspace(
                    tuple(float(x) for x in direction), float(thresholds[index])
                )
        # Exact only in one dimension, where the two signed directions cover
        # every halfspace; in higher dimensions the direction grid is a
        # (dense) sample of the sphere.
        exact = self.dimension == 1
        return DiscrepancyResult(
            error=max(worst_error, 0.0),
            witness=worst_witness,
            exact=exact,
            ranges_examined=examined,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _direction_grid(self) -> list[np.ndarray]:
        """Return unit directions used for projection sweeps."""
        if self.dimension == 1:
            return [np.array([1.0]), np.array([-1.0])]
        if self.dimension == 2:
            angles = np.linspace(0.0, 2.0 * math.pi, self.directions, endpoint=False)
            return [np.array([math.cos(a), math.sin(a)]) for a in angles]
        directions = self._rng.normal(size=(self.directions, self.dimension))
        norms = np.linalg.norm(directions, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return list(directions / norms)
