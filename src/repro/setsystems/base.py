"""Abstract interfaces for set systems and ranges.

A *set system* ``(U, R)`` is a universe ``U`` together with a family of
subsets ``R`` (Definition 1.1 of the paper).  The key quantities a set system
must expose for the robustness analysis are:

* the **cardinality** ``|R|`` (the adaptive sample-size bound of Theorem 1.2
  scales with ``ln |R|``),
* the **VC dimension** (the static bound scales with it instead),
* **densities** ``d_R(X)`` of a range within a sequence, and
* the **discrepancy** ``sup_R |d_R(X) - d_R(S)|`` between a stream and a
  sample, which decides whether the sample is an epsilon-approximation.

Concrete systems (prefixes, intervals, singletons, rectangles, halfspaces and
explicitly enumerated systems) live in sibling modules and may override the
generic discrepancy computation with far faster specialised algorithms.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from collections.abc import Iterator, Sequence
from typing import Any

from ..exceptions import EmptySampleError


@dataclass(frozen=True)
class DiscrepancyResult:
    """Result of a worst-range discrepancy computation.

    Attributes
    ----------
    error:
        The supremum (or, for sampled evaluations, the maximum found) of
        ``|d_R(stream) - d_R(sample)|`` over the ranges examined.
    witness:
        A range achieving ``error``; useful for debugging attacks and for the
        lower-bound experiments, where the witness should be a prefix ending
        at the largest sampled element.
    exact:
        ``True`` when every range of the system was (implicitly or
        explicitly) considered, ``False`` when the computation only examined a
        candidate subset (e.g. Monte-Carlo evaluation of halfspace systems).
    ranges_examined:
        Number of ranges whose densities were effectively compared.
    """

    error: float
    witness: Any
    exact: bool
    ranges_examined: int


class Range(ABC):
    """A single range (subset of the universe) that supports membership tests."""

    @abstractmethod
    def __contains__(self, element: Any) -> bool:
        """Return ``True`` if ``element`` belongs to this range."""


class SetSystem(ABC):
    """A set system ``(U, R)`` as used throughout the paper.

    Subclasses must implement range enumeration, cardinality and VC dimension.
    The density and discrepancy helpers defined here work for any system but
    run in time proportional to the number of ranges; subclasses with
    structure (prefixes, intervals, singletons) override
    :meth:`max_discrepancy` with near-linear algorithms.
    """

    #: Human-readable name used in experiment tables.
    name: str = "set-system"

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @abstractmethod
    def ranges(self) -> Iterator[Range]:
        """Yield every range of the system.

        For systems whose cardinality is astronomically large this may be
        impractical to exhaust; callers that only need the worst range should
        prefer :meth:`max_discrepancy`, which concrete systems implement
        without enumeration.
        """

    @abstractmethod
    def cardinality(self) -> int:
        """Return ``|R|``, the number of ranges in the system."""

    @abstractmethod
    def vc_dimension(self) -> int:
        """Return the VC dimension of the system."""

    @abstractmethod
    def contains_element(self, element: Any) -> bool:
        """Return ``True`` if ``element`` lies in the universe ``U``."""

    def log_cardinality(self) -> float:
        """Return ``ln |R|``, the quantity appearing in Theorem 1.2."""
        return math.log(self.cardinality())

    # ------------------------------------------------------------------
    # Densities and discrepancy
    # ------------------------------------------------------------------
    def density(self, range_: Range, elements: Sequence[Any]) -> float:
        """Return ``d_R(elements)``: the fraction of ``elements`` inside ``range_``.

        Repetitions count, exactly as in the paper: the density of a range in
        a sequence is the fraction of *positions* whose element lies in the
        range.
        """
        if len(elements) == 0:
            raise EmptySampleError("density of a range in an empty sequence is undefined")
        hits = sum(1 for element in elements if element in range_)
        return hits / len(elements)

    def max_discrepancy(
        self, stream: Sequence[Any], sample: Sequence[Any]
    ) -> DiscrepancyResult:
        """Return the worst-range density discrepancy between stream and sample.

        The generic implementation enumerates every range; subclasses override
        it.  ``sample`` must be non-empty (Definition 1.1 applies only to
        non-empty samples).
        """
        if len(sample) == 0:
            raise EmptySampleError("an empty sample is never an epsilon-approximation")
        worst_error = 0.0
        worst_range: Any = None
        examined = 0
        for range_ in self.ranges():
            examined += 1
            error = abs(self.density(range_, stream) - self.density(range_, sample))
            if error > worst_error or worst_range is None:
                worst_error = error
                worst_range = range_
        return DiscrepancyResult(
            error=worst_error, witness=worst_range, exact=True, ranges_examined=examined
        )

    def make_tracker(self, stream_length: "Any" = None) -> "Any":
        """Return an incremental discrepancy tracker for this system, or ``None``.

        Systems with an online algorithm for their worst-range discrepancy
        (prefixes, intervals, singletons over a moderate integer universe)
        return a fresh :class:`~repro.setsystems.tracker.DiscrepancyTracker`;
        the tracker answers checkpoint queries against the growing stream
        without re-sorting it, which is what makes the continuous game of
        Figure 2 affordable with dense checkpoint schedules.  The default is
        ``None``, meaning "no incremental algorithm — recompute with
        :meth:`max_discrepancy`".

        ``stream_length``, when known, lets the system weigh the tracker's
        per-checkpoint cost (proportional to the universe) against the batch
        path's (proportional to the stream) and decline when a dense
        structure would be the slower choice.
        """
        return None

    def is_epsilon_approximation(
        self, stream: Sequence[Any], sample: Sequence[Any], epsilon: float
    ) -> bool:
        """Return ``True`` if ``sample`` is an ``epsilon``-approximation of ``stream``.

        This is Definition 1.1 verbatim: for every range ``R`` of the system,
        ``|d_R(stream) - d_R(sample)| <= epsilon``.
        """
        return self.max_discrepancy(stream, sample).error <= epsilon

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        """Return a serialisable description used by the experiment harness."""
        return {
            "name": self.name,
            "cardinality": self.cardinality(),
            "log_cardinality": self.log_cardinality(),
            "vc_dimension": self.vc_dimension(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(|R|={self.cardinality()}, vc={self.vc_dimension()})"
