"""Incremental discrepancy tracking for checkpoint-heavy game loops.

The continuous adaptive game (Figure 2 of the paper) judges the maintained
sample against *many* prefixes of the stream.  Recomputing
:meth:`SetSystem.max_discrepancy` from scratch at every checkpoint re-sorts
the entire stream prefix, which costs ``O(checkpoints * n log n)`` over a
game — the dominant cost of the continuous experiments at scale.

A :class:`DiscrepancyTracker` removes that cost for the structured systems
over an integer universe ``{1, ..., N}`` (prefixes, intervals, singletons):
it maintains the stream's per-value counts online, so each inserted stream
element costs ``O(1)``, and a checkpoint query is a single vectorised
``cumsum`` over the count arrays (``O(N + k)`` for a size-``k`` sample)
instead of a sort of the whole prefix.  The arithmetic is arranged so that
the reported error is **bit-identical** to the batch
:meth:`SetSystem.max_discrepancy` recomputation: both paths divide exact
integer counts by the exact stream / sample lengths, in the same order.

Trackers are obtained through :meth:`SetSystem.make_tracker`, which returns
``None`` for systems without an incremental algorithm; callers (notably
:func:`repro.adversary.run_continuous_game`) fall back to the batch path in
that case.  A tracker that encounters an element it cannot index (outside the
universe, non-integral, or astronomically large) raises
:class:`~repro.exceptions.TrackerUnsupportedError`; the game runner catches
it and falls back to the batch path mid-stream, so correctness never depends
on the tracker.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

from ..exceptions import (
    ConfigurationError,
    EmptySampleError,
    TrackerUnsupportedError,
)
from .base import DiscrepancyResult

__all__ = [
    "DiscrepancyTracker",
    "DenseCountTracker",
    "PrefixDiscrepancyTracker",
    "IntervalDiscrepancyTracker",
    "SingletonDiscrepancyTracker",
]


class DiscrepancyTracker(ABC):
    """Online view of one stream's discrepancy structure for one set system.

    The protocol is deliberately small:

    * :meth:`add` ingests the next stream element (amortised ``O(1)``);
    * :meth:`checkpoint` answers "what is the worst-range discrepancy between
      the stream so far and this sample snapshot?" without touching the raw
      stream again;
    * :meth:`reset` forgets everything so the tracker can replay a new game.

    The *sample* side is passed fresh at every checkpoint rather than being
    tracked through per-round updates: samples are small (``k ≪ n``) and
    samplers are free to mutate their state in ways no update log captures
    (sketch compactions, window evictions), so snapshot-based queries are the
    only contract that is safe for every :class:`~repro.samplers.base.StreamSampler`.
    """

    #: Name of the set system this tracker serves (for diagnostics).
    system_name: str = "set-system"

    @abstractmethod
    def add(self, element: Any) -> None:
        """Ingest the next stream element.

        Raises
        ------
        TrackerUnsupportedError
            If the element cannot be indexed by this tracker.  The tracker's
            state is unchanged in that case, so callers can fall back to a
            batch recomputation from their own copy of the stream.
        """

    def add_batch(self, elements: Iterable[Any]) -> None:
        """Ingest a batch of stream elements (subclasses may vectorise)."""
        for element in elements:
            self.add(element)

    @abstractmethod
    def checkpoint(self, sample: Sequence[Any]) -> DiscrepancyResult:
        """Return the worst-range discrepancy of ``sample`` vs the stream so far.

        Must agree exactly (bit-for-bit on the error) with the owning
        system's :meth:`~repro.setsystems.base.SetSystem.max_discrepancy`
        applied to the same stream prefix and sample.
        """

    @abstractmethod
    def reset(self) -> None:
        """Forget all stream state so the tracker can serve a new game."""

    @property
    @abstractmethod
    def stream_length(self) -> int:
        """Number of stream elements ingested so far."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(system={self.system_name!r}, n={self.stream_length})"


class DenseCountTracker(DiscrepancyTracker):
    """Shared machinery for trackers over the integer universe ``{1, ..., N}``.

    Maintains a dense ``int64`` count array indexed by value.  Insertion is a
    single array increment; subclasses turn the counts into their system's
    discrepancy with one vectorised pass.  Universes too large for a dense
    array (e.g. the ``2^Θ(n)``-sized universes of the Figure-3 attack) are
    rejected at construction time by :meth:`supports_universe`, and the
    owning system then simply returns no tracker.
    """

    #: Largest universe for which a dense count array is considered cheap
    #: (two arrays of 2^24 int64 ≈ 256 MiB is already generous).
    MAX_DENSE_UNIVERSE = 1 << 24

    #: Universes at most this large always get a dense tracker: the count
    #: arrays are a few hundred KiB and a checkpoint cumsum is microseconds.
    ALWAYS_DENSE_UNIVERSE = 1 << 16

    def __init__(self, universe_size: int) -> None:
        if universe_size < 1:
            raise ConfigurationError(f"universe size must be >= 1, got {universe_size}")
        if universe_size > self.MAX_DENSE_UNIVERSE:
            raise ConfigurationError(
                f"universe size {universe_size} exceeds the dense-tracker limit "
                f"{self.MAX_DENSE_UNIVERSE}; use the batch discrepancy path"
            )
        self.universe_size = int(universe_size)
        self._counts = np.zeros(self.universe_size, dtype=np.int64)
        self._n = 0

    @classmethod
    def supports_universe(cls, universe_size: int, stream_length: int | None = None) -> bool:
        """True when a dense tracker is a sensible choice for this workload.

        A dense checkpoint costs ``O(N)``; the batch path costs
        ``O(n log n)`` per checkpoint.  For huge universes with short streams
        the batch path wins, so when the stream length is known the dense
        tracker is only chosen while ``N`` stays within a small multiple of
        ``n`` (small universes are always accepted — the arrays are tiny).
        """
        if not 1 <= universe_size <= cls.MAX_DENSE_UNIVERSE:
            return False
        if universe_size <= cls.ALWAYS_DENSE_UNIVERSE or stream_length is None:
            return True
        return universe_size <= 16 * stream_length

    # ------------------------------------------------------------------
    # Stream side
    # ------------------------------------------------------------------
    def _index(self, element: Any) -> int:
        """Map a universe element to its 0-based count index, or raise."""
        try:
            value = int(element)
        except (TypeError, ValueError, OverflowError) as exc:
            raise TrackerUnsupportedError(
                f"tracker for {self.system_name!r} cannot index {element!r}"
            ) from exc
        if value != element or not 1 <= value <= self.universe_size:
            raise TrackerUnsupportedError(
                f"element {element!r} is outside the integer universe "
                f"[1, {self.universe_size}]"
            )
        return value - 1

    def add(self, element: Any) -> None:
        index = self._index(element)
        self._counts[index] += 1
        self._n += 1

    def add_batch(self, elements: Iterable[Any]) -> None:
        elements = list(elements)
        if not elements:
            return
        indices = np.fromiter(
            (self._index(element) for element in elements),
            dtype=np.int64,
            count=len(elements),
        )
        np.add.at(self._counts, indices, 1)
        self._n += len(elements)

    def reset(self) -> None:
        self._counts[:] = 0
        self._n = 0

    @property
    def stream_length(self) -> int:
        return self._n

    # ------------------------------------------------------------------
    # Sample side
    # ------------------------------------------------------------------
    def _sample_counts(self, sample: Sequence[Any]) -> np.ndarray:
        """Dense per-value counts of a sample snapshot (validated)."""
        if len(sample) == 0:
            raise EmptySampleError("an empty sample is never an epsilon-approximation")
        indices = np.fromiter(
            (self._index(element) for element in sample),
            dtype=np.int64,
            count=len(sample),
        )
        return np.bincount(indices, minlength=self.universe_size)

    def _cumulative_difference(self, sample: Sequence[Any]) -> np.ndarray:
        """``F_stream(v) - F_sample(v)`` for every universe value ``v``.

        Cumulative counts are exact ``int64``; each is divided by the exact
        length before subtracting, which is the same sequence of IEEE
        operations the batch :func:`_cumulative_difference` performs at its
        breakpoints — hence bit-identical errors.
        """
        if self._n == 0:
            raise EmptySampleError("no stream elements have been ingested yet")
        sample_counts = self._sample_counts(sample)
        stream_cdf = np.cumsum(self._counts) / self._n
        sample_cdf = np.cumsum(sample_counts) / len(sample)
        return stream_cdf - sample_cdf


class PrefixDiscrepancyTracker(DenseCountTracker):
    """Incremental worst-prefix discrepancy over ``{[1, b] : b in [N]}``."""

    system_name = "prefixes"

    def checkpoint(self, sample: Sequence[Any]) -> DiscrepancyResult:
        from .intervals import Prefix  # local import to avoid a cycle

        difference = self._cumulative_difference(sample)
        index = int(np.argmax(np.abs(difference)))
        return DiscrepancyResult(
            error=float(abs(difference[index])),
            witness=Prefix(index + 1),
            exact=True,
            ranges_examined=self.universe_size,
        )


class IntervalDiscrepancyTracker(DenseCountTracker):
    """Incremental worst-interval discrepancy over ``{[a, b] : a <= b in [N]}``."""

    system_name = "intervals"

    def checkpoint(self, sample: Sequence[Any]) -> DiscrepancyResult:
        from .intervals import Interval, Prefix  # local import to avoid a cycle

        difference = self._cumulative_difference(sample)
        # The density difference of the interval (a, b] is D(b) - D(a), with
        # D = 0 before the first universe value; same convention as the
        # batch path in intervals.IntervalSystem.max_discrepancy.
        padded = np.concatenate([[0.0], difference])
        max_index = int(np.argmax(padded))
        min_index = int(np.argmin(padded))
        error = float(padded[max_index] - padded[min_index])
        if error == 0.0:
            return DiscrepancyResult(
                error=0.0,
                witness=Prefix(1),
                exact=True,
                ranges_examined=self.universe_size + 1,
            )
        low_index, high_index = sorted((min_index, max_index))
        if low_index == 0:
            witness: Any = Prefix(high_index)
        else:
            witness = Interval(low_index + 1, high_index)
        return DiscrepancyResult(
            error=error,
            witness=witness,
            exact=True,
            ranges_examined=self.universe_size + 1,
        )


class SingletonDiscrepancyTracker(DenseCountTracker):
    """Incremental worst-singleton discrepancy over ``{{a} : a in [N]}``."""

    system_name = "singletons"

    def checkpoint(self, sample: Sequence[Any]) -> DiscrepancyResult:
        from .singletons import Singleton  # local import to avoid a cycle

        if self._n == 0:
            raise EmptySampleError("no stream elements have been ingested yet")
        sample_counts = self._sample_counts(sample)
        difference = self._counts / self._n - sample_counts / len(sample)
        index = int(np.argmax(np.abs(difference)))
        return DiscrepancyResult(
            error=float(abs(difference[index])),
            witness=Singleton(index + 1),
            exact=True,
            ranges_examined=self.universe_size,
        )
