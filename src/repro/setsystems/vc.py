"""Exact VC-dimension computation for explicitly given set systems.

The paper contrasts two complexity measures of a set system: the VC dimension
``d`` (which controls the *static* sample size) and the cardinality ``ln |R|``
(which controls the *adaptive* sample size, Theorem 1.2).  The test suite uses
this brute-force computation to validate the closed-form VC dimensions of the
structured systems (prefixes: 1, intervals: 2, axis boxes in d dimensions:
2d, ...), and the E6 experiment uses it to build set systems whose two
measures are far apart.
"""

from __future__ import annotations

import itertools
from collections.abc import Collection, Iterable, Sequence
from typing import Any


def is_shattered(points: Sequence[Any], range_family: Iterable[Collection[Any]]) -> bool:
    """Return ``True`` if ``points`` is shattered by ``range_family``.

    A point set ``P`` is shattered when every one of its ``2^|P|`` subsets is
    realised as ``P ∩ R`` for some range ``R``.
    """
    point_set = list(points)
    needed = 2 ** len(point_set)
    seen: set[frozenset] = set()
    for members in range_family:
        members_set = frozenset(members)
        trace = frozenset(p for p in point_set if p in members_set)
        seen.add(trace)
        if len(seen) == needed:
            return True
    return len(seen) == needed


def exact_vc_dimension(
    universe: Iterable[Any],
    range_family: Sequence[Collection[Any]],
    max_dimension: int | None = None,
) -> int:
    """Return the exact VC dimension of ``(universe, range_family)``.

    Runs in time exponential in the answer (it tries all point sets of each
    size), so it is intended for the small systems used in tests and in the
    gap experiment, not for production-size universes.

    Parameters
    ----------
    universe:
        The ground set.
    range_family:
        The ranges, each as a collection of universe elements.
    max_dimension:
        Optional early-exit cap; if the dimension is at least this value the
        function returns ``max_dimension`` without searching further.
    """
    elements = list(universe)
    family = [frozenset(members) for members in range_family]
    # |R| <= sum_{i <= d} C(n, i) (Sauer–Shelah), so d can never exceed
    # log2 |R|; that also bounds the search.
    upper = len(elements)
    if max_dimension is not None:
        upper = min(upper, max_dimension)
    dimension = 0
    for size in range(1, upper + 1):
        if 2**size > len(family) + 1 and size > 1:
            # A family of |R| sets cannot shatter a set of size > log2(|R|)
            # unless the empty trace is missing; the +1 accounts for that.
            if 2**size > len(family) + 1:
                break
        shattered_any = False
        for candidate in itertools.combinations(elements, size):
            if is_shattered(candidate, family):
                shattered_any = True
                break
        if not shattered_any:
            break
        dimension = size
        if max_dimension is not None and dimension >= max_dimension:
            return dimension
    return dimension


def sauer_shelah_bound(vc_dimension: int, universe_size: int) -> int:
    """Return the Sauer–Shelah upper bound on ``|R|`` for the given VC dimension.

    ``|R| <= sum_{i=0}^{d} C(n, i)`` — useful for sanity-checking that a
    constructed set system's cardinality and VC dimension are consistent.
    """
    import math

    return sum(math.comb(universe_size, i) for i in range(vc_dimension + 1))
