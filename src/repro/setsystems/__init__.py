"""Set systems ``(U, R)`` and epsilon-approximation machinery.

The systems provided here cover every application discussed in Section 1.2 of
the paper:

* :class:`PrefixSystem` / :class:`ContinuousPrefixSystem` — quantile sketches
  and the Figure-3 attack,
* :class:`IntervalSystem` — the natural "representative sample" notion for
  ordered data,
* :class:`SingletonSystem` — heavy hitters,
* :class:`RectangleSystem` — range queries over ``[m]^d``,
* :class:`HalfspaceSystem` — center points,
* :class:`ExplicitSetSystem` — arbitrary small systems, used by tests and by
  the VC-vs-cardinality gap experiment.
"""

from .base import DiscrepancyResult, Range, SetSystem
from .discrete import ExplicitRange, ExplicitSetSystem
from .halfspaces import Halfspace, HalfspaceSystem
from .intervals import (
    ContinuousPrefixSystem,
    Interval,
    IntervalSystem,
    Prefix,
    PrefixSystem,
)
from .rectangles import Box, RectangleSystem
from .singletons import Singleton, SingletonSystem
from .tracker import (
    DenseCountTracker,
    DiscrepancyTracker,
    IntervalDiscrepancyTracker,
    PrefixDiscrepancyTracker,
    SingletonDiscrepancyTracker,
)
from .vc import exact_vc_dimension, is_shattered, sauer_shelah_bound

__all__ = [
    "Box",
    "ContinuousPrefixSystem",
    "DenseCountTracker",
    "DiscrepancyResult",
    "DiscrepancyTracker",
    "ExplicitRange",
    "ExplicitSetSystem",
    "Halfspace",
    "HalfspaceSystem",
    "Interval",
    "IntervalDiscrepancyTracker",
    "IntervalSystem",
    "Prefix",
    "PrefixDiscrepancyTracker",
    "PrefixSystem",
    "Range",
    "RectangleSystem",
    "SetSystem",
    "Singleton",
    "SingletonDiscrepancyTracker",
    "SingletonSystem",
    "exact_vc_dimension",
    "is_shattered",
    "sauer_shelah_bound",
]
