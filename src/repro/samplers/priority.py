"""Priority sampling (Duffield–Lund–Thorup style), unweighted variant.

Priority sampling assigns each element a priority ``w_i / u_i`` (here with
unit weights, ``1 / u_i``) and keeps the ``k`` elements with the largest
priorities.  Like A-Res it is a fixed-size scheme whose retained set is a
uniform ``k``-subset under unit weights; it is included because the paper's
motivating applications (network monitoring, subset-sum estimation
[CDK+11, DLT05]) typically deploy priority sampling, and the adversarial
experiments can be rerun against it unchanged.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Iterable, Sequence
from typing import Any

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import RandomState, ensure_generator
from .base import FixedSizeSampler, SampleUpdate, UpdateBatch


class PrioritySampler(FixedSizeSampler):
    """Keep the ``k`` elements with the largest priorities ``w_i / u_i``.

    Parameters
    ----------
    capacity:
        Number of elements to retain.
    weight:
        Callable mapping an element to a positive weight (defaults to 1).
    seed:
        Seed or generator for the uniform draws.
    """

    name = "priority"

    def __init__(
        self,
        capacity: int,
        weight: Callable[[Any], float] | None = None,
        seed: RandomState = None,
    ) -> None:
        super().__init__(capacity)
        self._unit_weight = weight is None
        self.weight = weight if weight is not None else (lambda _element: 1.0)
        self._rng = ensure_generator(seed)
        self._heap: list[tuple[float, int, Any]] = []
        self._tiebreak = 0

    def _process(self, element: Any) -> SampleUpdate:
        weight = float(self.weight(element))
        if weight <= 0.0:
            raise ConfigurationError(
                f"element weights must be positive, got {weight} for {element!r}"
            )
        uniform = max(self._rng.random(), 1e-300)
        priority = weight / uniform
        entry = (priority, self._tiebreak, element)
        self._tiebreak += 1
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, entry)
            return SampleUpdate(
                round_index=self.rounds_processed, element=element, accepted=True
            )
        if priority > self._heap[0][0]:
            evicted_entry = heapq.heapreplace(self._heap, entry)
            return SampleUpdate(
                round_index=self.rounds_processed,
                element=element,
                accepted=True,
                evicted=evicted_entry[2],
            )
        return SampleUpdate(
            round_index=self.rounds_processed, element=element, accepted=False
        )

    def extend(
        self, elements: Iterable[Any], updates: bool = True
    ) -> UpdateBatch | None:
        """Vectorised batch ingestion, bit-identical to sequential processing.

        Mirrors :meth:`WeightedReservoirSampler.extend`: one batched uniform
        draw, one vectorised division for the priorities, and a Python loop
        over only the elements whose priority beats the reservoir minimum at
        the start of the batch (a superset of the true acceptances, since the
        minimum only rises).
        """
        elements = list(elements)
        if not elements:
            return UpdateBatch.empty() if updates else None
        n = len(elements)
        if self._unit_weight:
            weights = None
        else:
            try:
                weights = np.fromiter(
                    (float(self.weight(element)) for element in elements),
                    dtype=np.float64,
                    count=n,
                )
                valid = not np.any(weights <= 0.0)
            except Exception:
                valid = False
            if not valid:
                # An invalid (or raising) weight: replay per element, so
                # sampler state, RNG position and the raised error all match
                # sequential processing exactly, whatever weight() does.
                return super().extend(elements, updates)
        uniforms = np.maximum(self._rng.random(n), 1e-300)
        priorities = (1.0 / uniforms) if weights is None else (weights / uniforms)
        start_round = self._round
        base_tiebreak = self._tiebreak
        self._round += n
        self._tiebreak += n

        accepted = np.zeros(n, dtype=bool)
        evictions: dict[int, Any] = {}
        heap = self._heap
        position = 0
        while position < n and len(heap) < self.capacity:
            heapq.heappush(
                heap,
                (float(priorities[position]), base_tiebreak + position, elements[position]),
            )
            accepted[position] = True
            position += 1
        if position < n:
            threshold = heap[0][0]
            for offset in np.flatnonzero(priorities[position:] > threshold):
                offset = position + int(offset)
                priority = float(priorities[offset])
                if priority > heap[0][0]:
                    evicted_entry = heapq.heapreplace(
                        heap, (priority, base_tiebreak + offset, elements[offset])
                    )
                    accepted[offset] = True
                    if updates:
                        evictions[offset] = evicted_entry[2]
        if not updates:
            return None
        round_indices = np.arange(start_round + 1, start_round + n + 1, dtype=np.int64)
        return UpdateBatch(round_indices, elements, accepted, evictions)

    @property
    def sample(self) -> Sequence[Any]:
        return [element for _priority, _tiebreak, element in self._heap]

    def reset(self) -> None:
        self._heap = []
        self._tiebreak = 0
        self._round = 0
