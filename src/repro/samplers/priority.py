"""Priority sampling (Duffield–Lund–Thorup style), unweighted variant.

Priority sampling assigns each element a priority ``w_i / u_i`` (here with
unit weights, ``1 / u_i``) and keeps the ``k`` elements with the largest
priorities.  Like A-Res it is a fixed-size scheme whose retained set is a
uniform ``k``-subset under unit weights; it is included because the paper's
motivating applications (network monitoring, subset-sum estimation
[CDK+11, DLT05]) typically deploy priority sampling, and the adversarial
experiments can be rerun against it unchanged.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Sequence

from ..exceptions import ConfigurationError
from ..rng import RandomState, ensure_generator
from .base import FixedSizeSampler, SampleUpdate


class PrioritySampler(FixedSizeSampler):
    """Keep the ``k`` elements with the largest priorities ``w_i / u_i``.

    Parameters
    ----------
    capacity:
        Number of elements to retain.
    weight:
        Callable mapping an element to a positive weight (defaults to 1).
    seed:
        Seed or generator for the uniform draws.
    """

    name = "priority"

    def __init__(
        self,
        capacity: int,
        weight: Callable[[Any], float] | None = None,
        seed: RandomState = None,
    ) -> None:
        super().__init__(capacity)
        self.weight = weight if weight is not None else (lambda _element: 1.0)
        self._rng = ensure_generator(seed)
        self._heap: list[tuple[float, int, Any]] = []
        self._counter = itertools.count()

    def _process(self, element: Any) -> SampleUpdate:
        weight = float(self.weight(element))
        if weight <= 0.0:
            raise ConfigurationError(
                f"element weights must be positive, got {weight} for {element!r}"
            )
        uniform = max(self._rng.random(), 1e-300)
        priority = weight / uniform
        entry = (priority, next(self._counter), element)
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, entry)
            return SampleUpdate(
                round_index=self.rounds_processed, element=element, accepted=True
            )
        if priority > self._heap[0][0]:
            evicted_entry = heapq.heapreplace(self._heap, entry)
            return SampleUpdate(
                round_index=self.rounds_processed,
                element=element,
                accepted=True,
                evicted=evicted_entry[2],
            )
        return SampleUpdate(
            round_index=self.rounds_processed, element=element, accepted=False
        )

    @property
    def sample(self) -> Sequence[Any]:
        return [element for _priority, _tiebreak, element in self._heap]

    def reset(self) -> None:
        self._heap = []
        self._counter = itertools.count()
        self._round = 0
