"""Greenwald–Khanna deterministic quantile summary [GK01].

The paper's Section 1.1 compares its randomised samplers against deterministic
streaming algorithms: deterministic algorithms are automatically robust to
adaptive adversaries (they have no coins to learn), but they must inspect
every element and are typically more intricate.  The GK summary is the
canonical deterministic epsilon-quantile sketch; experiment E14 pits it
against Bernoulli/reservoir sampling under both static and adaptive streams.

The summary stores tuples ``(value, g, delta)`` where ``g`` is the gap in
minimum rank to the previous tuple and ``delta`` the uncertainty; it answers
any rank query within ``epsilon * n`` using ``O((1/epsilon) log(epsilon n))``
tuples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable

from ..exceptions import ConfigurationError, EmptySampleError


@dataclass
class _Tuple:
    value: float
    g: int
    delta: int


class GreenwaldKhannaSketch:
    """Deterministic epsilon-approximate quantile summary.

    Parameters
    ----------
    epsilon:
        Target rank-error guarantee: every rank query is answered within
        ``epsilon * n`` of the true rank.
    """

    name = "greenwald-khanna"

    def __init__(self, epsilon: float) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(f"epsilon must lie in (0, 1), got {epsilon}")
        self.epsilon = float(epsilon)
        self._tuples: list[_Tuple] = []
        self._count = 0

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------
    def update(self, value: float) -> None:
        """Insert one stream element."""
        value = float(value)
        self._count += 1
        threshold = self._compress_threshold()

        if not self._tuples or value < self._tuples[0].value:
            self._tuples.insert(0, _Tuple(value, 1, 0))
        elif value >= self._tuples[-1].value:
            self._tuples.append(_Tuple(value, 1, 0))
        else:
            index = self._find_insert_index(value)
            delta = max(0, threshold - 1)
            self._tuples.insert(index, _Tuple(value, 1, delta))

        # Periodic compression keeps the summary within the GK space bound.
        if self._count % max(1, int(1.0 / (2.0 * self.epsilon))) == 0:
            self._compress()

    #: Minimum batch size for the bulk merge path; tiny batches stay on the
    #: per-element rule, whose behaviour is pinned by the seed tests.
    _BULK_THRESHOLD = 64

    def extend(self, values: Iterable[float]) -> None:
        """Insert a batch of stream elements via one sorted merge pass.

        Instead of ``len(values)`` binary searches and ``O(T)`` list inserts,
        the bulk path sorts the chunk once and splices it into the tuple list
        in a single merge.  The resulting summary is *not* tuple-for-tuple
        identical to per-element insertion (new interior tuples receive the
        uncertainty band of the old tuple they merge in front of, and
        compression runs once per chunk), but the GK invariant
        ``g + delta <= 2 * epsilon * n`` — and with it this
        implementation's rank-error bound, ``2 * epsilon * n`` for the
        one-sided min-rank answers :meth:`rank_query` gives (the same bound
        the per-element path provides) — holds throughout: over-stating
        ``delta`` only inhibits compression, and elements strictly beyond
        the previous extremes have exactly known ranks (``delta = 0``).
        Property tests in ``tests/test_samplers_extend.py`` pin the bound on
        both paths, including duplicate-heavy streams.
        """
        values = [float(value) for value in values]
        if len(values) < self._BULK_THRESHOLD:
            for value in values:
                self.update(value)
            return
        # Process in blocks so mid-stream memory stays near the GK bound.
        block = max(512, int(1.0 / (2.0 * self.epsilon)))
        for start in range(0, len(values), block):
            self._bulk_insert(values[start : start + block])

    def _bulk_insert(self, chunk: list[float]) -> None:
        chunk = sorted(chunk)
        old = self._tuples
        self._count += len(chunk)
        old_first = old[0].value if old else None
        old_last = old[-1].value if old else None
        merged: list[_Tuple] = []
        position = 0
        for value in chunk:
            while position < len(old) and old[position].value < value:
                merged.append(old[position])
                position += 1
            # Ranks strictly outside the previous extremes are exactly known
            # (no prior mass lies beyond the true min / max).  Ties with the
            # extremes are NOT exact: the merge places an equal-valued chunk
            # element *before* the old tuple, whose own g-band then counts
            # elements <= value that the new tuple's min-rank misses — so
            # ties take the interior rule.  Interior tuples get the textbook
            # GK uncertainty: the band of the old tuple they land in front of.
            if old_first is None or value < old_first or value > old_last:
                delta = 0
            else:
                successor = old[position]
                delta = successor.g + successor.delta - 1
            merged.append(_Tuple(value, 1, delta))
        merged.extend(old[position:])
        self._tuples = merged
        self._compress()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def rank_query(self, value: float) -> float:
        """Return an estimate of ``|{x in stream : x <= value}|``."""
        if self._count == 0:
            raise EmptySampleError("cannot query an empty sketch")
        min_rank = 0
        for item in self._tuples:
            if item.value > value:
                break
            min_rank += item.g
        # The true rank lies in [min_rank, min_rank + delta of the next tuple];
        # reporting the midpoint halves the worst-case error.
        return float(min_rank)

    def quantile_query(self, fraction: float) -> float:
        """Return an element whose rank is within ``epsilon * n`` of ``fraction * n``."""
        if self._count == 0:
            raise EmptySampleError("cannot query an empty sketch")
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"fraction must lie in [0, 1], got {fraction}")
        target = fraction * self._count
        margin = self.epsilon * self._count
        min_rank = 0
        for index, item in enumerate(self._tuples):
            min_rank += item.g
            max_rank = min_rank + item.delta
            if max_rank >= target - margin and min_rank <= target + margin:
                return item.value
            if min_rank > target + margin:
                return self._tuples[max(0, index - 1)].value
        return self._tuples[-1].value

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of stream elements summarised so far."""
        return self._count

    def memory_footprint(self) -> int:
        """Number of tuples currently stored."""
        return len(self._tuples)

    def reset(self) -> None:
        self._tuples = []
        self._count = 0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _compress_threshold(self) -> int:
        return int(math.floor(2.0 * self.epsilon * self._count))

    def _find_insert_index(self, value: float) -> int:
        low, high = 0, len(self._tuples)
        while low < high:
            mid = (low + high) // 2
            if self._tuples[mid].value < value:
                low = mid + 1
            else:
                high = mid
        return low

    def _compress(self) -> None:
        if len(self._tuples) < 3:
            return
        threshold = self._compress_threshold()
        compressed: list[_Tuple] = [self._tuples[0]]
        for item in self._tuples[1:-1]:
            candidate = compressed[-1]
            if (
                len(compressed) > 1
                and candidate.g + item.g + item.delta <= threshold
            ):
                # Merge `candidate` into `item` (the standard GK merge keeps
                # the later tuple and accumulates the gap).
                merged = _Tuple(item.value, candidate.g + item.g, item.delta)
                compressed[-1] = merged
            else:
                compressed.append(item)
        compressed.append(self._tuples[-1])
        self._tuples = compressed
