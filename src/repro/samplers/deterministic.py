"""Deterministic merge-reduce epsilon-approximation for ordered universes.

Section 1.1 of the paper compares its randomised samplers to the deterministic
streaming epsilon-approximation of Bagchi et al. [BCEG07].  For the ordered
(interval / prefix) set systems used throughout this reproduction, the
classical merge-reduce (Munro–Paterson style) construction already yields a
deterministic epsilon-approximation:

* the stream is consumed in *blocks* of ``b`` elements;
* a full block becomes a level-0 buffer (sorted);
* whenever two buffers occupy the same level they are **merged** (interleaved
  in sorted order) and **reduced** (every other element kept), producing one
  buffer at the next level;
* a level-``l`` buffer element represents ``2^l`` stream elements.

With buffer size ``b = Theta(log(1/eps) / eps)`` the union of the retained
buffers, with the appropriate weights, approximates every prefix density
within ``eps``.  Being deterministic it is automatically robust against
adaptive adversaries — but it must read every element and is noticeably more
complex than "flip a coin per element", which is exactly the trade-off the
paper discusses.  Experiment E14 measures both sides of that trade-off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from ..exceptions import ConfigurationError, EmptySampleError


@dataclass(frozen=True)
class WeightedPoint:
    """A summary point representing ``weight`` stream elements near ``value``."""

    value: float
    weight: float


class MergeReduceSummary:
    """Deterministic merge-reduce epsilon-approximation for 1-D ordered data.

    Parameters
    ----------
    epsilon:
        Target approximation error for prefix/interval densities.
    buffer_size:
        Optional override of the per-buffer size ``b``; by default it is set
        to ``ceil((log2(1/epsilon) + 4) / epsilon)``, which keeps the summary's
        rank error below ``epsilon * n`` for the stream lengths used in the
        experiments.
    """

    name = "merge-reduce"

    def __init__(self, epsilon: float, buffer_size: int | None = None) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(f"epsilon must lie in (0, 1), got {epsilon}")
        self.epsilon = float(epsilon)
        if buffer_size is None:
            buffer_size = int(math.ceil((math.log2(1.0 / epsilon) + 4.0) / epsilon))
        if buffer_size < 2:
            raise ConfigurationError(f"buffer size must be >= 2, got {buffer_size}")
        # An even buffer size keeps the halving step exact.
        self.buffer_size = buffer_size + (buffer_size % 2)
        self._pending: list[float] = []
        #: Mapping level -> sorted buffer at that level (at most one per level).
        self._levels: dict[int, list[float]] = {}
        self._count = 0

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------
    def update(self, value: float) -> None:
        """Insert one stream element."""
        self._pending.append(float(value))
        self._count += 1
        if len(self._pending) == self.buffer_size:
            self._push_buffer(sorted(self._pending), level=0)
            self._pending = []

    def extend(self, values: Iterable[float]) -> None:
        """Insert a batch of stream elements.

        Bit-identical to per-element :meth:`update` — the pending buffer is
        filled in slices and pushed at exactly the same block boundaries —
        while skipping the per-element method dispatch and length check.
        """
        values = [float(value) for value in values]
        cursor = 0
        while cursor < len(values):
            room = self.buffer_size - len(self._pending)
            chunk = values[cursor : cursor + room]
            self._pending.extend(chunk)
            self._count += len(chunk)
            cursor += len(chunk)
            if len(self._pending) == self.buffer_size:
                self._push_buffer(sorted(self._pending), level=0)
                self._pending = []

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def weighted_points(self) -> list[WeightedPoint]:
        """Return the summary as weighted points covering the whole stream."""
        if self._count == 0:
            raise EmptySampleError("cannot query an empty summary")
        points: list[WeightedPoint] = []
        for level, buffer in self._levels.items():
            weight = float(2**level)
            points.extend(WeightedPoint(value, weight) for value in buffer)
        points.extend(WeightedPoint(value, 1.0) for value in self._pending)
        points.sort(key=lambda point: point.value)
        return points

    def rank_query(self, value: float) -> float:
        """Estimate ``|{x in stream : x <= value}|`` within ``epsilon * n``."""
        points = self.weighted_points()
        return sum(point.weight for point in points if point.value <= value)

    def prefix_density(self, value: float) -> float:
        """Estimate the density of the prefix range ``(-inf, value]``."""
        return self.rank_query(value) / self._count

    def quantile_query(self, fraction: float) -> float:
        """Return an approximate ``fraction``-quantile of the stream."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"fraction must lie in [0, 1], got {fraction}")
        points = self.weighted_points()
        target = fraction * self._count
        cumulative = 0.0
        for point in points:
            cumulative += point.weight
            if cumulative >= target:
                return point.value
        return points[-1].value

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of stream elements summarised."""
        return self._count

    def memory_footprint(self) -> int:
        """Number of stored values across all buffers."""
        return sum(len(buffer) for buffer in self._levels.values()) + len(self._pending)

    def reset(self) -> None:
        self._pending = []
        self._levels = {}
        self._count = 0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _push_buffer(self, buffer: list[float], level: int) -> None:
        """Insert a sorted buffer at ``level``, merging upward while collisions exist."""
        current = buffer
        current_level = level
        while current_level in self._levels:
            other = self._levels.pop(current_level)
            current = self._merge_reduce(current, other)
            current_level += 1
        self._levels[current_level] = current

    @staticmethod
    def _merge_reduce(first: Sequence[float], second: Sequence[float]) -> list[float]:
        """Merge two sorted buffers and keep every other element (odd positions).

        Keeping the elements at odd positions (1st, 3rd, ...) of the merged
        sequence is the classical choice that keeps rank errors one-sided per
        operation and bounded overall.
        """
        merged: list[float] = []
        i = j = 0
        while i < len(first) and j < len(second):
            if first[i] <= second[j]:
                merged.append(first[i])
                i += 1
            else:
                merged.append(second[j])
                j += 1
        merged.extend(first[i:])
        merged.extend(second[j:])
        return merged[::2]
