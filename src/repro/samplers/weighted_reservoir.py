"""Weighted reservoir sampling (Efraimidis–Spirakis A-Res, [ES06]).

The related-work section of the paper mentions weighted reservoir sampling as
one of the flavours of reservoir sampling studied in the literature.  A-Res
maintains the ``k`` elements with the largest keys ``u_i^{1/w_i}`` where
``u_i`` is uniform in ``(0, 1)`` and ``w_i`` the element's weight; with unit
weights it reduces to an (order-insensitive) uniform reservoir.  The library
ships it both as an extension users expect from a sampling toolkit and as an
extra subject for the adversarial experiments (an adversary that controls the
weights has another lever to pull).
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Iterable, Sequence
from typing import Any

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import RandomState, ensure_generator
from .base import FixedSizeSampler, SampleUpdate, UpdateBatch


class WeightedReservoirSampler(FixedSizeSampler):
    """A-Res weighted reservoir sampler.

    Parameters
    ----------
    capacity:
        Reservoir size ``k``.
    weight:
        Callable mapping an element to its positive weight.  Defaults to unit
        weights, in which case the sample is a uniform ``k``-subset of the
        stream (in distribution).
    seed:
        Seed or generator for the key draws.
    """

    name = "weighted-reservoir"

    def __init__(
        self,
        capacity: int,
        weight: Callable[[Any], float] | None = None,
        seed: RandomState = None,
    ) -> None:
        super().__init__(capacity)
        self._unit_weight = weight is None
        self.weight = weight if weight is not None else (lambda _element: 1.0)
        self._rng = ensure_generator(seed)
        # Min-heap of (key, tiebreak, element); the reservoir holds the k
        # largest keys seen so far.
        self._heap: list[tuple[float, int, Any]] = []
        self._tiebreak = 0

    # ------------------------------------------------------------------
    # StreamSampler interface
    # ------------------------------------------------------------------
    def _key(self, element: Any) -> float:
        weight = float(self.weight(element))
        if weight <= 0.0:
            raise ConfigurationError(
                f"element weights must be positive, got {weight} for {element!r}"
            )
        uniform = self._rng.random()
        # Guard against a zero draw, whose 1/w power would be exactly zero for
        # every weight and lose the weight information.
        uniform = max(uniform, 1e-300)
        return uniform ** (1.0 / weight)

    def _process(self, element: Any) -> SampleUpdate:
        key = self._key(element)
        entry = (key, self._tiebreak, element)
        self._tiebreak += 1
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, entry)
            return SampleUpdate(
                round_index=self.rounds_processed, element=element, accepted=True
            )
        if key > self._heap[0][0]:
            evicted_entry = heapq.heapreplace(self._heap, entry)
            return SampleUpdate(
                round_index=self.rounds_processed,
                element=element,
                accepted=True,
                evicted=evicted_entry[2],
            )
        return SampleUpdate(
            round_index=self.rounds_processed, element=element, accepted=False
        )

    def extend(
        self, elements: Iterable[Any], updates: bool = True
    ) -> UpdateBatch | None:
        """Vectorised batch ingestion, bit-identical to sequential processing.

        The exponential keys for the whole batch come from one
        ``Generator.random(n)`` draw (which consumes the bit stream exactly
        like ``n`` scalar draws) and one vectorised power; the Python-level
        heap loop then touches only the *candidates* — elements whose key
        beats the reservoir threshold at the start of the batch.  The
        threshold only rises as elements are accepted, so the candidate set
        (``O(k log n)`` expected of an ``n``-element batch) is a superset of
        the true acceptances, and skipped elements never touch Python objects
        at all.
        """
        elements = list(elements)
        if not elements:
            return UpdateBatch.empty() if updates else None
        n = len(elements)
        if self._unit_weight:
            exponents = None
        else:
            try:
                weights = np.fromiter(
                    (float(self.weight(element)) for element in elements),
                    dtype=np.float64,
                    count=n,
                )
                valid = not np.any(weights <= 0.0)
            except Exception:
                valid = False
            if not valid:
                # An invalid (or raising) weight: replay per element, so
                # sampler state, RNG position and the raised error all match
                # sequential processing exactly, whatever weight() does.
                return super().extend(elements, updates)
            # Division is exactly rounded, so the exponents can be batched.
            exponents = 1.0 / weights
        uniforms = np.maximum(self._rng.random(n), 1e-300)
        if exponents is None:
            keys = uniforms
        else:
            # Scalar pow per element: numpy's vectorised power may differ
            # from libm by 1 ulp, which could flip a threshold comparison and
            # break bit-identity with the sequential path.
            keys = np.fromiter(
                (base**exponent for base, exponent in zip(uniforms.tolist(), exponents.tolist())),
                dtype=np.float64,
                count=n,
            )
        start_round = self._round
        base_tiebreak = self._tiebreak
        self._round += n
        self._tiebreak += n

        accepted = np.zeros(n, dtype=bool)
        evictions: dict[int, Any] = {}
        heap = self._heap
        position = 0
        # Fill phase: sequential until the reservoir holds k entries.
        while position < n and len(heap) < self.capacity:
            heapq.heappush(
                heap, (float(keys[position]), base_tiebreak + position, elements[position])
            )
            accepted[position] = True
            position += 1
        if position < n:
            threshold = heap[0][0]
            for offset in np.flatnonzero(keys[position:] > threshold):
                offset = position + int(offset)
                key = float(keys[offset])
                if key > heap[0][0]:
                    evicted_entry = heapq.heapreplace(
                        heap, (key, base_tiebreak + offset, elements[offset])
                    )
                    accepted[offset] = True
                    if updates:
                        evictions[offset] = evicted_entry[2]
        if not updates:
            return None
        round_indices = np.arange(start_round + 1, start_round + n + 1, dtype=np.int64)
        return UpdateBatch(round_indices, elements, accepted, evictions)

    @property
    def sample(self) -> Sequence[Any]:
        return [element for _key, _tiebreak, element in self._heap]

    def reset(self) -> None:
        self._heap = []
        self._tiebreak = 0
        self._round = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def smallest_key(self) -> float | None:
        """The smallest key currently in the reservoir (the eviction threshold)."""
        if not self._heap:
            return None
        return self._heap[0][0]
