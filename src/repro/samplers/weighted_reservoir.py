"""Weighted reservoir sampling (Efraimidis–Spirakis A-Res, [ES06]).

The related-work section of the paper mentions weighted reservoir sampling as
one of the flavours of reservoir sampling studied in the literature.  A-Res
maintains the ``k`` elements with the largest keys ``u_i^{1/w_i}`` where
``u_i`` is uniform in ``(0, 1)`` and ``w_i`` the element's weight; with unit
weights it reduces to an (order-insensitive) uniform reservoir.  The library
ships it both as an extension users expect from a sampling toolkit and as an
extra subject for the adversarial experiments (an adversary that controls the
weights has another lever to pull).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Sequence

from ..exceptions import ConfigurationError
from ..rng import RandomState, ensure_generator
from .base import FixedSizeSampler, SampleUpdate


class WeightedReservoirSampler(FixedSizeSampler):
    """A-Res weighted reservoir sampler.

    Parameters
    ----------
    capacity:
        Reservoir size ``k``.
    weight:
        Callable mapping an element to its positive weight.  Defaults to unit
        weights, in which case the sample is a uniform ``k``-subset of the
        stream (in distribution).
    seed:
        Seed or generator for the key draws.
    """

    name = "weighted-reservoir"

    def __init__(
        self,
        capacity: int,
        weight: Callable[[Any], float] | None = None,
        seed: RandomState = None,
    ) -> None:
        super().__init__(capacity)
        self.weight = weight if weight is not None else (lambda _element: 1.0)
        self._rng = ensure_generator(seed)
        # Min-heap of (key, tiebreak, element); the reservoir holds the k
        # largest keys seen so far.
        self._heap: list[tuple[float, int, Any]] = []
        self._counter = itertools.count()

    # ------------------------------------------------------------------
    # StreamSampler interface
    # ------------------------------------------------------------------
    def _process(self, element: Any) -> SampleUpdate:
        weight = float(self.weight(element))
        if weight <= 0.0:
            raise ConfigurationError(
                f"element weights must be positive, got {weight} for {element!r}"
            )
        uniform = self._rng.random()
        # Guard against a zero draw, whose 1/w power would be exactly zero for
        # every weight and lose the weight information.
        uniform = max(uniform, 1e-300)
        key = uniform ** (1.0 / weight)
        entry = (key, next(self._counter), element)
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, entry)
            return SampleUpdate(
                round_index=self.rounds_processed, element=element, accepted=True
            )
        if key > self._heap[0][0]:
            evicted_entry = heapq.heapreplace(self._heap, entry)
            return SampleUpdate(
                round_index=self.rounds_processed,
                element=element,
                accepted=True,
                evicted=evicted_entry[2],
            )
        return SampleUpdate(
            round_index=self.rounds_processed, element=element, accepted=False
        )

    @property
    def sample(self) -> Sequence[Any]:
        return [element for _key, _tiebreak, element in self._heap]

    def reset(self) -> None:
        self._heap = []
        self._counter = itertools.count()
        self._round = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def smallest_key(self) -> float | None:
        """The smallest key currently in the reservoir (the eviction threshold)."""
        if not self._heap:
            return None
        return self._heap[0][0]
