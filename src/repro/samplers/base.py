"""Streaming-sampler interfaces.

The adversarial game of the paper (Section 2) interacts with a sampler
through three operations: feed it the next element, observe its internal
state, and finally read out the sample.  :class:`StreamSampler` is that
contract.  Every concrete sampler also reports what happened on each step
(:class:`SampleUpdate`) so that game runners, martingale trackers and the
attacks themselves can react to acceptances and evictions without peeking at
private attributes.

Batch ingestion goes through :meth:`StreamSampler.extend`, which returns a
columnar :class:`UpdateBatch` instead of a ``list[SampleUpdate]``: the
per-round outcome of a whole segment lives in structure-of-arrays form
(NumPy arrays for round indices and acceptance flags, a sparse map for the
rare evictions), and per-element :class:`SampleUpdate` views are materialised
lazily only where a caller actually indexes or iterates the batch.  On
million-element streams this is what keeps the vectorised sampler kernels
from drowning in dataclass allocations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Mapping, Sequence
from typing import Any, Protocol, overload, runtime_checkable

import numpy as np
from numpy.typing import NDArray


@dataclass(frozen=True, slots=True)
class SampleUpdate:
    """Outcome of feeding one element to a sampler.

    Attributes
    ----------
    round_index:
        1-based index of the element within the stream.
    element:
        The element that was submitted.
    accepted:
        ``True`` if the element entered the sample.
    evicted:
        The element that was removed to make room (reservoir-style samplers),
        or ``None`` when nothing was evicted.
    """

    round_index: int
    element: Any
    accepted: bool
    evicted: Any = None


class UpdateBatch(Sequence[SampleUpdate]):
    """Columnar (structure-of-arrays) record of one ingested segment.

    The batch stores one NumPy array per column instead of one
    :class:`SampleUpdate` per element:

    * ``round_indices`` — ``int64`` array of 1-based stream positions,
    * ``elements`` — the submitted elements (list or NumPy array, shared
      with the caller, never copied),
    * ``accepted`` — boolean array of acceptance flags,
    * ``evictions`` — sparse ``{offset: evicted element}`` map (evictions are
      rare — ``O(k log n)`` of an ``n``-element segment for reservoir-style
      samplers — so a dense object column would be mostly ``None``).

    The batch is also a :class:`~collections.abc.Sequence` of
    :class:`SampleUpdate`: indexing, iteration and equality materialise
    per-element views on demand, so existing per-element consumers (attack
    adversaries, tests, logs) keep working unchanged against batch producers.
    """

    __slots__ = ("round_indices", "elements", "accepted", "evictions")

    def __init__(
        self,
        round_indices: NDArray[np.int64],
        elements: Sequence[Any],
        accepted: NDArray[np.bool_],
        evictions: Mapping[int, Any] | None = None,
    ) -> None:
        self.round_indices = np.asarray(round_indices, dtype=np.int64)
        self.elements = elements
        self.accepted = np.asarray(accepted, dtype=bool)
        self.evictions: dict[int, Any] = dict(evictions) if evictions else {}
        if not (len(self.round_indices) == len(self.elements) == len(self.accepted)):
            raise ValueError(
                "UpdateBatch columns disagree on length: "
                f"{len(self.round_indices)} rounds, {len(self.elements)} elements, "
                f"{len(self.accepted)} flags"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "UpdateBatch":
        return cls(np.empty(0, dtype=np.int64), [], np.empty(0, dtype=bool))

    @classmethod
    def from_updates(cls, updates: Iterable[SampleUpdate]) -> "UpdateBatch":
        """Build a columnar batch from per-element records."""
        updates = list(updates)
        round_indices = np.fromiter(
            (u.round_index for u in updates), dtype=np.int64, count=len(updates)
        )
        accepted = np.fromiter(
            (u.accepted for u in updates), dtype=bool, count=len(updates)
        )
        evictions = {
            offset: u.evicted for offset, u in enumerate(updates) if u.evicted is not None
        }
        return cls(round_indices, [u.element for u in updates], accepted, evictions)

    @classmethod
    def concat(cls, batches: Sequence["UpdateBatch"]) -> "UpdateBatch":
        """Concatenate segment batches into one batch (columns stacked)."""
        batches = [batch for batch in batches if len(batch)]
        if not batches:
            return cls.empty()
        if len(batches) == 1:
            return batches[0]
        elements: list[Any] = []
        evictions: dict[int, Any] = {}
        for batch in batches:
            base = len(elements)
            elements.extend(batch.elements)
            for offset, evicted in batch.evictions.items():
                evictions[base + offset] = evicted
        return cls(
            np.concatenate([batch.round_indices for batch in batches]),
            elements,
            np.concatenate([batch.accepted for batch in batches]),
            evictions,
        )

    # ------------------------------------------------------------------
    # Columnar queries (the fast paths)
    # ------------------------------------------------------------------
    @property
    def accepted_count(self) -> int:
        """Number of rounds whose element entered the sample."""
        return int(np.count_nonzero(self.accepted))

    @property
    def eviction_count(self) -> int:
        return len(self.evictions)

    def accepted_elements(self) -> list[Any]:
        """The elements that entered the sample, in stream order."""
        return [self.elements[int(i)] for i in np.flatnonzero(self.accepted)]

    # ------------------------------------------------------------------
    # Lazy per-element view (backwards compatibility)
    # ------------------------------------------------------------------
    def _view(self, offset: int) -> SampleUpdate:
        return SampleUpdate(
            round_index=int(self.round_indices[offset]),
            element=self.elements[offset],
            accepted=bool(self.accepted[offset]),
            evicted=self.evictions.get(offset),
        )

    def __len__(self) -> int:
        return len(self.accepted)

    @overload
    def __getitem__(self, index: int) -> SampleUpdate: ...

    @overload
    def __getitem__(self, index: slice) -> "UpdateBatch": ...

    def __getitem__(self, index: int | slice) -> SampleUpdate | UpdateBatch:
        if isinstance(index, slice):
            offsets = range(*index.indices(len(self)))
            evictions = {
                new: self.evictions[old]
                for new, old in enumerate(offsets)
                if old in self.evictions
            }
            return UpdateBatch(
                self.round_indices[index],
                list(self.elements[index]),
                self.accepted[index],
                evictions,
            )
        offset = int(index)
        if offset < 0:
            offset += len(self)
        if not 0 <= offset < len(self):
            raise IndexError(f"update {index} out of range for batch of {len(self)}")
        return self._view(offset)

    def __iter__(self) -> Iterator[SampleUpdate]:
        for offset in range(len(self)):
            yield self._view(offset)

    def to_list(self) -> list[SampleUpdate]:
        """Materialise every per-element record (for callers that must mutate)."""
        return list(self)

    def __eq__(self, other: Any) -> bool:
        """Element-wise equality against any sequence of :class:`SampleUpdate`."""
        if isinstance(other, UpdateBatch):
            return (
                len(self) == len(other)
                and np.array_equal(self.round_indices, other.round_indices)
                and np.array_equal(self.accepted, other.accepted)
                and self.evictions == other.evictions
                and all(a == b for a, b in zip(self.elements, other.elements))
            )
        if isinstance(other, Sequence):
            return len(self) == len(other) and all(
                view == record for view, record in zip(self, other)
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UpdateBatch(n={len(self)}, accepted={self.accepted_count}, "
            f"evictions={self.eviction_count})"
        )


@runtime_checkable
class Mergeable(Protocol):
    """Summaries whose sharded states can be combined into one global summary.

    The distributed deployments of Section 1.2 split the stream across ``K``
    sites and answer queries from the *merged* state, so every sampler family
    that participates in a sharded deployment must say what "merge" means for
    it.  ``a.merge([b, c])`` returns a **new** summary of the same family
    describing the union (for interleaved substreams) or concatenation (for
    consecutive substreams) of everything ``a``, ``b`` and ``c`` summarised;
    the inputs' samples and counters are never mutated.  Implementations and
    their guarantees:

    * :meth:`~repro.samplers.bernoulli.BernoulliSampler.merge` — element-wise
      union; **exact** (each element was kept i.i.d. with probability ``p``
      regardless of which site saw it) and deterministic.
    * :meth:`~repro.samplers.reservoir.ReservoirSampler.merge` — the
      [CTW16]-style coordinator rule: a multivariate-hypergeometric draw
      decides how many slots each part contributes, making the merge an
      exactly uniform ``k``-subset of the union.  Randomised (pass ``rng``).
    * :meth:`~repro.samplers.sliding_window.SlidingWindowSampler.merge` —
      combines the priority-tagged candidate sets and re-runs the
      expiry/domination fixed point; exact for consecutive substreams.
    * :meth:`~repro.samplers.misra_gries.MisraGriesSummary.merge` — the
      summed-counter merge of the mergeable-summaries line of work, with the
      error budget tracked explicitly (``max_underestimate`` stays within
      ``n // (capacity + 1)``).
    * :meth:`~repro.samplers.kll.KLLSketch.merge` — level-wise compactor
      concatenation followed by standard compaction; keeps the ``O(eps n)``
      rank-error regime.  Randomised (pass ``rng``).

    Merge randomness comes from the ``rng`` argument (falling back to the
    primary part's own generator), never from the other parts, so sharded
    reads leave the non-primary sites' seeded streams untouched.
    """

    def merge(
        self, others: Sequence[Any], *, rng: np.random.Generator | None = None
    ) -> Any:
        """Return a new summary of ``self`` plus every part in ``others``."""
        ...


class StreamSampler(ABC):
    """Abstract streaming sampler whose state is fully visible to the adversary.

    The paper's adversary observes the sampler's entire internal state
    (``sigma_i``) after every round.  Accordingly the interface exposes the
    maintained sample directly via :attr:`sample`; adversaries are free to
    read it, and game runners snapshot it for continuous-robustness checks.
    """

    #: Human-readable name used in experiment tables.
    name: str = "sampler"

    def __init__(self) -> None:
        self._round = 0

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------
    @abstractmethod
    def _process(self, element: Any) -> SampleUpdate:
        """Handle one element; subclasses implement the actual sampling rule."""

    def process(self, element: Any) -> SampleUpdate:
        """Feed one stream element to the sampler and return what happened."""
        self._round += 1
        return self._process(element)

    def extend(
        self, elements: Iterable[Any], updates: bool = True
    ) -> UpdateBatch | None:
        """Feed a batch of elements; returns the batch's columnar update record.

        The return value is an :class:`UpdateBatch` — a structure-of-arrays
        record that is also a lazy sequence of per-element
        :class:`SampleUpdate` views.  Pass ``updates=False`` to skip the
        record entirely (the return value is then ``None``) — on
        million-element streams even the columnar record is pure overhead
        when nobody reads it.  The maintained sample is identical either way.

        Subclasses override this with vectorised kernels; the base
        implementation simply loops over :meth:`process`.
        """
        if not updates:
            for element in elements:
                self.process(element)
            return None
        return UpdateBatch.from_updates(self.process(element) for element in elements)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def sample(self) -> Sequence[Any]:
        """The currently maintained sample ``S_i`` (a subsequence of the stream)."""

    @property
    def rounds_processed(self) -> int:
        """Number of stream elements processed so far."""
        return self._round

    @property
    def sample_size(self) -> int:
        """Current size of the maintained sample."""
        return len(self.sample)

    @abstractmethod
    def reset(self) -> None:
        """Forget all state so the sampler can be reused for another stream."""

    def memory_footprint(self) -> int:
        """Number of stream elements the sampler currently stores.

        This is the paper's notion of memory (the size of ``sigma``); sketches
        that store summaries rather than elements override it accordingly.
        """
        return len(self.sample)

    def snapshot(self) -> tuple[Any, ...]:
        """An immutable copy of the sample, for continuous-robustness traces."""
        return tuple(self.sample)

    def degradation_report(self) -> dict[str, Any]:
        """Family-specific error accounting after merges and site loss.

        Sharded deployments merge whatever site states survive a fault and
        report the merged view's quantified degradation through this hook
        (:meth:`repro.distributed.sharded.ShardedSampler.degradation_report`).
        The base report carries the universal fields; families with an
        explicit error budget (Misra–Gries underestimates, reservoir
        sample-size shortfall, KLL rank error) extend it so callers can
        bracket the realised error of a degraded view.
        """
        return {
            "family": self.name,
            "rounds": self.rounds_processed,
            "sample_size": self.sample_size,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(rounds={self.rounds_processed}, "
            f"sample_size={self.sample_size})"
        )


class FixedSizeSampler(StreamSampler):
    """Base class for samplers that maintain a bounded number of elements."""

    def __init__(self, capacity: int) -> None:
        super().__init__()
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)

    def memory_footprint(self) -> int:
        return min(self.capacity, len(self.sample))
