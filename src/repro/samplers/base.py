"""Streaming-sampler interfaces.

The adversarial game of the paper (Section 2) interacts with a sampler
through three operations: feed it the next element, observe its internal
state, and finally read out the sample.  :class:`StreamSampler` is that
contract.  Every concrete sampler also reports what happened on each step
(:class:`SampleUpdate`) so that game runners, martingale trackers and the
attacks themselves can react to acceptances and evictions without peeking at
private attributes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence


@dataclass(frozen=True)
class SampleUpdate:
    """Outcome of feeding one element to a sampler.

    Attributes
    ----------
    round_index:
        1-based index of the element within the stream.
    element:
        The element that was submitted.
    accepted:
        ``True`` if the element entered the sample.
    evicted:
        The element that was removed to make room (reservoir-style samplers),
        or ``None`` when nothing was evicted.
    """

    round_index: int
    element: Any
    accepted: bool
    evicted: Any = None


class StreamSampler(ABC):
    """Abstract streaming sampler whose state is fully visible to the adversary.

    The paper's adversary observes the sampler's entire internal state
    (``sigma_i``) after every round.  Accordingly the interface exposes the
    maintained sample directly via :attr:`sample`; adversaries are free to
    read it, and game runners snapshot it for continuous-robustness checks.
    """

    #: Human-readable name used in experiment tables.
    name: str = "sampler"

    def __init__(self) -> None:
        self._round = 0

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------
    @abstractmethod
    def _process(self, element: Any) -> SampleUpdate:
        """Handle one element; subclasses implement the actual sampling rule."""

    def process(self, element: Any) -> SampleUpdate:
        """Feed one stream element to the sampler and return what happened."""
        self._round += 1
        return self._process(element)

    def extend(
        self, elements: Iterable[Any], updates: bool = True
    ) -> Optional[list[SampleUpdate]]:
        """Feed a batch of elements; returns the per-element updates.

        Pass ``updates=False`` to skip materialising the per-element
        :class:`SampleUpdate` records (the return value is then ``None``) —
        on million-element streams the record list dominates the cost of the
        vectorised fast paths some subclasses provide.  The maintained sample
        is identical either way.
        """
        if not updates:
            for element in elements:
                self.process(element)
            return None
        return [self.process(element) for element in elements]

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def sample(self) -> Sequence[Any]:
        """The currently maintained sample ``S_i`` (a subsequence of the stream)."""

    @property
    def rounds_processed(self) -> int:
        """Number of stream elements processed so far."""
        return self._round

    @property
    def sample_size(self) -> int:
        """Current size of the maintained sample."""
        return len(self.sample)

    @abstractmethod
    def reset(self) -> None:
        """Forget all state so the sampler can be reused for another stream."""

    def memory_footprint(self) -> int:
        """Number of stream elements the sampler currently stores.

        This is the paper's notion of memory (the size of ``sigma``); sketches
        that store summaries rather than elements override it accordingly.
        """
        return len(self.sample)

    def snapshot(self) -> tuple[Any, ...]:
        """An immutable copy of the sample, for continuous-robustness traces."""
        return tuple(self.sample)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(rounds={self.rounds_processed}, "
            f"sample_size={self.sample_size})"
        )


class FixedSizeSampler(StreamSampler):
    """Base class for samplers that maintain a bounded number of elements."""

    def __init__(self, capacity: int) -> None:
        super().__init__()
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)

    def memory_footprint(self) -> int:
        return min(self.capacity, len(self.sample))
