"""Reservoir sampling (the ``ReservoirSample`` algorithm of the paper).

Vitter's Algorithm R [Vit85]: the first ``k`` elements fill the reservoir;
the ``i``-th element (``i > k``) replaces a uniformly random reservoir slot
with probability ``k / i``.  At every point the reservoir is a uniform sample
(without replacement, order-of-arrival semantics) of the stream so far, and
Theorem 1.2 shows that ``k >= 2 (ln|R| + ln(2/delta)) / eps^2`` makes it an
epsilon-approximation with probability ``1 - delta`` against any adaptive
adversary; Theorem 1.4 gives the slightly larger ``k`` needed for the sample
to be representative at *every* prefix simultaneously.

The class also supports two deliberately *wrong* eviction policies ("fifo" and
"oldest-value") used by the ablation experiments: they keep the sample size at
``k`` but break the uniformity that the paper's martingale analysis relies on,
and the benchmarks show how their adversarial error deteriorates.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any, Literal

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import RandomState, ensure_generator, hypergeometric_split, spawn_generators
from .base import FixedSizeSampler, SampleUpdate, UpdateBatch

EvictionPolicy = Literal["uniform", "fifo", "min-value"]


class ReservoirSampler(FixedSizeSampler):
    """Maintain a uniform fixed-size sample of the stream seen so far.

    Parameters
    ----------
    capacity:
        The reservoir size ``k``.
    seed:
        Seed or generator for the sampler's private coin flips.
    eviction:
        Which element to overwrite when an element is accepted after the
        reservoir is full.  ``"uniform"`` is Vitter's algorithm (and the only
        policy the paper's guarantees cover); ``"fifo"`` always overwrites the
        oldest surviving element and ``"min-value"`` overwrites the smallest
        element — both are provided solely for the ablation experiments.
    """

    name = "reservoir"

    def __init__(
        self,
        capacity: int,
        seed: RandomState = None,
        eviction: EvictionPolicy = "uniform",
    ) -> None:
        super().__init__(capacity)
        if eviction not in ("uniform", "fifo", "min-value"):
            raise ConfigurationError(f"unknown eviction policy: {eviction!r}")
        self.eviction = eviction
        self._rng = ensure_generator(seed)
        self._sample: list[Any] = []
        self._insertion_order: list[int] = []
        self._total_accepted = 0

    # ------------------------------------------------------------------
    # StreamSampler interface
    # ------------------------------------------------------------------
    def _process(self, element: Any) -> SampleUpdate:
        i = self.rounds_processed
        if len(self._sample) < self.capacity:
            self._sample.append(element)
            self._insertion_order.append(i)
            self._total_accepted += 1
            return SampleUpdate(round_index=i, element=element, accepted=True)

        accept_probability = self.capacity / i
        if self._rng.random() >= accept_probability:
            return SampleUpdate(round_index=i, element=element, accepted=False)

        slot = self._choose_victim_slot()
        evicted = self._sample[slot]
        self._sample[slot] = element
        self._insertion_order[slot] = i
        self._total_accepted += 1
        return SampleUpdate(
            round_index=i, element=element, accepted=True, evicted=evicted
        )

    def extend(
        self, elements: Iterable[Any], updates: bool = True
    ) -> UpdateBatch | None:
        """Vectorised batch ingestion for the uniform eviction policy.

        All acceptance coins for the batch are drawn in one numpy call
        (element ``i`` is accepted with Vitter's probability ``k / i``), and
        victim slots are drawn in one call for the accepted rounds only, so
        the Python-level loop touches just the ``O(k log n)`` expected
        acceptances instead of every element.  The realised reservoir is a
        different (equally distributed) draw from the sequential path, since
        the batch consumes the bit stream in a different order; seeded runs
        are reproducible as long as the chunking is reproducible.

        The ablation eviction policies ("fifo", "min-value") depend on the
        evolving reservoir state per round and fall back to the sequential
        path.
        """
        if self.eviction != "uniform":
            return super().extend(elements, updates)
        elements = list(elements)
        fill_batch: UpdateBatch | None = None
        position = 0
        # Fill phase (and any rounds before it): sequential, at most k steps.
        if len(self._sample) < self.capacity:
            position = min(len(elements), self.capacity - len(self._sample))
            fill = elements[:position]
            start_round = self._round
            self._sample.extend(fill)
            self._insertion_order.extend(
                range(start_round + 1, start_round + len(fill) + 1)
            )
            self._total_accepted += len(fill)
            self._round += len(fill)
            if updates:
                fill_batch = UpdateBatch(
                    np.arange(start_round + 1, start_round + len(fill) + 1, dtype=np.int64),
                    fill,
                    np.ones(len(fill), dtype=bool),
                )
        rest = elements[position:]
        if not rest:
            return (fill_batch or UpdateBatch.empty()) if updates else None
        start_round = self._round
        round_indices = np.arange(start_round + 1, start_round + len(rest) + 1)
        coins = self._rng.random(len(rest))
        accepted = coins < (self.capacity / round_indices)
        accepted_positions = np.flatnonzero(accepted)
        slots = self._rng.integers(0, self.capacity, size=len(accepted_positions))
        self._round = start_round + len(rest)
        self._total_accepted += len(accepted_positions)
        evictions: dict[int, Any] | None = {} if updates else None
        for offset, slot in zip(accepted_positions, slots):
            slot = int(slot)
            if evictions is not None:
                evictions[int(offset)] = self._sample[slot]
            self._sample[slot] = rest[offset]
            self._insertion_order[slot] = start_round + int(offset) + 1
        if not updates:
            return None
        batch = UpdateBatch(round_indices, rest, accepted, evictions)
        if fill_batch is not None and len(fill_batch):
            return UpdateBatch.concat([fill_batch, batch])
        return batch

    def merge(
        self,
        others: Sequence["ReservoirSampler"],
        *,
        rng: np.random.Generator | None = None,
    ) -> "ReservoirSampler":
        """Merge sharded reservoirs into one uniform sample of the union.

        The [CTW16] coordinator rule, shared with
        :class:`~repro.distributed.coordinator.DistributedReservoir`: a
        multivariate-hypergeometric draw over the parts' stream counts
        (:func:`~repro.rng.hypergeometric_split`) decides how many of the
        merged slots each part contributes, and those slots are filled by
        sampling the part's reservoir without replacement.  The merged
        reservoir is therefore distributed exactly as a uniform
        ``min(capacity, total)``-subset of the union of all substreams, and
        — because Vitter's rule only needs the current round — it can keep
        streaming from round ``total`` onwards without losing uniformity.

        Merge randomness comes from ``rng`` (default: ``self``'s generator,
        which the draw then advances); the parts' samples are not mutated.
        Only the ``"uniform"`` eviction policy is mergeable — the ablation
        policies break the uniformity the hypergeometric rule relies on.
        """
        parts = self._validate_merge_parts(others)
        merge_rng = self._rng if rng is None else rng
        counts = [part.rounds_processed for part in parts]
        total = sum(counts)
        size = min(self.capacity, total)
        allocation = hypergeometric_split(
            merge_rng, counts, size, available=[len(part._sample) for part in parts]
        )
        merged_sample: list[Any] = []
        for part, slots in zip(parts, allocation):
            if slots == 0:
                continue
            local = part._sample
            if slots == len(local):
                merged_sample.extend(local)
                continue
            indices = merge_rng.choice(len(local), size=slots, replace=False)
            merged_sample.extend(local[int(i)] for i in indices)
        merged = ReservoirSampler(
            self.capacity, seed=spawn_generators(merge_rng, 1)[0]
        )
        merged._sample = merged_sample
        merged._insertion_order = [0] * len(merged_sample)
        merged._total_accepted = len(merged_sample)
        merged._round = total
        return merged

    def split(
        self, *, rng: np.random.Generator | None = None
    ) -> "ReservoirSampler":
        """Split off a sibling reservoir — the [CTW16] merge rule in reverse.

        The reservoir's ``n`` processed rounds are notionally divided in
        half (``n // 2`` to the sibling, the rest stay here); a
        hypergeometric draw decides how many of the stored sample elements
        belong to the sibling's half, and a uniform subset of that size
        moves over.  Because the stored sample is a uniform subset of the
        ``n`` rounds, each side ends up holding a uniform subset of its own
        half — so a later :meth:`merge` of the two sides is again exactly
        uniform over the union, which is what makes mid-stream resharding
        exact for reservoirs.  Split randomness comes from ``rng`` (default:
        this reservoir's generator); ``self`` keeps streaming from round
        ``n - n // 2`` and is mutated in place.

        Only the ``"uniform"`` eviction policy is splittable, for the same
        reason only it is mergeable.
        """
        if self.eviction != "uniform":
            raise ConfigurationError(
                f"the {self.eviction!r} eviction ablation is not splittable"
            )
        split_rng = self._rng if rng is None else rng
        n = self.rounds_processed
        n_sibling = n // 2
        n_keep = n - n_sibling
        stored = len(self._sample)
        take = 0
        if stored and n_sibling:
            take = int(
                split_rng.hypergeometric(
                    ngood=n_sibling, nbad=n_keep, nsample=stored
                )
            )
        sibling = ReservoirSampler(
            self.capacity, seed=spawn_generators(split_rng, 1)[0]
        )
        chosen: set[int] = set()
        if take:
            chosen = {
                int(i)
                for i in split_rng.choice(stored, size=take, replace=False)
            }
        sibling._sample = [self._sample[i] for i in sorted(chosen)]
        sibling._insertion_order = [0] * take
        sibling._total_accepted = take
        sibling._round = n_sibling
        keep = [i for i in range(stored) if i not in chosen]
        self._sample = [self._sample[i] for i in keep]
        self._insertion_order = [self._insertion_order[i] for i in keep]
        self._round = n_keep
        return sibling

    def degradation_report(self) -> dict[str, Any]:
        """Uniform-sample degradation: how far below capacity the sample sits.

        A reservoir degraded by merges over survivor subsets (or by a
        state split) stays exactly uniform over the rounds it still
        represents, but may hold fewer than ``min(capacity, rounds)``
        elements; ``shortfall`` quantifies that gap.
        """
        expected = min(self.capacity, self.rounds_processed)
        return {
            "family": self.name,
            "rounds": self.rounds_processed,
            "sample_size": len(self._sample),
            "capacity": self.capacity,
            "expected_size": expected,
            "shortfall": expected - len(self._sample),
        }

    def _validate_merge_parts(
        self, others: Sequence["ReservoirSampler"]
    ) -> list["ReservoirSampler"]:
        parts = [self, *others]
        for part in parts:
            if not isinstance(part, ReservoirSampler):
                raise ConfigurationError(
                    f"cannot merge a ReservoirSampler with {type(part).__name__}"
                )
            if part.capacity != self.capacity:
                raise ConfigurationError(
                    "cannot merge reservoirs of different capacities: "
                    f"{self.capacity} vs {part.capacity}"
                )
            if part.eviction != "uniform":
                raise ConfigurationError(
                    f"the {part.eviction!r} eviction ablation is not mergeable"
                )
        return parts

    @property
    def sample(self) -> Sequence[Any]:
        return self._sample

    def reset(self) -> None:
        self._sample = []
        self._insertion_order = []
        self._total_accepted = 0
        self._round = 0

    # ------------------------------------------------------------------
    # Introspection used by experiments
    # ------------------------------------------------------------------
    @property
    def total_accepted(self) -> int:
        """Total number of elements ever accepted (including later-evicted ones).

        The lower-bound analysis of Theorem 1.3 denotes this quantity ``k'``
        and shows it is ``O(k ln n)`` with high probability; experiment E3
        measures it directly.
        """
        return self._total_accepted

    def acceptance_probability(self, round_index: int) -> float:
        """The probability with which the element of the given round is accepted."""
        if round_index < 1:
            raise ConfigurationError(f"round index must be >= 1, got {round_index}")
        if round_index <= self.capacity:
            return 1.0
        return self.capacity / round_index

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _choose_victim_slot(self) -> int:
        if self.eviction == "uniform":
            return int(self._rng.integers(0, self.capacity))
        if self.eviction == "fifo":
            oldest_round = min(self._insertion_order)
            return self._insertion_order.index(oldest_round)
        # "min-value": evict the smallest stored element.  Ties are broken by
        # slot index, which is deterministic and therefore maximally
        # exploitable by an adversary — the point of the ablation.
        smallest = min(range(self.capacity), key=lambda slot: self._sample[slot])
        return smallest
